//! The `bivd` wire protocol: typed requests and responses with JSON
//! encoding.
//!
//! Every frame carries one JSON object. Requests name their operation
//! in `"op"`; responses always carry `"ok"` so clients can branch
//! without knowing every error shape. The protocol is deliberately
//! small:
//!
//! | request | response |
//! |---------|----------|
//! | `{"op":"ping"}` | `{"ok":true,"op":"pong"}` |
//! | `{"op":"analyze","files":[{"path","source"},…],"cache_cap"?}` | `{"ok":true,"op":"analyze","output",…,"errors":[…]}` |
//! | `{"op":"invariants","files":[…],"cache_cap"?}` | `{"ok":true,"op":"analyze","output",…}` with invariant lines |
//! | `{"op":"analyze_fleet","files":[…],"shard_id","shard_count","cache_cap"?,"invariants"?}` | `{"ok":true,"op":"analyze_fleet","files":[{"path","output","hashes",…}]}` |
//! | `{"op":"preload","dir":PATH}` | `{"ok":true,"op":"preload","loaded":N}` |
//! | `{"op":"stats"}` | `{"ok":true,"op":"stats","stats":{…}}` |
//! | `{"op":"gossip","from"?,"view":{…}}` | `{"ok":true,"op":"gossip","view":{…}}` |
//! | `{"op":"members"}` | `{"ok":true,"op":"members","view":{…}}` |
//! | `{"op":"replicate","entries":[{"hash","summary"},…]}` | `{"ok":true,"op":"replicate","stored":N}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"op":"shutdown"}`, then drain |
//!
//! Failure responses are `{"ok":false,"error":KIND,…}`; the `busy`
//! kind additionally carries `retry_after_ms` — the server's explicit
//! backpressure signal — and the `redirect` kind carries the answering
//! shard's actual `shard_id`/`shard_count` so a fleet router can
//! re-route a batch that reached the wrong shard.
//!
//! The fleet variant of analyze differs from the plain one in exactly
//! one way: instead of a single rendered report ending in a stats line,
//! it returns *per-file* blocks plus each file's structural hashes, so
//! the router can reassemble responses from many shards in input order
//! and replay the cold stats line over the whole batch itself —
//! byte-identical to one local run, no matter how files were sharded.

use crate::json::Json;

/// One input file in an analyze request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeFile {
    /// Display path, echoed in the rendered per-file headers.
    pub path: String,
    /// The file's source text.
    pub source: String,
}

/// One replicated summary inside a [`Request::Replicate`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaEntry {
    /// The structural hash the summary is stored under.
    pub hash: u64,
    /// The `biv-store` codec encoding of the summary (hex on the wire).
    pub bytes: Vec<u8>,
}

/// A request frame.
///
/// (`PartialEq` only: gossip frames carry a [`Json`] view, and JSON
/// floats have no total equality.)
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Analyze a batch of files.
    Analyze {
        /// Files in output order.
        files: Vec<AnalyzeFile>,
        /// The client's structural-cache capacity, used only to render
        /// the deterministic cold-run stats line (the server's actual
        /// cache is sized server-side). `None` means the default.
        cache_cap: Option<usize>,
        /// Render each loop's verified polynomial invariants. On the
        /// wire this is the `invariants` op — same payload shape as
        /// `analyze`, invariant lines included in the output. Summaries
        /// always carry their invariants either way, so flag state never
        /// affects what gets cached or stored.
        invariants: bool,
    },
    /// Analyze a batch on one fleet shard, returning per-file blocks
    /// instead of a finished report (see the module docs).
    AnalyzeFleet {
        /// Files in output order.
        files: Vec<AnalyzeFile>,
        /// Cold-replay cache capacity, as for [`Request::Analyze`].
        /// Carried so a shard answering a *whole* batch alone (fleet of
        /// one) replays the same capacity the router would.
        cache_cap: Option<usize>,
        /// The shard identity the router believes it is addressing; a
        /// mismatch answers [`Response::Redirect`] instead of serving.
        shard_id: u32,
        /// The fleet size the router routed against.
        shard_count: u32,
        /// Render invariant lines in the per-file blocks, as for
        /// [`Request::Analyze`]; optional on the wire, default off.
        invariants: bool,
    },
    /// Preload the server's cache from a drained shard's store
    /// snapshot directory — the warm-handoff half of a fleet rebalance.
    Preload {
        /// Directory of the departing shard's flushed store.
        dir: String,
    },
    /// Fetch live server metrics.
    Stats,
    /// A membership heartbeat: the sender's view of the fleet. The
    /// receiver merges it and answers its own (merged) view, so every
    /// exchange converges both sides.
    Gossip {
        /// The sending shard's id, when the sender is a fleet member
        /// (refreshes its liveness directly). Tools bridging views —
        /// `bivctl join` — omit it.
        from: Option<u32>,
        /// The sender's membership view (see `biv_fleet::membership`).
        view: Json,
    },
    /// Fetch the server's membership view without offering one — how a
    /// router bootstraps the ring from a single seed endpoint.
    Members,
    /// Replica write-through: committed summaries pushed from a key's
    /// primary so a failover read is warm instead of recomputed.
    Replicate {
        /// The summaries to commit, codec-encoded.
        entries: Vec<ReplicaEntry>,
    },
    /// Begin graceful drain: finish accepted work, then exit.
    Shutdown,
}

/// A per-file failure inside an otherwise successful analyze response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileError {
    /// The failing file's display path.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

/// One file's result inside a fleet analyze response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetFile {
    /// The file's display path, echoed back for reassembly sanity.
    pub path: String,
    /// The rendered per-file block: the `══ path ══` header plus this
    /// file's function blocks, no stats line. Empty when `error` is
    /// set.
    pub output: String,
    /// Structural hashes of the file's functions in render order
    /// (hex-encoded on the wire — they do not fit a JSON `i64`). The
    /// router concatenates these across shards in input order to replay
    /// the whole batch's cold stats line.
    pub hashes: Vec<u64>,
    /// The parse failure, when the file contributed nothing.
    pub error: Option<String>,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Analyze`].
    Analyze {
        /// The rendered batch report — byte-identical to a local
        /// `bivc` batch run over the same readable, parsable files.
        output: String,
        /// Functions analyzed or served from cache.
        functions: usize,
        /// Distinct structures actually analyzed for this request.
        analyzed: usize,
        /// Functions served from the warm shared cache.
        cached: usize,
        /// Files that failed to parse; the rest were still analyzed.
        errors: Vec<FileError>,
    },
    /// Reply to [`Request::AnalyzeFleet`]: per-file blocks in request
    /// order.
    AnalyzeFleet {
        /// One entry per requested file, in request order.
        files: Vec<FleetFile>,
        /// Functions analyzed or served from cache in this batch.
        functions: usize,
        /// Distinct structures actually analyzed for this request.
        analyzed: usize,
        /// Functions served from the warm shared cache.
        cached: usize,
    },
    /// Reply to [`Request::Preload`].
    PreloadAck {
        /// Summaries inserted into this server's cache tiers.
        loaded: usize,
    },
    /// Reply to [`Request::Stats`] — a self-describing metrics object.
    Stats(Json),
    /// Reply to [`Request::Gossip`]: the receiver's view after merging
    /// the sender's.
    Gossip {
        /// The merged membership view.
        view: Json,
    },
    /// Reply to [`Request::Members`].
    Members {
        /// The server's current membership view.
        view: Json,
    },
    /// Reply to [`Request::Replicate`].
    ReplicateAck {
        /// Summaries committed into this server's cache tiers.
        stored: usize,
    },
    /// Acknowledgement of [`Request::Shutdown`].
    ShutdownAck,
    /// Backpressure: the bounded queue is full; retry after the hint.
    Busy {
        /// Suggested client-side delay before retrying.
        retry_after_ms: u64,
    },
    /// A fleet request addressed the wrong shard: this server's actual
    /// identity, so the router can repair its view and re-route.
    Redirect {
        /// The answering server's configured shard id.
        shard_id: u32,
        /// The answering server's configured fleet size.
        shard_count: u32,
        /// Human-readable detail.
        message: String,
    },
    /// Any other failure.
    Error {
        /// Stable machine-readable kind (`bad-request`, `timeout`,
        /// `draining`, …).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// A malformed frame at the protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn bad(message: impl Into<String>) -> ProtoError {
    ProtoError(message.into())
}

fn encode_files(files: &[AnalyzeFile]) -> Json {
    Json::Arr(
        files
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("path", Json::Str(f.path.clone())),
                    ("source", Json::Str(f.source.clone())),
                ])
            })
            .collect(),
    )
}

fn decode_files(json: &Json, op: &str) -> Result<Vec<AnalyzeFile>, ProtoError> {
    json.get("files")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(format!("{op} needs a `files` array")))?
        .iter()
        .map(|f| {
            let path = f
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("file entry needs `path`"))?;
            let source = f
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("file entry needs `source`"))?;
            Ok(AnalyzeFile {
                path: path.to_string(),
                source: source.to_string(),
            })
        })
        .collect()
}

fn decode_cache_cap(json: &Json) -> Result<Option<usize>, ProtoError> {
    match json.get("cache_cap") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => Ok(Some(
            v.as_i64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| bad("`cache_cap` must be a non-negative integer"))?,
        )),
    }
}

fn decode_u32(json: &Json, key: &str) -> Result<u32, ProtoError> {
    json.get(key)
        .and_then(Json::as_i64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| bad(format!("`{key}` must be a u32")))
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, ProtoError> {
    if !text.len().is_multiple_of(2) {
        return Err(bad("hex payload has odd length"));
    }
    text.as_bytes()
        .chunks(2)
        .map(|pair| {
            let s = std::str::from_utf8(pair).map_err(|_| bad("hex payload is not ASCII"))?;
            u8::from_str_radix(s, 16).map_err(|_| bad("bad hex digit in payload"))
        })
        .collect()
}

impl Request {
    /// Encodes to a JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Request::Ping => Json::obj(vec![("op", Json::Str("ping".into()))]),
            Request::Stats => Json::obj(vec![("op", Json::Str("stats".into()))]),
            Request::Shutdown => Json::obj(vec![("op", Json::Str("shutdown".into()))]),
            Request::Analyze {
                files,
                cache_cap,
                invariants,
            } => {
                let op = if *invariants { "invariants" } else { "analyze" };
                let mut pairs = vec![("op", Json::Str(op.into())), ("files", encode_files(files))];
                if let Some(cap) = cache_cap {
                    pairs.push(("cache_cap", Json::Int(*cap as i64)));
                }
                Json::obj(pairs)
            }
            Request::AnalyzeFleet {
                files,
                cache_cap,
                shard_id,
                shard_count,
                invariants,
            } => {
                let mut pairs = vec![
                    ("op", Json::Str("analyze_fleet".into())),
                    ("files", encode_files(files)),
                    ("shard_id", Json::Int(i64::from(*shard_id))),
                    ("shard_count", Json::Int(i64::from(*shard_count))),
                ];
                if let Some(cap) = cache_cap {
                    pairs.push(("cache_cap", Json::Int(*cap as i64)));
                }
                if *invariants {
                    pairs.push(("invariants", Json::Bool(true)));
                }
                Json::obj(pairs)
            }
            Request::Preload { dir } => Json::obj(vec![
                ("op", Json::Str("preload".into())),
                ("dir", Json::Str(dir.clone())),
            ]),
            Request::Gossip { from, view } => {
                let mut pairs = vec![("op", Json::Str("gossip".into()))];
                if let Some(id) = from {
                    pairs.push(("from", Json::Int(i64::from(*id))));
                }
                pairs.push(("view", view.clone()));
                Json::obj(pairs)
            }
            Request::Members => Json::obj(vec![("op", Json::Str("members".into()))]),
            Request::Replicate { entries } => Json::obj(vec![
                ("op", Json::Str("replicate".into())),
                (
                    "entries",
                    Json::Arr(
                        entries
                            .iter()
                            .map(|e| {
                                Json::obj(vec![
                                    ("hash", Json::Str(format!("{:016x}", e.hash))),
                                    ("summary", Json::Str(hex_encode(&e.bytes))),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        json.to_text().into_bytes()
    }

    /// Decodes a request frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("frame is not UTF-8"))?;
        let json = Json::parse(text).map_err(|e| bad(e.to_string()))?;
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing `op`"))?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "analyze" | "invariants" => Ok(Request::Analyze {
                files: decode_files(&json, op)?,
                cache_cap: decode_cache_cap(&json)?,
                invariants: op == "invariants",
            }),
            "analyze_fleet" => Ok(Request::AnalyzeFleet {
                files: decode_files(&json, "analyze_fleet")?,
                cache_cap: decode_cache_cap(&json)?,
                shard_id: decode_u32(&json, "shard_id")?,
                shard_count: decode_u32(&json, "shard_count")?,
                invariants: match json.get("invariants") {
                    None | Some(Json::Null) => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| bad("`invariants` must be a boolean"))?,
                },
            }),
            "preload" => Ok(Request::Preload {
                dir: json
                    .get("dir")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("preload needs `dir`"))?
                    .to_string(),
            }),
            "gossip" => {
                let from = match json.get("from") {
                    None | Some(Json::Null) => None,
                    Some(_) => Some(decode_u32(&json, "from")?),
                };
                let view = json
                    .get("view")
                    .cloned()
                    .ok_or_else(|| bad("gossip needs a `view` object"))?;
                if view.get("members").and_then(Json::as_arr).is_none() {
                    return Err(bad("gossip `view` needs a `members` array"));
                }
                Ok(Request::Gossip { from, view })
            }
            "members" => Ok(Request::Members),
            "replicate" => {
                let entries = json
                    .get("entries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("replicate needs an `entries` array"))?
                    .iter()
                    .map(|e| {
                        let hash = e
                            .get("hash")
                            .and_then(Json::as_str)
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .ok_or_else(|| bad("replica entries carry a 16-digit hex `hash`"))?;
                        let bytes = hex_decode(
                            e.get("summary")
                                .and_then(Json::as_str)
                                .ok_or_else(|| bad("replica entries carry a hex `summary`"))?,
                        )?;
                        Ok(ReplicaEntry { hash, bytes })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Request::Replicate { entries })
            }
            other => Err(bad(format!("unknown op `{other}`"))),
        }
    }
}

impl Response {
    /// Encodes to a JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Response::Pong => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("pong".into())),
            ]),
            Response::ShutdownAck => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("shutdown".into())),
            ]),
            Response::Stats(stats) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("stats".into())),
                ("stats", stats.clone()),
            ]),
            Response::Analyze {
                output,
                functions,
                analyzed,
                cached,
                errors,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("analyze".into())),
                ("output", Json::Str(output.clone())),
                ("functions", Json::Int(*functions as i64)),
                ("analyzed", Json::Int(*analyzed as i64)),
                ("cached", Json::Int(*cached as i64)),
                (
                    "errors",
                    Json::Arr(
                        errors
                            .iter()
                            .map(|e| {
                                Json::obj(vec![
                                    ("path", Json::Str(e.path.clone())),
                                    ("message", Json::Str(e.message.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::AnalyzeFleet {
                files,
                functions,
                analyzed,
                cached,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("analyze_fleet".into())),
                (
                    "files",
                    Json::Arr(
                        files
                            .iter()
                            .map(|f| {
                                let mut pairs = vec![
                                    ("path", Json::Str(f.path.clone())),
                                    ("output", Json::Str(f.output.clone())),
                                    (
                                        "hashes",
                                        Json::Arr(
                                            f.hashes
                                                .iter()
                                                .map(|h| Json::Str(format!("{h:016x}")))
                                                .collect(),
                                        ),
                                    ),
                                ];
                                if let Some(e) = &f.error {
                                    pairs.push(("error", Json::Str(e.clone())));
                                }
                                Json::obj(pairs)
                            })
                            .collect(),
                    ),
                ),
                ("functions", Json::Int(*functions as i64)),
                ("analyzed", Json::Int(*analyzed as i64)),
                ("cached", Json::Int(*cached as i64)),
            ]),
            Response::PreloadAck { loaded } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("preload".into())),
                ("loaded", Json::Int(*loaded as i64)),
            ]),
            Response::Gossip { view } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("gossip".into())),
                ("view", view.clone()),
            ]),
            Response::Members { view } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("members".into())),
                ("view", view.clone()),
            ]),
            Response::ReplicateAck { stored } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("replicate".into())),
                ("stored", Json::Int(*stored as i64)),
            ]),
            Response::Busy { retry_after_ms } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str("busy".into())),
                ("retry_after_ms", Json::Int(*retry_after_ms as i64)),
            ]),
            Response::Redirect {
                shard_id,
                shard_count,
                message,
            } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str("redirect".into())),
                ("shard_id", Json::Int(i64::from(*shard_id))),
                ("shard_count", Json::Int(i64::from(*shard_count))),
                ("message", Json::Str(message.clone())),
            ]),
            Response::Error { kind, message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(kind.clone())),
                ("message", Json::Str(message.clone())),
            ]),
        };
        json.to_text().into_bytes()
    }

    /// Decodes a response frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("frame is not UTF-8"))?;
        let json = Json::parse(text).map_err(|e| bad(e.to_string()))?;
        let ok = json
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("missing `ok`"))?;
        if !ok {
            let kind = json
                .get("error")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("failure without `error`"))?;
            if kind == "busy" {
                let retry_after_ms = json
                    .get("retry_after_ms")
                    .and_then(Json::as_i64)
                    .unwrap_or(50)
                    .max(0) as u64;
                return Ok(Response::Busy { retry_after_ms });
            }
            if kind == "redirect" {
                return Ok(Response::Redirect {
                    shard_id: decode_u32(&json, "shard_id")?,
                    shard_count: decode_u32(&json, "shard_count")?,
                    message: json
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                });
            }
            let message = json
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            return Ok(Response::Error {
                kind: kind.to_string(),
                message,
            });
        }
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("success without `op`"))?;
        match op {
            "pong" => Ok(Response::Pong),
            "shutdown" => Ok(Response::ShutdownAck),
            "stats" => Ok(Response::Stats(
                json.get("stats").cloned().unwrap_or(Json::Null),
            )),
            "analyze" => {
                let output = json
                    .get("output")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("analyze response needs `output`"))?
                    .to_string();
                let int = |key: &str| {
                    json.get(key)
                        .and_then(Json::as_i64)
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| bad(format!("analyze response needs `{key}`")))
                };
                let errors = json
                    .get("errors")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|e| {
                        Ok(FileError {
                            path: e
                                .get("path")
                                .and_then(Json::as_str)
                                .ok_or_else(|| bad("error entry needs `path`"))?
                                .to_string(),
                            message: e
                                .get("message")
                                .and_then(Json::as_str)
                                .unwrap_or("")
                                .to_string(),
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Response::Analyze {
                    output,
                    functions: int("functions")?,
                    analyzed: int("analyzed")?,
                    cached: int("cached")?,
                    errors,
                })
            }
            "analyze_fleet" => {
                let int = |key: &str| {
                    json.get(key)
                        .and_then(Json::as_i64)
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| bad(format!("analyze_fleet response needs `{key}`")))
                };
                let files = json
                    .get("files")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("analyze_fleet response needs `files`"))?
                    .iter()
                    .map(|f| {
                        let path = f
                            .get("path")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("fleet file entry needs `path`"))?
                            .to_string();
                        let output = f
                            .get("output")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("fleet file entry needs `output`"))?
                            .to_string();
                        let hashes = f
                            .get("hashes")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| bad("fleet file entry needs `hashes`"))?
                            .iter()
                            .map(|h| {
                                h.as_str()
                                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                                    .ok_or_else(|| bad("hash entries are 16-digit hex strings"))
                            })
                            .collect::<Result<Vec<u64>, ProtoError>>()?;
                        let error = match f.get("error") {
                            None | Some(Json::Null) => None,
                            Some(v) => Some(
                                v.as_str()
                                    .ok_or_else(|| bad("fleet file `error` must be a string"))?
                                    .to_string(),
                            ),
                        };
                        Ok(FleetFile {
                            path,
                            output,
                            hashes,
                            error,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Response::AnalyzeFleet {
                    files,
                    functions: int("functions")?,
                    analyzed: int("analyzed")?,
                    cached: int("cached")?,
                })
            }
            "preload" => Ok(Response::PreloadAck {
                loaded: json
                    .get("loaded")
                    .and_then(Json::as_i64)
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| bad("preload response needs `loaded`"))?,
            }),
            "gossip" => Ok(Response::Gossip {
                view: json
                    .get("view")
                    .cloned()
                    .ok_or_else(|| bad("gossip response needs `view`"))?,
            }),
            "members" => Ok(Response::Members {
                view: json
                    .get("view")
                    .cloned()
                    .ok_or_else(|| bad("members response needs `view`"))?,
            }),
            "replicate" => Ok(Response::ReplicateAck {
                stored: json
                    .get("stored")
                    .and_then(Json::as_i64)
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| bad("replicate response needs `stored`"))?,
            }),
            other => Err(bad(format!("unknown response op `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Analyze {
                files: vec![AnalyzeFile {
                    path: "dir/x.biv".into(),
                    source: "func f(n) { L1: for i = 1 to n { A[i] = i } }\n".into(),
                }],
                cache_cap: Some(16),
                invariants: false,
            },
            Request::Analyze {
                files: vec![],
                cache_cap: None,
                invariants: false,
            },
            Request::Analyze {
                files: vec![AnalyzeFile {
                    path: "sums.biv".into(),
                    source: "func f(n) { i = 1 s = 0 loop { s = s + i i = i + 1 if i > n { break } } }\n".into(),
                }],
                cache_cap: Some(8),
                invariants: true,
            },
            Request::AnalyzeFleet {
                files: vec![AnalyzeFile {
                    path: "dir/y.biv".into(),
                    source: "func g(n) { L1: for i = 1 to n { A[i] = i } }\n".into(),
                }],
                cache_cap: None,
                shard_id: 2,
                shard_count: 3,
                invariants: false,
            },
            Request::AnalyzeFleet {
                files: vec![],
                cache_cap: Some(4),
                shard_id: 0,
                shard_count: 3,
                invariants: true,
            },
            Request::Preload {
                dir: "/var/lib/biv/shard-1".into(),
            },
            Request::Members,
            Request::Gossip {
                from: Some(2),
                view: Json::obj(vec![
                    ("version", Json::Int(7)),
                    ("members", Json::Arr(vec![])),
                ]),
            },
            Request::Gossip {
                from: None,
                view: Json::obj(vec![("members", Json::Arr(vec![]))]),
            },
            Request::Replicate {
                entries: vec![
                    ReplicaEntry {
                        hash: 0xdead_beef_0102_0304,
                        bytes: vec![0x00, 0x01, 0xfe, 0xff],
                    },
                    ReplicaEntry {
                        hash: u64::MAX,
                        bytes: vec![],
                    },
                ],
            },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn invariants_flag_selects_the_invariants_op() {
        let req = Request::Analyze {
            files: vec![],
            cache_cap: None,
            invariants: true,
        };
        let text = String::from_utf8(req.encode()).unwrap();
        assert!(text.contains(r#""op":"invariants""#), "{text}");
        let plain = Request::Analyze {
            files: vec![],
            cache_cap: None,
            invariants: false,
        };
        let text = String::from_utf8(plain.encode()).unwrap();
        assert!(text.contains(r#""op":"analyze""#), "{text}");
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Pong,
            Response::ShutdownAck,
            Response::Busy { retry_after_ms: 75 },
            Response::Error {
                kind: "timeout".into(),
                message: "request exceeded 30s".into(),
            },
            Response::Stats(Json::obj(vec![("requests", Json::Int(3))])),
            Response::Analyze {
                output: "══ x.biv ══\nfunc f [0000000000000000]\nbatch: 1 functions\n".into(),
                functions: 1,
                analyzed: 1,
                cached: 0,
                errors: vec![FileError {
                    path: "bad.biv".into(),
                    message: "bad.biv: parse error: …".into(),
                }],
            },
            Response::AnalyzeFleet {
                files: vec![
                    FleetFile {
                        path: "x.biv".into(),
                        output: "══ x.biv ══\nfunc f [00000000075bcd15]\n".into(),
                        hashes: vec![123456789, u64::MAX],
                        error: None,
                    },
                    FleetFile {
                        path: "bad.biv".into(),
                        output: String::new(),
                        hashes: vec![],
                        error: Some("bad.biv: parse error: …".into()),
                    },
                ],
                functions: 2,
                analyzed: 1,
                cached: 1,
            },
            Response::PreloadAck { loaded: 42 },
            Response::Gossip {
                view: Json::obj(vec![
                    ("version", Json::Int(3)),
                    ("members", Json::Arr(vec![])),
                ]),
            },
            Response::Members {
                view: Json::obj(vec![("members", Json::Arr(vec![]))]),
            },
            Response::ReplicateAck { stored: 9 },
            Response::Redirect {
                shard_id: 1,
                shard_count: 3,
                message: "this server is shard 1/3, not 0/3".into(),
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn malformed_frames_fail_cleanly() {
        assert!(Request::decode(b"not json").is_err());
        assert!(Request::decode(b"{}").is_err());
        assert!(Request::decode(br#"{"op":"launch-missiles"}"#).is_err());
        assert!(Request::decode(br#"{"op":"analyze"}"#).is_err());
        assert!(Response::decode(br#"{"op":"pong"}"#).is_err());
        assert!(Request::decode(&[0xff, 0xfe]).is_err());
        // Fleet frames: missing identity, non-hex hashes, and a
        // redirect without its shard fields all fail as protocol
        // errors, never as panics or silent defaults.
        assert!(Request::decode(br#"{"op":"analyze_fleet","files":[]}"#).is_err());
        assert!(Request::decode(br#"{"op":"preload"}"#).is_err());
        // The invariants op shares analyze's shape and its failure
        // modes; a non-boolean fleet `invariants` field is rejected.
        assert!(Request::decode(br#"{"op":"invariants"}"#).is_err());
        assert!(Request::decode(
            br#"{"op":"analyze_fleet","files":[],"shard_id":0,"shard_count":1,"invariants":"yes"}"#
        )
        .is_err());
        assert!(Response::decode(
            br#"{"ok":true,"op":"analyze_fleet","files":[{"path":"x","output":"","hashes":["zz"]}],"functions":0,"analyzed":0,"cached":0}"#
        )
        .is_err());
        assert!(Response::decode(br#"{"ok":false,"error":"redirect"}"#).is_err());
        assert!(Response::decode(br#"{"ok":true,"op":"preload"}"#).is_err());
        // Membership and replication frames: a gossip without a view
        // (or with a view that has no member list), replica entries
        // with bad hex, and truncated responses all fail as protocol
        // errors.
        assert!(Request::decode(br#"{"op":"gossip"}"#).is_err());
        assert!(Request::decode(br#"{"op":"gossip","view":{"version":1}}"#).is_err());
        assert!(Request::decode(br#"{"op":"replicate"}"#).is_err());
        assert!(
            Request::decode(br#"{"op":"replicate","entries":[{"hash":"zz","summary":""}]}"#)
                .is_err()
        );
        assert!(Request::decode(
            br#"{"op":"replicate","entries":[{"hash":"0000000000000001","summary":"abc"}]}"#
        )
        .is_err());
        assert!(Request::decode(
            br#"{"op":"replicate","entries":[{"hash":"0000000000000001","summary":"zz"}]}"#
        )
        .is_err());
        assert!(Response::decode(br#"{"ok":true,"op":"members"}"#).is_err());
        assert!(Response::decode(br#"{"ok":true,"op":"replicate"}"#).is_err());
    }
}
