//! The `bivd` wire protocol: typed requests and responses with JSON
//! encoding.
//!
//! Every frame carries one JSON object. Requests name their operation
//! in `"op"`; responses always carry `"ok"` so clients can branch
//! without knowing every error shape. The protocol is deliberately
//! small:
//!
//! | request | response |
//! |---------|----------|
//! | `{"op":"ping"}` | `{"ok":true,"op":"pong"}` |
//! | `{"op":"analyze","files":[{"path","source"},…],"cache_cap"?}` | `{"ok":true,"op":"analyze","output",…,"errors":[…]}` |
//! | `{"op":"stats"}` | `{"ok":true,"op":"stats","stats":{…}}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"op":"shutdown"}`, then drain |
//!
//! Failure responses are `{"ok":false,"error":KIND,…}`; the `busy`
//! kind additionally carries `retry_after_ms` — the server's explicit
//! backpressure signal.

use crate::json::Json;

/// One input file in an analyze request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeFile {
    /// Display path, echoed in the rendered per-file headers.
    pub path: String,
    /// The file's source text.
    pub source: String,
}

/// A request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Analyze a batch of files.
    Analyze {
        /// Files in output order.
        files: Vec<AnalyzeFile>,
        /// The client's structural-cache capacity, used only to render
        /// the deterministic cold-run stats line (the server's actual
        /// cache is sized server-side). `None` means the default.
        cache_cap: Option<usize>,
    },
    /// Fetch live server metrics.
    Stats,
    /// Begin graceful drain: finish accepted work, then exit.
    Shutdown,
}

/// A per-file failure inside an otherwise successful analyze response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileError {
    /// The failing file's display path.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Analyze`].
    Analyze {
        /// The rendered batch report — byte-identical to a local
        /// `bivc` batch run over the same readable, parsable files.
        output: String,
        /// Functions analyzed or served from cache.
        functions: usize,
        /// Distinct structures actually analyzed for this request.
        analyzed: usize,
        /// Functions served from the warm shared cache.
        cached: usize,
        /// Files that failed to parse; the rest were still analyzed.
        errors: Vec<FileError>,
    },
    /// Reply to [`Request::Stats`] — a self-describing metrics object.
    Stats(Json),
    /// Acknowledgement of [`Request::Shutdown`].
    ShutdownAck,
    /// Backpressure: the bounded queue is full; retry after the hint.
    Busy {
        /// Suggested client-side delay before retrying.
        retry_after_ms: u64,
    },
    /// Any other failure.
    Error {
        /// Stable machine-readable kind (`bad-request`, `timeout`,
        /// `draining`, …).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// A malformed frame at the protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn bad(message: impl Into<String>) -> ProtoError {
    ProtoError(message.into())
}

impl Request {
    /// Encodes to a JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Request::Ping => Json::obj(vec![("op", Json::Str("ping".into()))]),
            Request::Stats => Json::obj(vec![("op", Json::Str("stats".into()))]),
            Request::Shutdown => Json::obj(vec![("op", Json::Str("shutdown".into()))]),
            Request::Analyze { files, cache_cap } => {
                let files = files
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("path", Json::Str(f.path.clone())),
                            ("source", Json::Str(f.source.clone())),
                        ])
                    })
                    .collect();
                let mut pairs = vec![
                    ("op", Json::Str("analyze".into())),
                    ("files", Json::Arr(files)),
                ];
                if let Some(cap) = cache_cap {
                    pairs.push(("cache_cap", Json::Int(*cap as i64)));
                }
                Json::obj(pairs)
            }
        };
        json.to_text().into_bytes()
    }

    /// Decodes a request frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("frame is not UTF-8"))?;
        let json = Json::parse(text).map_err(|e| bad(e.to_string()))?;
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing `op`"))?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "analyze" => {
                let files = json
                    .get("files")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("analyze needs a `files` array"))?
                    .iter()
                    .map(|f| {
                        let path = f
                            .get("path")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("file entry needs `path`"))?;
                        let source = f
                            .get("source")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("file entry needs `source`"))?;
                        Ok(AnalyzeFile {
                            path: path.to_string(),
                            source: source.to_string(),
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                let cache_cap = match json.get("cache_cap") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_i64()
                            .and_then(|n| usize::try_from(n).ok())
                            .ok_or_else(|| bad("`cache_cap` must be a non-negative integer"))?,
                    ),
                };
                Ok(Request::Analyze { files, cache_cap })
            }
            other => Err(bad(format!("unknown op `{other}`"))),
        }
    }
}

impl Response {
    /// Encodes to a JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Response::Pong => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("pong".into())),
            ]),
            Response::ShutdownAck => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("shutdown".into())),
            ]),
            Response::Stats(stats) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("stats".into())),
                ("stats", stats.clone()),
            ]),
            Response::Analyze {
                output,
                functions,
                analyzed,
                cached,
                errors,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("analyze".into())),
                ("output", Json::Str(output.clone())),
                ("functions", Json::Int(*functions as i64)),
                ("analyzed", Json::Int(*analyzed as i64)),
                ("cached", Json::Int(*cached as i64)),
                (
                    "errors",
                    Json::Arr(
                        errors
                            .iter()
                            .map(|e| {
                                Json::obj(vec![
                                    ("path", Json::Str(e.path.clone())),
                                    ("message", Json::Str(e.message.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Busy { retry_after_ms } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str("busy".into())),
                ("retry_after_ms", Json::Int(*retry_after_ms as i64)),
            ]),
            Response::Error { kind, message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(kind.clone())),
                ("message", Json::Str(message.clone())),
            ]),
        };
        json.to_text().into_bytes()
    }

    /// Decodes a response frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("frame is not UTF-8"))?;
        let json = Json::parse(text).map_err(|e| bad(e.to_string()))?;
        let ok = json
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("missing `ok`"))?;
        if !ok {
            let kind = json
                .get("error")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("failure without `error`"))?;
            if kind == "busy" {
                let retry_after_ms = json
                    .get("retry_after_ms")
                    .and_then(Json::as_i64)
                    .unwrap_or(50)
                    .max(0) as u64;
                return Ok(Response::Busy { retry_after_ms });
            }
            let message = json
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            return Ok(Response::Error {
                kind: kind.to_string(),
                message,
            });
        }
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("success without `op`"))?;
        match op {
            "pong" => Ok(Response::Pong),
            "shutdown" => Ok(Response::ShutdownAck),
            "stats" => Ok(Response::Stats(
                json.get("stats").cloned().unwrap_or(Json::Null),
            )),
            "analyze" => {
                let output = json
                    .get("output")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("analyze response needs `output`"))?
                    .to_string();
                let int = |key: &str| {
                    json.get(key)
                        .and_then(Json::as_i64)
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| bad(format!("analyze response needs `{key}`")))
                };
                let errors = json
                    .get("errors")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|e| {
                        Ok(FileError {
                            path: e
                                .get("path")
                                .and_then(Json::as_str)
                                .ok_or_else(|| bad("error entry needs `path`"))?
                                .to_string(),
                            message: e
                                .get("message")
                                .and_then(Json::as_str)
                                .unwrap_or("")
                                .to_string(),
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Response::Analyze {
                    output,
                    functions: int("functions")?,
                    analyzed: int("analyzed")?,
                    cached: int("cached")?,
                    errors,
                })
            }
            other => Err(bad(format!("unknown response op `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Analyze {
                files: vec![AnalyzeFile {
                    path: "dir/x.biv".into(),
                    source: "func f(n) { L1: for i = 1 to n { A[i] = i } }\n".into(),
                }],
                cache_cap: Some(16),
            },
            Request::Analyze {
                files: vec![],
                cache_cap: None,
            },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Pong,
            Response::ShutdownAck,
            Response::Busy { retry_after_ms: 75 },
            Response::Error {
                kind: "timeout".into(),
                message: "request exceeded 30s".into(),
            },
            Response::Stats(Json::obj(vec![("requests", Json::Int(3))])),
            Response::Analyze {
                output: "══ x.biv ══\nfunc f [0000000000000000]\nbatch: 1 functions\n".into(),
                functions: 1,
                analyzed: 1,
                cached: 0,
                errors: vec![FileError {
                    path: "bad.biv".into(),
                    message: "bad.biv: parse error: …".into(),
                }],
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn malformed_frames_fail_cleanly() {
        assert!(Request::decode(b"not json").is_err());
        assert!(Request::decode(b"{}").is_err());
        assert!(Request::decode(br#"{"op":"launch-missiles"}"#).is_err());
        assert!(Request::decode(br#"{"op":"analyze"}"#).is_err());
        assert!(Response::decode(br#"{"op":"pong"}"#).is_err());
        assert!(Request::decode(&[0xff, 0xfe]).is_err());
    }
}
