//! The resident analysis server.
//!
//! ```text
//!  accept loop (polls, watches the drain flag)
//!      └─ connection handler thread per client
//!            ├─ ping / stats / shutdown: answered inline
//!            └─ analyze: bounded queue ── worker pool ── shared
//!               StructuralCache (warm across requests)
//! ```
//!
//! Design rules, in order:
//!
//! 1. **Determinism** — analyze responses are byte-identical to a local
//!    `bivc` batch run: summaries are canonical (so cache warmth cannot
//!    leak into them) and the rendered stats line is a cold-run replay
//!    ([`biv_core::cold_batch_stats`]), never the warm cache's view.
//! 2. **Explicit backpressure** — a full queue answers `busy` with a
//!    `retry_after_ms` hint immediately; the server never buffers
//!    unbounded work.
//! 3. **Bounded everything** — requests carry a wall-clock timeout (the
//!    handler answers `timeout` and the worker's late result is
//!    discarded, not the worker), reads poll so drain cannot hang on an
//!    idle client, and drain itself grants a grace period per
//!    connection.
//! 4. **No dropped accepted work** — a request that was queued is
//!    always analyzed and answered, including during drain; requests
//!    arriving after drain began get an explicit `draining` error.

use std::io::{self, Read};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use biv_core::{
    analyze_batch_shared_backend, cold_batch_stats, render_grouped, resolve_jobs, AnalysisConfig,
    BatchOptions, Budget, CacheBackend, StructuralCache,
};
use biv_ir::parser::parse_program;
use biv_ir::Function;
use biv_store::{StoreOptions, TieredCache};

use crate::frame::{write_frame, MAX_FRAME_BYTES};
use crate::metrics::{CacheGauges, Metrics, PhaseSample};
use crate::net::{Conn, Endpoint, Listener};
use crate::pool::{JobQueue, PushError};
use crate::proto::{AnalyzeFile, FileError, Request, Response};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Worker threads; `0` resolves like `bivc --jobs 0` (the
    /// `BIV_JOBS` variable, then available parallelism).
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer `busy`.
    pub queue_cap: usize,
    /// Shared structural-cache capacity.
    pub cache_cap: usize,
    /// Per-request wall-clock budget, queue wait included.
    pub request_timeout: Duration,
    /// Largest accepted frame payload.
    pub max_frame_bytes: usize,
    /// Accept-loop and idle-read poll interval.
    pub poll_interval: Duration,
    /// How long a mid-frame read may continue once drain has begun.
    pub drain_grace: Duration,
    /// Resource budget applied to every analysis. Breaches degrade the
    /// affected values to `unknown` with a recorded reason; they never
    /// fail the request.
    pub budget: Budget,
    /// Directory of the durable analysis store. `None` serves from the
    /// in-memory cache alone; `Some` preloads the store on startup
    /// (warm restart), writes summaries through to it, and flushes it —
    /// fsync plus atomic index snapshot — when the drain completes.
    pub cache_dir: Option<PathBuf>,
}

impl ServerConfig {
    /// Defaults for an endpoint: auto workers, queue of 64, the batch
    /// driver's default cache capacity, 30 s request timeout.
    pub fn new(endpoint: Endpoint) -> ServerConfig {
        ServerConfig {
            endpoint,
            workers: 0,
            queue_cap: 64,
            cache_cap: BatchOptions::default().cache_capacity,
            request_timeout: Duration::from_secs(30),
            max_frame_bytes: MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(25),
            drain_grace: Duration::from_secs(5),
            budget: Budget::UNLIMITED,
            cache_dir: None,
        }
    }
}

/// Final counters reported when [`Server::run`] returns after drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Analyze requests answered with a report.
    pub analyze_ok: u64,
    /// Requests answered `busy`.
    pub rejected_busy: u64,
    /// Requests answered `timeout`.
    pub timeouts: u64,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} connections, {} requests, {} analyzed, {} busy-rejected, {} timed out",
            self.connections, self.requests, self.analyze_ok, self.rejected_busy, self.timeouts
        )
    }
}

/// One queued analyze request.
struct Job {
    files: Vec<AnalyzeFile>,
    cache_cap: Option<usize>,
    submitted: Instant,
    reply: mpsc::Sender<Response>,
}

/// State shared by the accept loop, handlers, and workers.
struct Shared<'a> {
    config: &'a ServerConfig,
    workers: usize,
    queue: JobQueue<Job>,
    cache: Mutex<Box<dyn CacheBackend + Send>>,
    metrics: Metrics,
    shutdown: &'a AtomicBool,
}

/// A bound, not-yet-serving server.
pub struct Server {
    listener: Listener,
    config: ServerConfig,
}

impl Server {
    /// Binds the configured endpoint (replacing a stale Unix socket
    /// file, refusing a live one).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = Listener::bind(&config.endpoint)?;
        Ok(Server { listener, config })
    }

    /// Where the server actually listens — resolves TCP port 0.
    pub fn bound_endpoint(&self) -> String {
        self.listener.bound_endpoint()
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        resolve_jobs(self.config.workers)
    }

    /// Serves until `shutdown` becomes true (SIGINT/SIGTERM via
    /// [`crate::signal::install`], or a protocol `shutdown` request),
    /// then drains: stops accepting, finishes every queued request,
    /// answers it, and returns the final counters.
    pub fn run(self, shutdown: &AtomicBool) -> io::Result<ServeSummary> {
        let Server { listener, config } = self;
        let workers = resolve_jobs(config.workers);
        // Opening the store *is* the preload: every surviving record is
        // decoded into its index before the first request is accepted.
        let backend: Box<dyn CacheBackend + Send> = match &config.cache_dir {
            Some(dir) => Box::new(TieredCache::open(
                dir,
                config.cache_cap,
                &StoreOptions::for_budget(&config.budget),
            )?),
            None => Box::new(StructuralCache::new(config.cache_cap)),
        };
        let shared = Shared {
            config: &config,
            workers,
            queue: JobQueue::new(config.queue_cap),
            cache: Mutex::new(backend),
            metrics: Metrics::new(),
            shutdown,
        };
        listener.set_nonblocking(true)?;

        std::thread::scope(|scope| {
            let shared = &shared;
            let mut worker_handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                worker_handles.push(scope.spawn(move || worker_loop(shared)));
            }

            let mut handlers = Vec::new();
            while !shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok(conn) => {
                        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                        handlers.push(scope.spawn(move || handle_conn(shared, conn)));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(config.poll_interval);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        // Transient accept failures (EMFILE under load)
                        // must not kill the daemon; back off and retry.
                        eprintln!("bivd: accept error: {e}");
                        std::thread::sleep(config.poll_interval);
                    }
                }
                // Finished handler threads are detached; the scope still
                // guarantees they are joined before `run` returns.
                if handlers.len() >= 64 {
                    handlers.retain(|h| !h.is_finished());
                }
                // Replace any worker that died. While the server is
                // accepting, the queue is open, so a finished worker
                // thread can only mean a panic escaped the per-job
                // catch (e.g. the injected `worker.die` fault). The
                // stranded client was already answered by the worker's
                // reply guard; here we restore pool capacity.
                for slot in worker_handles.iter_mut() {
                    if slot.is_finished() {
                        let fresh = scope.spawn(move || worker_loop(shared));
                        let dead = std::mem::replace(slot, fresh);
                        let _ = dead.join(); // Err(payload) is expected here
                        shared
                            .metrics
                            .workers_respawned
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }

            // Drain: stop accepting (close + unlink the endpoint so new
            // connects fail fast), let every handler finish its in-flight
            // request, then release the workers once the queue is empty.
            drop(listener);
            if let Endpoint::Unix(path) = &config.endpoint {
                std::fs::remove_file(path).ok();
            }
            for handler in handlers {
                let _ = handler.join();
            }
            shared.queue.close();
            for worker in worker_handles {
                let _ = worker.join();
            }
            // Every queued request is answered and the workers are
            // gone: make the store durable before reporting the drain.
            // A flush failure degrades persistence, not the drain.
            if let Ok(mut backend) = shared.cache.lock() {
                if let Err(e) = backend.flush() {
                    eprintln!("bivd: cache flush failed during drain: {e}");
                }
            }

            Ok(ServeSummary {
                connections: shared.metrics.connections.load(Ordering::Relaxed),
                requests: shared.metrics.requests.load(Ordering::Relaxed),
                analyze_ok: shared.metrics.analyze_ok.load(Ordering::Relaxed),
                rejected_busy: shared.metrics.rejected_busy.load(Ordering::Relaxed),
                timeouts: shared.metrics.timeouts.load(Ordering::Relaxed),
            })
        })
    }
}

/// One worker: pop, parse, classify through the shared cache, render,
/// reply. A send failure means the request already timed out or its
/// connection died — the result is discarded and the worker moves on
/// (this is the whole worker-recovery story: workers never carry state
/// from one request into the next).
///
/// Each job runs inside `catch_unwind`, so a panic in analysis answers
/// that one request with an `internal` error and the worker keeps
/// serving. A panic *outside* the catch (the injected `worker.die`
/// site, or a bug in the dispatch code itself) kills the thread — the
/// [`ReplyGuard`] still answers the client mid-unwind, and the accept
/// loop respawns the worker.
fn worker_loop(shared: &Shared<'_>) {
    let opts = BatchOptions {
        jobs: 1, // request-level parallelism comes from the pool itself
        config: AnalysisConfig {
            budget: shared.config.budget,
            ..AnalysisConfig::default()
        },
        cache_capacity: shared.config.cache_cap,
    };
    while let Some(job) = shared.queue.pop() {
        let guard = ReplyGuard {
            reply: job.reply.clone(),
            metrics: &shared.metrics,
        };
        crate::faults::maybe_panic("worker.die");
        // UnwindSafe audit: the closure borrows `shared` (atomics and
        // mutexes — both poison-or-recover on unwind; the structural
        // cache mutex is only held inside `analyze_batch_shared`, which
        // releases it between functions) and `job`/`opts` by shared
        // reference without interior mutation. Core thread-local
        // scratch is reset by `analyze_protected`'s own catch before
        // the panic ever reaches this boundary.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::faults::maybe_panic("worker.job.panic");
            process_job(shared, &opts, &job)
        }));
        drop(guard); // not panicking here: the guard disarms silently
        let response = match outcome {
            Ok(response) => response,
            Err(_) => {
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                internal_error("analysis panicked while serving the request")
            }
        };
        if job.reply.send(response).is_err() {
            shared.metrics.late_results.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Answers a job's client if the worker thread unwinds past it, so even
/// a panic outside the per-job catch never strands a waiting handler
/// until its timeout. Dropped without a panic in flight, it does
/// nothing.
struct ReplyGuard<'m> {
    reply: mpsc::Sender<Response>,
    metrics: &'m Metrics,
}

impl Drop for ReplyGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            let _ = self.reply.send(internal_error(
                "worker thread died while serving the request",
            ));
        }
    }
}

fn internal_error(detail: &str) -> Response {
    Response::Error {
        kind: "internal".into(),
        message: format!("internal server error: {detail}; the request was not completed"),
    }
}

/// The panic-isolated body of one analyze job: parse, classify through
/// the shared cache, render, and record metrics.
fn process_job(shared: &Shared<'_>, opts: &BatchOptions, job: &Job) -> Response {
    let queue_wait = job.submitted.elapsed();

    let t = Instant::now();
    let mut funcs: Vec<Function> = Vec::new();
    let mut ranges: Vec<(String, usize)> = Vec::new();
    let mut errors: Vec<FileError> = Vec::new();
    for file in &job.files {
        match parse_program(&file.source) {
            Ok(program) => {
                ranges.push((file.path.clone(), program.functions.len()));
                funcs.extend(program.functions);
            }
            Err(e) => errors.push(FileError {
                path: file.path.clone(),
                message: format!("{}: parse error: {e}", file.path),
            }),
        }
    }
    let parse = t.elapsed();

    let t = Instant::now();
    let report = analyze_batch_shared_backend(&funcs, opts, &shared.cache);
    let analyze = t.elapsed();

    let t = Instant::now();
    // The rendered stats line replays a cold cache at the client's
    // capacity, so the output never depends on what earlier requests
    // warmed — see the module docs. Cumulative warm counters remain
    // visible through `stats`.
    let hashes: Vec<u64> = report.functions.iter().map(|f| f.hash).collect();
    let replay_cap = job
        .cache_cap
        .unwrap_or_else(|| BatchOptions::default().cache_capacity);
    let cold = cold_batch_stats(&hashes, replay_cap);
    let output = render_grouped(&ranges, &report.functions, &cold);
    let render = t.elapsed();

    shared
        .metrics
        .functions
        .fetch_add(report.stats.functions as u64, Ordering::Relaxed);
    shared.metrics.analyze_ok.fetch_add(1, Ordering::Relaxed);
    shared.metrics.record_phases(PhaseSample {
        queue_wait,
        parse,
        analyze,
        render,
        total: job.submitted.elapsed(),
    });

    Response::Analyze {
        output,
        functions: report.stats.functions,
        analyzed: report.stats.misses,
        cached: report.stats.hits,
        errors,
    }
}

/// Serves one connection until the peer closes, an error occurs, or
/// drain begins.
fn handle_conn(shared: &Shared<'_>, mut conn: Conn) {
    if conn
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    loop {
        let draining = shared.shutdown.load(Ordering::Relaxed);
        let payload = match read_frame_polling(shared, &mut conn) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return,
        };
        // A frame read after drain was observed is answered, not served:
        // the client gets an explicit rejection instead of a hang or a
        // silent drop, and the connection closes.
        if draining {
            let _ = respond(
                &mut conn,
                &Response::Error {
                    kind: "draining".into(),
                    message: "server is draining; retry against a fresh instance".into(),
                },
            );
            return;
        }
        let request = match Request::decode(&payload) {
            Ok(request) => {
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                request
            }
            Err(e) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let ok = respond(
                    &mut conn,
                    &Response::Error {
                        kind: "bad-request".into(),
                        message: e.to_string(),
                    },
                );
                if ok.is_err() {
                    return;
                }
                continue;
            }
        };
        let sent = match request {
            Request::Ping => respond(&mut conn, &Response::Pong),
            Request::Stats => respond(&mut conn, &Response::Stats(stats_json(shared))),
            Request::Shutdown => {
                // Ack first so the requester sees the drain begin, then
                // flip the flag the accept loop polls.
                let sent = respond(&mut conn, &Response::ShutdownAck);
                shared.shutdown.store(true, Ordering::Relaxed);
                sent
            }
            Request::Analyze { files, cache_cap } => {
                let response = serve_analyze(shared, files, cache_cap);
                respond(&mut conn, &response)
            }
        };
        if sent.is_err() {
            return;
        }
    }
}

/// Submits an analyze request to the pool and waits, bounded by the
/// request timeout.
fn serve_analyze(
    shared: &Shared<'_>,
    files: Vec<AnalyzeFile>,
    cache_cap: Option<usize>,
) -> Response {
    // Injected queue-full storm: reject exactly as a real full queue
    // would, *before* the request counts as accepted, so the
    // no-dropped-accepted-work invariant is untouched.
    if crate::faults::fire("queue.storm") {
        shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
        return Response::Busy {
            retry_after_ms: retry_hint_ms(shared),
        };
    }
    let (reply, result) = mpsc::channel();
    let job = Job {
        files,
        cache_cap,
        submitted: Instant::now(),
        reply,
    };
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared
                .metrics
                .analyze_accepted
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(PushError::Full(_)) => {
            shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return Response::Busy {
                retry_after_ms: retry_hint_ms(shared),
            };
        }
        Err(PushError::Closed(_)) => {
            return Response::Error {
                kind: "draining".into(),
                message: "server is draining; retry against a fresh instance".into(),
            };
        }
    }
    match result.recv_timeout(shared.config.request_timeout) {
        Ok(response) => response,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            Response::Error {
                kind: "timeout".into(),
                message: format!(
                    "request exceeded {} ms (queue wait included); the result will be discarded",
                    shared.config.request_timeout.as_millis()
                ),
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => Response::Error {
            kind: "internal".into(),
            message: "worker dropped the request".into(),
        },
    }
}

/// The backpressure hint: roughly how long until a queue slot frees up,
/// from the live p50 end-to-end latency and the current depth.
fn retry_hint_ms(shared: &Shared<'_>) -> u64 {
    let p50 = shared.metrics.total_p50().as_millis() as u64;
    let per_request = if p50 == 0 { 50 } else { p50 };
    let depth = shared.queue.depth() as u64;
    (per_request * (depth + 1) / shared.workers.max(1) as u64).clamp(10, 5_000)
}

/// Builds the live `stats` payload.
fn stats_json(shared: &Shared<'_>) -> crate::json::Json {
    let backend = shared.cache.lock().expect("structural cache poisoned");
    let mem = backend.memory();
    let gauges = CacheGauges {
        hits: mem.hits(),
        misses: mem.misses(),
        evictions: mem.evictions(),
        entries: mem.len(),
        capacity: mem.capacity(),
    };
    let store = backend.store_gauges();
    drop(backend);
    shared.metrics.snapshot_json(
        shared.queue.depth(),
        shared.queue.capacity(),
        gauges,
        store,
        shared.workers,
    )
}

fn respond(conn: &mut Conn, response: &Response) -> io::Result<()> {
    write_frame(conn, &response.encode())
}

/// Reads one frame from a connection whose read timeout is the poll
/// interval, so drain is always observed within one poll:
///
/// - idle (no prefix byte yet) + drain → clean close (`Ok(None)`);
/// - mid-frame + drain → the peer gets `drain_grace` to finish the
///   frame, then the read fails and the connection closes.
fn read_frame_polling(shared: &Shared<'_>, conn: &mut Conn) -> io::Result<Option<Vec<u8>>> {
    let mut grace_deadline: Option<Instant> = None;
    let mut prefix = [0u8; 4];
    if !read_full_polling(shared, conn, &mut prefix, true, &mut grace_deadline)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > shared.config.max_frame_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {len} bytes exceeds the {}-byte limit",
                shared.config.max_frame_bytes
            ),
        ));
    }
    let mut payload = vec![0u8; len];
    read_full_polling(shared, conn, &mut payload, false, &mut grace_deadline)?;
    Ok(Some(payload))
}

/// Fills `buf`, retrying poll timeouts. Returns `false` only when
/// `eof_ok` and the stream ended (or drain began) before the first
/// byte.
fn read_full_polling(
    shared: &Shared<'_>,
    conn: &mut Conn,
    buf: &mut [u8],
    eof_ok: bool,
    grace_deadline: &mut Option<Instant>,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                if eof_ok && filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::Relaxed) {
                    if eof_ok && filled == 0 {
                        // Idle connection during drain: close cleanly.
                        return Ok(false);
                    }
                    let deadline = *grace_deadline
                        .get_or_insert_with(|| Instant::now() + shared.config.drain_grace);
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "drain grace expired mid-frame",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::json::Json;
    use std::sync::atomic::AtomicBool;

    const SRC: &str = "func f(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }\n";

    fn spawn_server(mut config: ServerConfig) -> (String, std::thread::JoinHandle<ServeSummary>) {
        config.endpoint = Endpoint::Tcp("127.0.0.1:0".into());
        let server = Server::bind(config).expect("bind 127.0.0.1:0");
        let endpoint = server.bound_endpoint();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let handle = std::thread::spawn(move || server.run(flag).expect("server run"));
        (endpoint, handle)
    }

    fn files(n: usize) -> Vec<AnalyzeFile> {
        (0..n)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: SRC.to_string(),
            })
            .collect()
    }

    #[test]
    fn ping_analyze_stats_shutdown_roundtrip() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 2;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);

        let response = client
            .request(&Request::Analyze {
                files: files(2),
                cache_cap: None,
            })
            .unwrap();
        let Response::Analyze {
            output,
            functions,
            analyzed,
            cached,
            errors,
        } = response
        else {
            panic!("expected analyze response");
        };
        assert_eq!((functions, analyzed, cached), (2, 1, 1));
        assert!(errors.is_empty());
        assert!(output.starts_with("══ mem/0.biv ══\n"));
        assert!(output.contains("══ mem/1.biv ══\n"));
        assert!(
            output.ends_with("batch: 2 functions, 1 analyzed, 1 cache hits, 0 evictions\n"),
            "stats line replays a cold cache:\n{output}"
        );

        // A second identical request is warm (cache hits) but renders
        // the exact same bytes.
        let again = client
            .request(&Request::Analyze {
                files: files(2),
                cache_cap: None,
            })
            .unwrap();
        let Response::Analyze {
            output: warm_output,
            analyzed: warm_analyzed,
            ..
        } = again
        else {
            panic!("expected analyze response");
        };
        assert_eq!(warm_analyzed, 0, "served from the warm cache");
        assert_eq!(warm_output, output, "warmth never changes the bytes");

        let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        let cache = stats.get("cache").unwrap();
        let hits = cache.get("hits").unwrap().as_i64().unwrap();
        let misses = cache.get("misses").unwrap().as_i64().unwrap();
        let submitted = stats
            .get("requests")
            .unwrap()
            .get("functions")
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(hits + misses, submitted, "hits + misses == functions");
        assert_eq!(misses, 1);
        let total = stats.get("latency").unwrap().get("total").unwrap();
        assert_eq!(total.get("count").unwrap().as_i64(), Some(2));

        assert_eq!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShutdownAck
        );
        let summary = handle.join().unwrap();
        assert_eq!(summary.analyze_ok, 2);
        assert!(summary.requests >= 4);
    }

    #[test]
    fn parse_errors_are_reported_per_file() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let response = client
            .request(&Request::Analyze {
                files: vec![
                    AnalyzeFile {
                        path: "ok.biv".into(),
                        source: SRC.into(),
                    },
                    AnalyzeFile {
                        path: "bad.biv".into(),
                        source: "func oops {".into(),
                    },
                ],
                cache_cap: None,
            })
            .unwrap();
        let Response::Analyze {
            output,
            errors,
            functions,
            ..
        } = response
        else {
            panic!("expected analyze response");
        };
        assert_eq!(functions, 1, "the good file is still analyzed");
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].path, "bad.biv");
        assert!(errors[0].message.contains("parse error"));
        assert!(output.contains("══ ok.biv ══"));
        assert!(!output.contains("bad.biv"), "failed files get no header");
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn zero_capacity_queue_answers_busy_with_retry_hint() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        config.queue_cap = 0;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let response = client
            .request(&Request::Analyze {
                files: files(1),
                cache_cap: None,
            })
            .unwrap();
        let Response::Busy { retry_after_ms } = response else {
            panic!("expected busy, got {response:?}");
        };
        assert!(retry_after_ms >= 10);
        let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        let rejected = stats
            .get("requests")
            .unwrap()
            .get("rejected_busy")
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(rejected, 1);
        client.request(&Request::Shutdown).unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.rejected_busy, 1);
    }

    #[test]
    fn request_timeout_recovers_the_worker() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        config.request_timeout = Duration::ZERO;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let response = client
            .request(&Request::Analyze {
                files: files(4),
                cache_cap: None,
            })
            .unwrap();
        let Response::Error { kind, .. } = response else {
            panic!("expected timeout, got {response:?}");
        };
        assert_eq!(kind, "timeout");
        // The worker discards the late result and keeps serving: give it
        // a moment, then confirm with a normal-timeout server op.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
                panic!("expected stats");
            };
            let late = stats
                .get("requests")
                .unwrap()
                .get("late_results")
                .unwrap()
                .as_i64()
                .unwrap();
            if late >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "late result never recorded");
            std::thread::sleep(Duration::from_millis(20));
        }
        client.request(&Request::Shutdown).unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.timeouts, 1);
    }

    #[test]
    fn bad_frames_answer_bad_request_and_keep_the_connection() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let endpoint = Endpoint::parse(&endpoint);
        let mut conn = Conn::connect(&endpoint).unwrap();
        write_frame(&mut conn, b"this is not json").unwrap();
        let payload = crate::frame::read_frame(&mut conn, MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        let response = Response::decode(&payload).unwrap();
        let Response::Error { kind, .. } = response else {
            panic!("expected error, got {response:?}");
        };
        assert_eq!(kind, "bad-request");
        // The same connection still serves a valid request.
        write_frame(&mut conn, &Request::Ping.encode()).unwrap();
        let payload = crate::frame::read_frame(&mut conn, MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), Response::Pong);
        write_frame(&mut conn, &Request::Shutdown.encode()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn warm_restart_serves_from_disk_with_identical_bytes() {
        let dir = std::env::temp_dir().join(format!("bivd-warm-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Cold run: populate the store, drain (which flushes it).
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 2;
        config.cache_dir = Some(dir.clone());
        let (endpoint, handle) = spawn_server(config.clone());
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let cold = client
            .request(&Request::Analyze {
                files: files(3),
                cache_cap: None,
            })
            .unwrap();
        let Response::Analyze {
            output: cold_output,
            analyzed: cold_analyzed,
            ..
        } = cold
        else {
            panic!("expected analyze response");
        };
        assert_eq!(cold_analyzed, 1, "one distinct structure analyzed");
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();

        // Warm restart: a fresh process-equivalent server over the same
        // store. The memory tier is cold; the disk tier answers.
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let warm = client
            .request(&Request::Analyze {
                files: files(3),
                cache_cap: None,
            })
            .unwrap();
        let Response::Analyze {
            output: warm_output,
            analyzed: warm_analyzed,
            cached: warm_cached,
            ..
        } = warm
        else {
            panic!("expected analyze response");
        };
        assert_eq!(warm_analyzed, 0, "nothing re-analyzed after restart");
        assert_eq!(warm_cached, 3);
        assert_eq!(warm_output, cold_output, "warm restart changes no bytes");

        let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        let store = stats.get("store").expect("store gauges present");
        assert_eq!(store.get("disk_hits").unwrap().as_i64(), Some(1));
        assert_eq!(store.get("records_live").unwrap().as_i64(), Some(1));
        assert_eq!(
            store.get("corrupt_records_skipped").unwrap().as_i64(),
            Some(0)
        );
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_payload_is_json_parsable_end_to_end() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(Json::parse(&stats.to_text()).unwrap(), stats);
        assert_eq!(
            stats
                .get("queue")
                .unwrap()
                .get("capacity")
                .unwrap()
                .as_i64(),
            Some(64)
        );
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }
}
