//! The resident analysis server.
//!
//! Two front-ends feed one worker pool:
//!
//! ```text
//!  event loop (default on Linux: epoll owns every connection's I/O)
//!      ├─ ping / stats / shutdown: answered inline from the loop
//!      └─ analyze / preload: bounded queue ── worker pool ── shared
//!         StructuralCache ── completion queue ── event loop writes
//!
//!  accept loop (--net-threaded, and non-Linux): thread per connection
//!      ├─ ping / stats / shutdown: answered inline
//!      └─ analyze: bounded queue ── worker pool ── mpsc reply
//! ```
//!
//! The two modes answer byte-identical responses — the threaded mode
//! exists for differential testing and as the portable fallback; see
//! [`crate::event`] for the readiness-driven implementation.
//!
//! Design rules, in order:
//!
//! 1. **Determinism** — analyze responses are byte-identical to a local
//!    `bivc` batch run: summaries are canonical (so cache warmth cannot
//!    leak into them) and the rendered stats line is a cold-run replay
//!    ([`biv_core::cold_batch_stats`]), never the warm cache's view.
//! 2. **Explicit backpressure** — a full queue answers `busy` with a
//!    `retry_after_ms` hint immediately; the server never buffers
//!    unbounded work.
//! 3. **Bounded everything** — requests carry a wall-clock timeout (the
//!    handler answers `timeout` and the worker's late result is
//!    discarded, not the worker), reads poll so drain cannot hang on an
//!    idle client, and drain itself grants a grace period per
//!    connection.
//! 4. **No dropped accepted work** — a request that was queued is
//!    always analyzed and answered, including during drain; requests
//!    arriving after drain began get an explicit `draining` error.

use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use biv_core::{
    analyze_batch_shared_backend, cold_batch_stats, render_grouped_with, resolve_jobs,
    AnalysisConfig, BatchOptions, Budget, CacheBackend, StructuralCache,
};
use biv_ir::parser::parse_program;
use biv_ir::Function;
use biv_store::{Store, StoreOptions, TieredCache};

use crate::cluster::ClusterHandle;
use crate::frame::{write_frame, MAX_FRAME_BYTES};
use crate::metrics::{CacheGauges, Metrics, PhaseSample, ShardInfo};
use crate::net::{Conn, Endpoint, Listener};
use crate::pool::{JobQueue, PushError};
use crate::proto::{AnalyzeFile, FileError, FleetFile, ReplicaEntry, Request, Response};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Worker threads; `0` resolves like `bivc --jobs 0` (the
    /// `BIV_JOBS` variable, then available parallelism).
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer `busy`.
    pub queue_cap: usize,
    /// Shared structural-cache capacity.
    pub cache_cap: usize,
    /// Per-request wall-clock budget, queue wait included.
    pub request_timeout: Duration,
    /// Largest accepted frame payload.
    pub max_frame_bytes: usize,
    /// Accept-loop and idle-read poll interval.
    pub poll_interval: Duration,
    /// How long a mid-frame read may continue once drain has begun.
    pub drain_grace: Duration,
    /// Resource budget applied to every analysis. Breaches degrade the
    /// affected values to `unknown` with a recorded reason; they never
    /// fail the request.
    pub budget: Budget,
    /// Directory of the durable analysis store. `None` serves from the
    /// in-memory cache alone; `Some` preloads the store on startup
    /// (warm restart), writes summaries through to it, and flushes it —
    /// fsync plus atomic index snapshot — when the drain completes.
    pub cache_dir: Option<PathBuf>,
    /// This server's shard id within a fleet (`--fleet shard=K/N`).
    /// `0` with `shard_count == 1` is the single-process identity.
    pub shard_id: u32,
    /// The fleet size this server belongs to; `1` outside any fleet.
    pub shard_count: u32,
    /// Which network front-end owns connection I/O.
    pub net_mode: NetMode,
    /// The membership/replication agent, when this server is a fleet
    /// member started with peers. `None` serves `gossip`/`members`
    /// with a `no-cluster` error and replicates nothing.
    pub cluster: Option<ClusterHandle>,
}

/// The server's network front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// Readiness-driven epoll event loop (Linux). On other platforms
    /// this silently falls back to [`NetMode::Threaded`].
    Event,
    /// Blocking accept loop with one handler thread per connection
    /// (`--net-threaded`) — the portable fallback and the differential
    /// baseline for the event loop.
    Threaded,
}

impl Default for NetMode {
    fn default() -> NetMode {
        if cfg!(target_os = "linux") {
            NetMode::Event
        } else {
            NetMode::Threaded
        }
    }
}

impl ServerConfig {
    /// Defaults for an endpoint: auto workers, queue of 64, the batch
    /// driver's default cache capacity, 30 s request timeout.
    pub fn new(endpoint: Endpoint) -> ServerConfig {
        ServerConfig {
            endpoint,
            workers: 0,
            queue_cap: 64,
            cache_cap: BatchOptions::default().cache_capacity,
            request_timeout: Duration::from_secs(30),
            max_frame_bytes: MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(25),
            drain_grace: Duration::from_secs(5),
            budget: Budget::UNLIMITED,
            cache_dir: None,
            shard_id: 0,
            shard_count: 1,
            net_mode: NetMode::default(),
            cluster: None,
        }
    }
}

/// Final counters reported when [`Server::run`] returns after drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Analyze requests answered with a report.
    pub analyze_ok: u64,
    /// Requests answered `busy`.
    pub rejected_busy: u64,
    /// Requests answered `timeout`.
    pub timeouts: u64,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} connections, {} requests, {} analyzed, {} busy-rejected, {} timed out",
            self.connections, self.requests, self.analyze_ok, self.rejected_busy, self.timeouts
        )
    }
}

/// Where a worker delivers a finished response. The threaded front-end
/// blocks a handler thread on an mpsc receiver; the event loop hands
/// workers a completion-queue sink instead (see [`crate::event`]).
pub(crate) trait ReplySink: Send + Sync {
    /// Delivers the response. `false` means the requester is already
    /// gone (timed out, connection died) — the caller counts the result
    /// as late.
    fn send(&self, response: Response) -> bool;
}

struct ChannelSink(mpsc::Sender<Response>);

impl ReplySink for ChannelSink {
    fn send(&self, response: Response) -> bool {
        self.0.send(response).is_ok()
    }
}

/// What a queued job does.
pub(crate) enum JobKind {
    /// A plain analyze: one rendered report ending in the stats line.
    Analyze {
        files: Vec<AnalyzeFile>,
        cache_cap: Option<usize>,
        invariants: bool,
    },
    /// A fleet analyze: per-file blocks plus hashes, no stats line.
    AnalyzeFleet {
        files: Vec<AnalyzeFile>,
        cache_cap: Option<usize>,
        invariants: bool,
    },
    /// Warm-handoff preload from a drained shard's store snapshot.
    Preload { dir: String },
    /// Replica write-through pushed by a key's primary.
    Replicate { entries: Vec<ReplicaEntry> },
}

/// One queued request.
pub(crate) struct Job {
    pub(crate) kind: JobKind,
    pub(crate) submitted: Instant,
    pub(crate) reply: Arc<dyn ReplySink>,
}

/// State shared by the front-end (accept loop or event loop), handlers,
/// and workers.
pub(crate) struct Shared<'a> {
    pub(crate) config: &'a ServerConfig,
    pub(crate) workers: usize,
    pub(crate) queue: JobQueue<Job>,
    pub(crate) cache: Mutex<Box<dyn CacheBackend + Send>>,
    pub(crate) metrics: Metrics,
    pub(crate) started: Instant,
    pub(crate) shutdown: &'a AtomicBool,
}

impl<'a> Shared<'a> {
    /// Opens the cache backend and assembles the shared state both
    /// front-ends serve from.
    pub(crate) fn open(
        config: &'a ServerConfig,
        shutdown: &'a AtomicBool,
    ) -> io::Result<Shared<'a>> {
        // Opening the store *is* the preload: every surviving record is
        // decoded into its index before the first request is accepted.
        let backend: Box<dyn CacheBackend + Send> = match &config.cache_dir {
            Some(dir) => Box::new(TieredCache::open(
                dir,
                config.cache_cap,
                &StoreOptions::for_budget(&config.budget),
            )?),
            None => Box::new(StructuralCache::new(config.cache_cap)),
        };
        Ok(Shared {
            config,
            workers: resolve_jobs(config.workers),
            queue: JobQueue::new(config.queue_cap),
            cache: Mutex::new(backend),
            metrics: Metrics::new(),
            started: Instant::now(),
            shutdown,
        })
    }

    /// Flushes the durable tier at the end of drain. A flush failure
    /// degrades persistence, not the drain.
    pub(crate) fn flush_backend(&self) {
        if let Ok(mut backend) = self.cache.lock() {
            if let Err(e) = backend.flush() {
                eprintln!("bivd: cache flush failed during drain: {e}");
            }
        }
    }

    /// The end-of-drain sequence shared by both front-ends: make the
    /// store durable, then let the cluster agent announce departure and
    /// hand the snapshot to the shards absorbing our key ranges.
    pub(crate) fn finish_drain(&self) {
        self.flush_backend();
        if let Some(cluster) = &self.config.cluster {
            cluster.0.on_drained();
        }
    }

    /// The final counters [`Server::run`] reports after drain.
    pub(crate) fn summary(&self) -> ServeSummary {
        ServeSummary {
            connections: self.metrics.connections.load(Ordering::Relaxed),
            requests: self.metrics.requests.load(Ordering::Relaxed),
            analyze_ok: self.metrics.analyze_ok.load(Ordering::Relaxed),
            rejected_busy: self.metrics.rejected_busy.load(Ordering::Relaxed),
            timeouts: self.metrics.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// A bound, not-yet-serving server.
pub struct Server {
    listener: Listener,
    config: ServerConfig,
}

impl Server {
    /// Binds the configured endpoint (replacing a stale Unix socket
    /// file, refusing a live one).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = Listener::bind(&config.endpoint)?;
        Ok(Server { listener, config })
    }

    /// Where the server actually listens — resolves TCP port 0.
    pub fn bound_endpoint(&self) -> String {
        self.listener.bound_endpoint()
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        resolve_jobs(self.config.workers)
    }

    /// Installs the membership/replication agent after binding — the
    /// agent needs the *bound* endpoint (TCP port 0 resolved) to
    /// advertise, so it cannot exist before `bind`.
    pub fn install_cluster(&mut self, cluster: ClusterHandle) {
        self.config.cluster = Some(cluster);
    }

    /// Serves until `shutdown` becomes true (SIGINT/SIGTERM via
    /// [`crate::signal::install`], or a protocol `shutdown` request),
    /// then drains: stops accepting, finishes every queued request,
    /// answers it, and returns the final counters.
    pub fn run(self, shutdown: &AtomicBool) -> io::Result<ServeSummary> {
        let Server { listener, config } = self;
        #[cfg(target_os = "linux")]
        if config.net_mode == NetMode::Event {
            return crate::event::run_event(listener, config, shutdown);
        }
        run_threaded(listener, config, shutdown)
    }
}

/// The blocking front-end: a polling accept loop with one handler
/// thread per connection.
fn run_threaded(
    listener: Listener,
    config: ServerConfig,
    shutdown: &AtomicBool,
) -> io::Result<ServeSummary> {
    let shared = Shared::open(&config, shutdown)?;
    let workers = shared.workers;
    listener.set_nonblocking(true)?;

    std::thread::scope(|scope| {
        let shared = &shared;
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            worker_handles.push(scope.spawn(move || worker_loop(shared)));
        }

        let mut handlers = Vec::new();
        while !shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok(conn) => {
                    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                    handlers.push(scope.spawn(move || handle_conn(shared, conn)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(config.poll_interval);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient accept failures (EMFILE under load)
                    // must not kill the daemon; back off and retry.
                    eprintln!("bivd: accept error: {e}");
                    std::thread::sleep(config.poll_interval);
                }
            }
            // Finished handler threads are detached; the scope still
            // guarantees they are joined before `run` returns.
            if handlers.len() >= 64 {
                handlers.retain(|h| !h.is_finished());
            }
            // Replace any worker that died. While the server is
            // accepting, the queue is open, so a finished worker
            // thread can only mean a panic escaped the per-job
            // catch (e.g. the injected `worker.die` fault). The
            // stranded client was already answered by the worker's
            // reply guard; here we restore pool capacity.
            for slot in worker_handles.iter_mut() {
                if slot.is_finished() {
                    let fresh = scope.spawn(move || worker_loop(shared));
                    let dead = std::mem::replace(slot, fresh);
                    let _ = dead.join(); // Err(payload) is expected here
                    shared
                        .metrics
                        .workers_respawned
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // Drain: stop accepting (close + unlink the endpoint so new
        // connects fail fast), let every handler finish its in-flight
        // request, then release the workers once the queue is empty.
        drop(listener);
        if let Endpoint::Unix(path) = &config.endpoint {
            std::fs::remove_file(path).ok();
        }
        for handler in handlers {
            let _ = handler.join();
        }
        shared.queue.close();
        for worker in worker_handles {
            let _ = worker.join();
        }
        // Every queued request is answered and the workers are
        // gone: make the store durable (and run the departure
        // handoff, if this server is a fleet member) before
        // reporting the drain.
        shared.finish_drain();

        Ok(shared.summary())
    })
}

/// One worker: pop, parse, classify through the shared cache, render,
/// reply. A send failure means the request already timed out or its
/// connection died — the result is discarded and the worker moves on
/// (this is the whole worker-recovery story: workers never carry state
/// from one request into the next).
///
/// Each job runs inside `catch_unwind`, so a panic in analysis answers
/// that one request with an `internal` error and the worker keeps
/// serving. A panic *outside* the catch (the injected `worker.die`
/// site, or a bug in the dispatch code itself) kills the thread — the
/// [`ReplyGuard`] still answers the client mid-unwind, and the accept
/// loop respawns the worker.
pub(crate) fn worker_loop(shared: &Shared<'_>) {
    let opts = BatchOptions {
        jobs: 1, // request-level parallelism comes from the pool itself
        config: AnalysisConfig {
            budget: shared.config.budget,
            ..AnalysisConfig::default()
        },
        cache_capacity: shared.config.cache_cap,
    };
    while let Some(job) = shared.queue.pop() {
        let guard = ReplyGuard {
            reply: job.reply.clone(),
            metrics: &shared.metrics,
        };
        crate::faults::maybe_panic("worker.die");
        // UnwindSafe audit: the closure borrows `shared` (atomics and
        // mutexes — both poison-or-recover on unwind; the structural
        // cache mutex is only held inside `analyze_batch_shared`, which
        // releases it between functions) and `job`/`opts` by shared
        // reference without interior mutation. Core thread-local
        // scratch is reset by `analyze_protected`'s own catch before
        // the panic ever reaches this boundary.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::faults::maybe_panic("worker.job.panic");
            process_job(shared, &opts, &job)
        }));
        drop(guard); // not panicking here: the guard disarms silently
        let response = match outcome {
            Ok(response) => response,
            Err(_) => {
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                internal_error("analysis panicked while serving the request")
            }
        };
        if !job.reply.send(response) {
            shared.metrics.late_results.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Answers a job's client if the worker thread unwinds past it, so even
/// a panic outside the per-job catch never strands a waiting handler
/// until its timeout. Dropped without a panic in flight, it does
/// nothing.
struct ReplyGuard<'m> {
    reply: Arc<dyn ReplySink>,
    metrics: &'m Metrics,
}

impl Drop for ReplyGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            let _ = self.reply.send(internal_error(
                "worker thread died while serving the request",
            ));
        }
    }
}

fn internal_error(detail: &str) -> Response {
    Response::Error {
        kind: "internal".into(),
        message: format!("internal server error: {detail}; the request was not completed"),
    }
}

/// The panic-isolated body of one queued job.
fn process_job(shared: &Shared<'_>, opts: &BatchOptions, job: &Job) -> Response {
    match &job.kind {
        JobKind::Analyze {
            files,
            cache_cap,
            invariants,
        } => process_analyze(
            shared,
            opts,
            job.submitted,
            files,
            *cache_cap,
            false,
            *invariants,
        ),
        JobKind::AnalyzeFleet {
            files,
            cache_cap,
            invariants,
        } => process_analyze(
            shared,
            opts,
            job.submitted,
            files,
            *cache_cap,
            true,
            *invariants,
        ),
        JobKind::Preload { dir } => process_preload(shared, dir),
        JobKind::Replicate { entries } => process_replicate(shared, entries),
    }
}

/// Parse, classify through the shared cache, render, record metrics.
///
/// In `fleet` shape the response carries one block per *file* (header +
/// that file's function summaries) plus the file's structural hashes,
/// and no stats line — the router owns the stats line, replayed cold
/// over the whole batch after reassembly, which is what keeps a sharded
/// run byte-identical to a local one.
fn process_analyze(
    shared: &Shared<'_>,
    opts: &BatchOptions,
    submitted: Instant,
    files: &[AnalyzeFile],
    cache_cap: Option<usize>,
    fleet: bool,
    invariants: bool,
) -> Response {
    let queue_wait = submitted.elapsed();

    let t = Instant::now();
    let mut funcs: Vec<Function> = Vec::new();
    // Per input file: its function count, or its parse error.
    let mut parsed: Vec<Result<usize, String>> = Vec::with_capacity(files.len());
    for file in files {
        match parse_program(&file.source) {
            Ok(program) => {
                parsed.push(Ok(program.functions.len()));
                funcs.extend(program.functions);
            }
            Err(e) => parsed.push(Err(format!("{}: parse error: {e}", file.path))),
        }
    }
    let parse = t.elapsed();

    let t = Instant::now();
    let report = analyze_batch_shared_backend(&funcs, opts, &shared.cache);
    let analyze = t.elapsed();

    // Replica write-through: hand each file's committed summaries to
    // the cluster agent, keyed by the file's source (the agent derives
    // the content key and pushes to the key's ring successors
    // asynchronously). Summaries are pure functions of the structural
    // hash, so replicating the whole file — hits included — is
    // idempotent and can never diverge a replica.
    if let Some(cluster) = &shared.config.cluster {
        let mut next = 0usize;
        for (file, outcome) in files.iter().zip(&parsed) {
            if let Ok(count) = outcome {
                let entries: Vec<_> = report.functions[next..next + count]
                    .iter()
                    .filter(|f| f.summary.cacheable())
                    .map(|f| (f.hash, Arc::clone(&f.summary)))
                    .collect();
                next += count;
                if !entries.is_empty() {
                    cluster.0.on_commit(&file.source, &entries);
                }
            }
        }
    }

    let t = Instant::now();
    let replay_cap = cache_cap.unwrap_or_else(|| BatchOptions::default().cache_capacity);
    let response = if fleet {
        let mut next = 0usize;
        let mut out_files = Vec::with_capacity(files.len());
        for (file, outcome) in files.iter().zip(&parsed) {
            match outcome {
                Ok(count) => {
                    let mut output = format!("══ {} ══\n", file.path);
                    let mut hashes = Vec::with_capacity(*count);
                    for summary in &report.functions[next..next + count] {
                        output.push_str(&summary.render_with(invariants));
                        hashes.push(summary.hash);
                    }
                    next += count;
                    out_files.push(FleetFile {
                        path: file.path.clone(),
                        output,
                        hashes,
                        error: None,
                    });
                }
                Err(message) => out_files.push(FleetFile {
                    path: file.path.clone(),
                    output: String::new(),
                    hashes: Vec::new(),
                    error: Some(message.clone()),
                }),
            }
        }
        Response::AnalyzeFleet {
            files: out_files,
            functions: report.stats.functions,
            analyzed: report.stats.misses,
            cached: report.stats.hits,
        }
    } else {
        // The rendered stats line replays a cold cache at the client's
        // capacity, so the output never depends on what earlier
        // requests warmed — see the module docs. Cumulative warm
        // counters remain visible through `stats`.
        let mut ranges: Vec<(String, usize)> = Vec::new();
        let mut errors: Vec<FileError> = Vec::new();
        for (file, outcome) in files.iter().zip(&parsed) {
            match outcome {
                Ok(count) => ranges.push((file.path.clone(), *count)),
                Err(message) => errors.push(FileError {
                    path: file.path.clone(),
                    message: message.clone(),
                }),
            }
        }
        let hashes: Vec<u64> = report.functions.iter().map(|f| f.hash).collect();
        let cold = cold_batch_stats(&hashes, replay_cap);
        let output = render_grouped_with(&ranges, &report.functions, &cold, invariants);
        Response::Analyze {
            output,
            functions: report.stats.functions,
            analyzed: report.stats.misses,
            cached: report.stats.hits,
            errors,
        }
    };
    let render = t.elapsed();

    shared
        .metrics
        .functions
        .fetch_add(report.stats.functions as u64, Ordering::Relaxed);
    shared.metrics.analyze_ok.fetch_add(1, Ordering::Relaxed);
    shared.metrics.record_phases(PhaseSample {
        queue_wait,
        parse,
        analyze,
        render,
        total: submitted.elapsed(),
    });

    response
}

/// Warm handoff: open a drained shard's store snapshot and feed every
/// surviving record into this server's cache tiers via `commit` — the
/// same path analysis results take, so `cacheable()` filtering, memory
/// bounds, and write-through to our own store all apply unchanged.
///
/// The snapshot is opened under *this* server's format/budget options:
/// a snapshot written by an incompatible shard yields `loaded: 0`
/// (wholesale invalidation on open) rather than summaries the successor
/// could never have computed itself.
fn process_preload(shared: &Shared<'_>, dir: &str) -> Response {
    // `Store::open` creates missing directories (it serves fresh
    // stores); a handoff source must already exist, or a typo'd path
    // would silently ack an empty preload.
    if !Path::new(dir).is_dir() {
        return Response::Error {
            kind: "preload".into(),
            message: format!("preload from {dir} failed: no store directory there"),
        };
    }
    let options = StoreOptions::for_budget(&shared.config.budget);
    match Store::open(Path::new(dir), &options) {
        Ok(store) => {
            let mut backend = shared.cache.lock().expect("structural cache poisoned");
            let mut loaded = 0usize;
            for (hash, summary) in store.entries() {
                backend.commit(hash, Arc::clone(summary));
                loaded += 1;
            }
            Response::PreloadAck { loaded }
        }
        Err(e) => Response::Error {
            kind: "preload".into(),
            message: format!("preload from {dir} failed: {e}"),
        },
    }
}

/// Replica write-through from a key's primary: decode each pushed
/// summary and commit it through the normal cache path (memory bounds,
/// `cacheable()` filtering, and write-through to our own store all
/// apply). Commits are idempotent — a summary is a pure function of its
/// hash — so re-delivery after a retry is harmless. An undecodable
/// entry fails the *request* (the primary will retry or drop it), never
/// the server.
fn process_replicate(shared: &Shared<'_>, entries: &[ReplicaEntry]) -> Response {
    let mut decoded = Vec::with_capacity(entries.len());
    for entry in entries {
        match biv_store::codec::decode_summary(&entry.bytes) {
            Ok(summary) => decoded.push((entry.hash, summary)),
            Err(e) => {
                return Response::Error {
                    kind: "replicate".into(),
                    message: format!("undecodable replica summary for {:016x}: {e:?}", entry.hash),
                }
            }
        }
    }
    let mut backend = shared.cache.lock().expect("structural cache poisoned");
    let mut stored = 0usize;
    for (hash, summary) in decoded {
        backend.commit(hash, summary);
        stored += 1;
    }
    drop(backend);
    shared
        .metrics
        .replica_received
        .fetch_add(stored as u64, Ordering::Relaxed);
    Response::ReplicateAck { stored }
}

/// Serves one connection until the peer closes, an error occurs, or
/// drain begins.
fn handle_conn(shared: &Shared<'_>, mut conn: Conn) {
    if conn
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    loop {
        let draining = shared.shutdown.load(Ordering::Relaxed);
        let payload = match read_frame_polling(shared, &mut conn) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return,
        };
        // A frame read after drain was observed is answered, not served:
        // the client gets an explicit rejection instead of a hang or a
        // silent drop, and the connection closes.
        if draining {
            let _ = respond(&mut conn, &draining_response());
            return;
        }
        let request = match Request::decode(&payload) {
            Ok(request) => {
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                request
            }
            Err(e) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let ok = respond(
                    &mut conn,
                    &Response::Error {
                        kind: "bad-request".into(),
                        message: e.to_string(),
                    },
                );
                if ok.is_err() {
                    return;
                }
                continue;
            }
        };
        let sent = match route_request(shared, request) {
            Routed::Inline { response, shutdown } => {
                // For shutdown: ack first so the requester sees the
                // drain begin, then flip the flag the front-end polls.
                let sent = respond(&mut conn, &response);
                if shutdown {
                    shared.shutdown.store(true, Ordering::Relaxed);
                }
                sent
            }
            Routed::Queue(kind) => {
                let response = serve_job(shared, kind);
                respond(&mut conn, &response)
            }
        };
        if sent.is_err() {
            return;
        }
    }
}

/// How a decoded request is served.
pub(crate) enum Routed {
    /// Answered without touching the worker pool.
    Inline {
        /// What to send.
        response: Response,
        /// Flip the drain flag after sending (a `shutdown` request).
        shutdown: bool,
    },
    /// Submitted to the bounded queue.
    Queue(JobKind),
}

/// Classifies a request: inline (ping/stats/shutdown, and fleet
/// requests that reached the wrong shard → redirect) or queued. Shared
/// by both front-ends so they serve identical semantics.
pub(crate) fn route_request(shared: &Shared<'_>, request: Request) -> Routed {
    let inline = |response| Routed::Inline {
        response,
        shutdown: false,
    };
    match request {
        Request::Ping => inline(Response::Pong),
        Request::Stats => inline(Response::Stats(stats_json(shared))),
        Request::Shutdown => Routed::Inline {
            response: Response::ShutdownAck,
            shutdown: true,
        },
        Request::Analyze {
            files,
            cache_cap,
            invariants,
        } => Routed::Queue(JobKind::Analyze {
            files,
            cache_cap,
            invariants,
        }),
        Request::AnalyzeFleet {
            files,
            cache_cap,
            shard_id,
            shard_count,
            invariants,
        } => {
            let config = shared.config;
            if shard_id != config.shard_id || shard_count != config.shard_count {
                // Don't serve a batch routed under the wrong fleet
                // view: the router's cache locality (and its stats
                // attribution) depend on its map being right. Answer
                // with our real identity so it can repair and re-route.
                inline(Response::Redirect {
                    shard_id: config.shard_id,
                    shard_count: config.shard_count,
                    message: format!(
                        "this server is shard {}/{}, not {shard_id}/{shard_count}",
                        config.shard_id, config.shard_count
                    ),
                })
            } else {
                Routed::Queue(JobKind::AnalyzeFleet {
                    files,
                    cache_cap,
                    invariants,
                })
            }
        }
        Request::Preload { dir } => Routed::Queue(JobKind::Preload { dir }),
        // Membership ops are answered inline from the event/accept
        // loop: a gossip merge is a small in-memory operation and must
        // stay responsive even when the worker pool is saturated —
        // heartbeats delayed behind analyze jobs would look like
        // failures.
        Request::Gossip { from, view } => inline(match &shared.config.cluster {
            Some(cluster) => Response::Gossip {
                view: cluster.0.on_gossip(from, &view),
            },
            None => no_cluster_response(),
        }),
        Request::Members => inline(match &shared.config.cluster {
            Some(cluster) => Response::Members {
                view: cluster.0.view(),
            },
            None => no_cluster_response(),
        }),
        // Replica pushes take the cache lock and may hit the store, so
        // they queue like preloads; a full queue answers busy and the
        // pushing primary retries with backoff.
        Request::Replicate { entries } => Routed::Queue(JobKind::Replicate { entries }),
    }
}

/// The rejection for membership ops on a server with no cluster agent.
/// Routers probe with `members` to decide between seed-bootstrap and
/// static-list modes, so the kind is load-bearing.
fn no_cluster_response() -> Response {
    Response::Error {
        kind: "no-cluster".into(),
        message: "this server has no membership agent (start bivd with --peers)".into(),
    }
}

/// Submits a job to the bounded queue without waiting for its result.
/// `Err` carries the response to send instead (busy backpressure or the
/// draining rejection).
pub(crate) fn submit_job(
    shared: &Shared<'_>,
    kind: JobKind,
    reply: Arc<dyn ReplySink>,
) -> Result<(), Response> {
    let analyze = !matches!(kind, JobKind::Preload { .. });
    // Injected queue-full storm: reject exactly as a real full queue
    // would, *before* the request counts as accepted, so the
    // no-dropped-accepted-work invariant is untouched.
    if crate::faults::fire("queue.storm") {
        shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
        return Err(Response::Busy {
            retry_after_ms: retry_hint_ms(shared),
        });
    }
    let job = Job {
        kind,
        submitted: Instant::now(),
        reply,
    };
    match shared.queue.try_push(job) {
        Ok(()) => {
            if analyze {
                shared
                    .metrics
                    .analyze_accepted
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        }
        Err(PushError::Full(_)) => {
            shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
            Err(Response::Busy {
                retry_after_ms: retry_hint_ms(shared),
            })
        }
        Err(PushError::Closed(_)) => Err(draining_response()),
    }
}

/// The rejection for a frame that arrived after drain began — identical
/// from both front-ends.
pub(crate) fn draining_response() -> Response {
    Response::Error {
        kind: "draining".into(),
        message: "server is draining; retry against a fresh instance".into(),
    }
}

/// The timeout response, shared by both front-ends so the bytes match.
pub(crate) fn timeout_response(shared: &Shared<'_>) -> Response {
    shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
    Response::Error {
        kind: "timeout".into(),
        message: format!(
            "request exceeded {} ms (queue wait included); the result will be discarded",
            shared.config.request_timeout.as_millis()
        ),
    }
}

/// Submits a job to the pool and waits, bounded by the request timeout
/// (the threaded front-end's blocking path).
fn serve_job(shared: &Shared<'_>, kind: JobKind) -> Response {
    let (reply, result) = mpsc::channel();
    if let Err(rejection) = submit_job(shared, kind, Arc::new(ChannelSink(reply))) {
        return rejection;
    }
    match result.recv_timeout(shared.config.request_timeout) {
        Ok(response) => response,
        Err(mpsc::RecvTimeoutError::Timeout) => timeout_response(shared),
        Err(mpsc::RecvTimeoutError::Disconnected) => Response::Error {
            kind: "internal".into(),
            message: "worker dropped the request".into(),
        },
    }
}

/// The backpressure hint: roughly how long until a queue slot frees up,
/// from the live p50 end-to-end latency and the current depth.
fn retry_hint_ms(shared: &Shared<'_>) -> u64 {
    let p50 = shared.metrics.total_p50().as_millis() as u64;
    let per_request = if p50 == 0 { 50 } else { p50 };
    let depth = shared.queue.depth() as u64;
    (per_request * (depth + 1) / shared.workers.max(1) as u64).clamp(10, 5_000)
}

/// Builds the live `stats` payload.
fn stats_json(shared: &Shared<'_>) -> crate::json::Json {
    let backend = shared.cache.lock().expect("structural cache poisoned");
    let mem = backend.memory();
    let gauges = CacheGauges {
        hits: mem.hits(),
        misses: mem.misses(),
        evictions: mem.evictions(),
        entries: mem.len(),
        capacity: mem.capacity(),
    };
    let store = backend.store_gauges();
    drop(backend);
    let mut stats = shared.metrics.snapshot_json(
        shared.queue.depth(),
        shared.queue.capacity(),
        gauges,
        store,
        shared.workers,
        ShardInfo {
            shard_id: shared.config.shard_id,
            shard_count: shared.config.shard_count,
            uptime: shared.started.elapsed(),
        },
    );
    // A fleet member appends its membership and replication sections.
    if let Some(cluster) = &shared.config.cluster {
        if let crate::json::Json::Obj(pairs) = &mut stats {
            pairs.extend(cluster.0.stats_sections());
        }
    }
    stats
}

fn respond(conn: &mut Conn, response: &Response) -> io::Result<()> {
    write_frame(conn, &response.encode())
}

/// Reads one frame from a connection whose read timeout is the poll
/// interval, so drain is always observed within one poll:
///
/// - idle (no prefix byte yet) + drain → clean close (`Ok(None)`);
/// - mid-frame + drain → the peer gets `drain_grace` to finish the
///   frame, then the read fails and the connection closes.
fn read_frame_polling(shared: &Shared<'_>, conn: &mut Conn) -> io::Result<Option<Vec<u8>>> {
    let mut grace_deadline: Option<Instant> = None;
    let mut prefix = [0u8; 4];
    if !read_full_polling(shared, conn, &mut prefix, true, &mut grace_deadline)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > shared.config.max_frame_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {len} bytes exceeds the {}-byte limit",
                shared.config.max_frame_bytes
            ),
        ));
    }
    let mut payload = vec![0u8; len];
    read_full_polling(shared, conn, &mut payload, false, &mut grace_deadline)?;
    Ok(Some(payload))
}

/// Fills `buf`, retrying poll timeouts. Returns `false` only when
/// `eof_ok` and the stream ended (or drain began) before the first
/// byte.
fn read_full_polling(
    shared: &Shared<'_>,
    conn: &mut Conn,
    buf: &mut [u8],
    eof_ok: bool,
    grace_deadline: &mut Option<Instant>,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                if eof_ok && filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::Relaxed) {
                    if eof_ok && filled == 0 {
                        // Idle connection during drain: close cleanly.
                        return Ok(false);
                    }
                    let deadline = *grace_deadline
                        .get_or_insert_with(|| Instant::now() + shared.config.drain_grace);
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "drain grace expired mid-frame",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::json::Json;
    use std::sync::atomic::AtomicBool;

    const SRC: &str = "func f(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }\n";

    fn spawn_server(mut config: ServerConfig) -> (String, std::thread::JoinHandle<ServeSummary>) {
        config.endpoint = Endpoint::Tcp("127.0.0.1:0".into());
        let server = Server::bind(config).expect("bind 127.0.0.1:0");
        let endpoint = server.bound_endpoint();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let handle = std::thread::spawn(move || server.run(flag).expect("server run"));
        (endpoint, handle)
    }

    fn files(n: usize) -> Vec<AnalyzeFile> {
        (0..n)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: SRC.to_string(),
            })
            .collect()
    }

    #[test]
    fn ping_analyze_stats_shutdown_roundtrip() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 2;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);

        let response = client
            .request(&Request::Analyze {
                files: files(2),
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        let Response::Analyze {
            output,
            functions,
            analyzed,
            cached,
            errors,
        } = response
        else {
            panic!("expected analyze response");
        };
        assert_eq!((functions, analyzed, cached), (2, 1, 1));
        assert!(errors.is_empty());
        assert!(output.starts_with("══ mem/0.biv ══\n"));
        assert!(output.contains("══ mem/1.biv ══\n"));
        assert!(
            output.ends_with("batch: 2 functions, 1 analyzed, 1 cache hits, 0 evictions\n"),
            "stats line replays a cold cache:\n{output}"
        );

        // A second identical request is warm (cache hits) but renders
        // the exact same bytes.
        let again = client
            .request(&Request::Analyze {
                files: files(2),
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        let Response::Analyze {
            output: warm_output,
            analyzed: warm_analyzed,
            ..
        } = again
        else {
            panic!("expected analyze response");
        };
        assert_eq!(warm_analyzed, 0, "served from the warm cache");
        assert_eq!(warm_output, output, "warmth never changes the bytes");

        let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        let cache = stats.get("cache").unwrap();
        let hits = cache.get("hits").unwrap().as_i64().unwrap();
        let misses = cache.get("misses").unwrap().as_i64().unwrap();
        let submitted = stats
            .get("requests")
            .unwrap()
            .get("functions")
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(hits + misses, submitted, "hits + misses == functions");
        assert_eq!(misses, 1);
        let total = stats.get("latency").unwrap().get("total").unwrap();
        assert_eq!(total.get("count").unwrap().as_i64(), Some(2));

        assert_eq!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShutdownAck
        );
        let summary = handle.join().unwrap();
        assert_eq!(summary.analyze_ok, 2);
        assert!(summary.requests >= 4);
    }

    #[test]
    fn invariants_op_gates_rendering_without_changing_the_rest() {
        // A literal-init running sum: i = 1, 2, …; s its prefix sum.
        let src = "func sums(n) { i = 1 s = 0 loop { s = s + i i = i + 1 if i > n { break } } }\n";
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let file = || {
            vec![AnalyzeFile {
                path: "sums.biv".into(),
                source: src.into(),
            }]
        };
        let Response::Analyze { output: with, .. } =
            client.analyze_with(file(), None, true).unwrap()
        else {
            panic!("expected analyze response");
        };
        assert!(
            with.contains("invariant: "),
            "invariants op renders invariant lines:\n{with}"
        );
        let Response::Analyze {
            output: without, ..
        } = client.analyze(file(), None).unwrap()
        else {
            panic!("expected analyze response");
        };
        assert!(!without.contains("invariant: "), "{without}");
        // The flag only adds lines; filtering them out recovers the
        // plain report exactly, warm cache and all.
        let stripped: String = with
            .lines()
            .filter(|l| !l.trim_start().starts_with("invariant: "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, without);
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn parse_errors_are_reported_per_file() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let response = client
            .request(&Request::Analyze {
                files: vec![
                    AnalyzeFile {
                        path: "ok.biv".into(),
                        source: SRC.into(),
                    },
                    AnalyzeFile {
                        path: "bad.biv".into(),
                        source: "func oops {".into(),
                    },
                ],
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        let Response::Analyze {
            output,
            errors,
            functions,
            ..
        } = response
        else {
            panic!("expected analyze response");
        };
        assert_eq!(functions, 1, "the good file is still analyzed");
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].path, "bad.biv");
        assert!(errors[0].message.contains("parse error"));
        assert!(output.contains("══ ok.biv ══"));
        assert!(!output.contains("bad.biv"), "failed files get no header");
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn zero_capacity_queue_answers_busy_with_retry_hint() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        config.queue_cap = 0;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let response = client
            .request(&Request::Analyze {
                files: files(1),
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        let Response::Busy { retry_after_ms } = response else {
            panic!("expected busy, got {response:?}");
        };
        assert!(retry_after_ms >= 10);
        let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        let rejected = stats
            .get("requests")
            .unwrap()
            .get("rejected_busy")
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(rejected, 1);
        client.request(&Request::Shutdown).unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.rejected_busy, 1);
    }

    #[test]
    fn request_timeout_recovers_the_worker() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        config.request_timeout = Duration::ZERO;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let response = client
            .request(&Request::Analyze {
                files: files(4),
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        let Response::Error { kind, .. } = response else {
            panic!("expected timeout, got {response:?}");
        };
        assert_eq!(kind, "timeout");
        // The worker discards the late result and keeps serving: give it
        // a moment, then confirm with a normal-timeout server op.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
                panic!("expected stats");
            };
            let late = stats
                .get("requests")
                .unwrap()
                .get("late_results")
                .unwrap()
                .as_i64()
                .unwrap();
            if late >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "late result never recorded");
            std::thread::sleep(Duration::from_millis(20));
        }
        client.request(&Request::Shutdown).unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.timeouts, 1);
    }

    #[test]
    fn bad_frames_answer_bad_request_and_keep_the_connection() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let endpoint = Endpoint::parse(&endpoint);
        let mut conn = Conn::connect(&endpoint).unwrap();
        write_frame(&mut conn, b"this is not json").unwrap();
        let payload = crate::frame::read_frame(&mut conn, MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        let response = Response::decode(&payload).unwrap();
        let Response::Error { kind, .. } = response else {
            panic!("expected error, got {response:?}");
        };
        assert_eq!(kind, "bad-request");
        // The same connection still serves a valid request.
        write_frame(&mut conn, &Request::Ping.encode()).unwrap();
        let payload = crate::frame::read_frame(&mut conn, MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), Response::Pong);
        write_frame(&mut conn, &Request::Shutdown.encode()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn warm_restart_serves_from_disk_with_identical_bytes() {
        let dir = std::env::temp_dir().join(format!("bivd-warm-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Cold run: populate the store, drain (which flushes it).
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 2;
        config.cache_dir = Some(dir.clone());
        let (endpoint, handle) = spawn_server(config.clone());
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let cold = client
            .request(&Request::Analyze {
                files: files(3),
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        let Response::Analyze {
            output: cold_output,
            analyzed: cold_analyzed,
            ..
        } = cold
        else {
            panic!("expected analyze response");
        };
        assert_eq!(cold_analyzed, 1, "one distinct structure analyzed");
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();

        // Warm restart: a fresh process-equivalent server over the same
        // store. The memory tier is cold; the disk tier answers.
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let warm = client
            .request(&Request::Analyze {
                files: files(3),
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        let Response::Analyze {
            output: warm_output,
            analyzed: warm_analyzed,
            cached: warm_cached,
            ..
        } = warm
        else {
            panic!("expected analyze response");
        };
        assert_eq!(warm_analyzed, 0, "nothing re-analyzed after restart");
        assert_eq!(warm_cached, 3);
        assert_eq!(warm_output, cold_output, "warm restart changes no bytes");

        let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        let store = stats.get("store").expect("store gauges present");
        assert_eq!(store.get("disk_hits").unwrap().as_i64(), Some(1));
        assert_eq!(store.get("records_live").unwrap().as_i64(), Some(1));
        assert_eq!(
            store.get("corrupt_records_skipped").unwrap().as_i64(),
            Some(0)
        );
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_analyze_returns_blocks_and_redirects_wrong_identity() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        config.shard_id = 1;
        config.shard_count = 3;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();

        // A batch routed under the wrong fleet view is redirected, not
        // served.
        let response = client
            .request(&Request::AnalyzeFleet {
                files: files(1),
                cache_cap: None,
                shard_id: 0,
                shard_count: 3,
                invariants: false,
            })
            .unwrap();
        let Response::Redirect {
            shard_id,
            shard_count,
            ..
        } = response
        else {
            panic!("expected redirect, got {response:?}");
        };
        assert_eq!((shard_id, shard_count), (1, 3));

        // The right identity gets per-file blocks plus hashes and no
        // stats line — the router renders that itself.
        let response = client
            .request(&Request::AnalyzeFleet {
                files: files(2),
                cache_cap: None,
                shard_id: 1,
                shard_count: 3,
                invariants: false,
            })
            .unwrap();
        let Response::AnalyzeFleet {
            files: blocks,
            functions,
            analyzed,
            cached,
        } = response
        else {
            panic!("expected fleet analyze, got {response:?}");
        };
        assert_eq!((functions, analyzed, cached), (2, 1, 1));
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].output.starts_with("══ mem/0.biv ══\n"));
        assert!(blocks[1].output.starts_with("══ mem/1.biv ══\n"));
        assert!(
            !blocks[0].output.contains("batch:"),
            "no stats line in shard output"
        );
        assert_eq!(blocks[0].hashes.len(), 1);
        assert_eq!(blocks[0].hashes, blocks[1].hashes, "same structure");
        assert!(blocks.iter().all(|b| b.error.is_none()));

        // A fleet batch with a broken file fails that file, not the
        // batch.
        let response = client
            .request(&Request::AnalyzeFleet {
                files: vec![
                    AnalyzeFile {
                        path: "ok.biv".into(),
                        source: SRC.into(),
                    },
                    AnalyzeFile {
                        path: "bad.biv".into(),
                        source: "func oops {".into(),
                    },
                ],
                cache_cap: None,
                shard_id: 1,
                shard_count: 3,
                invariants: false,
            })
            .unwrap();
        let Response::AnalyzeFleet { files: blocks, .. } = response else {
            panic!("expected fleet analyze, got {response:?}");
        };
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].error.is_none());
        assert!(blocks[1].error.as_deref().unwrap().contains("parse error"));
        assert!(blocks[1].output.is_empty());
        assert!(blocks[1].hashes.is_empty());

        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn preload_warms_the_cache_from_a_store_snapshot() {
        let base = std::env::temp_dir().join(format!("bivd-preload-{}", std::process::id()));
        let donor_dir = base.join("donor");
        let _ = std::fs::remove_dir_all(&base);

        // Donor server: populate its store, drain (which flushes it).
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        config.cache_dir = Some(donor_dir.clone());
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        client
            .request(&Request::Analyze {
                files: files(2),
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();

        // Successor server (memory-only): preload the donor's snapshot,
        // then serve the same structure without re-analyzing.
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let response = client
            .request(&Request::Preload {
                dir: donor_dir.display().to_string(),
            })
            .unwrap();
        let Response::PreloadAck { loaded } = response else {
            panic!("expected preload ack, got {response:?}");
        };
        assert_eq!(loaded, 1, "one distinct structure handed off");
        let response = client
            .request(&Request::Analyze {
                files: files(2),
                cache_cap: None,
                invariants: false,
            })
            .unwrap();
        let Response::Analyze {
            analyzed, cached, ..
        } = response
        else {
            panic!("expected analyze response");
        };
        assert_eq!(analyzed, 0, "served entirely from the handoff");
        assert_eq!(cached, 2);

        // Preloading a directory that is not a store answers an error,
        // not a crash.
        let response = client
            .request(&Request::Preload {
                dir: base.join("missing").display().to_string(),
            })
            .unwrap();
        let Response::Error { kind, .. } = response else {
            panic!("expected preload error, got {response:?}");
        };
        assert_eq!(kind, "preload");

        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn threaded_and_event_front_ends_answer_identical_bytes() {
        let run = |mode: NetMode| {
            let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
            config.workers = 2;
            config.net_mode = mode;
            let (endpoint, handle) = spawn_server(config);
            let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
            let response = client
                .request(&Request::Analyze {
                    files: files(3),
                    cache_cap: Some(2),
                    invariants: false,
                })
                .unwrap();
            client.request(&Request::Shutdown).unwrap();
            handle.join().unwrap();
            response
        };
        let threaded = run(NetMode::Threaded);
        let event = run(NetMode::Event);
        assert_eq!(threaded, event, "front-ends must answer the same bytes");
    }

    #[test]
    fn pipelined_frames_are_answered_in_order() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let endpoint = Endpoint::parse(&endpoint);
        let mut conn = Conn::connect(&endpoint).unwrap();
        // Write all three requests before reading anything: the event
        // loop must defer decoding while a job is in flight and still
        // answer strictly in request order.
        write_frame(&mut conn, &Request::Ping.encode()).unwrap();
        write_frame(
            &mut conn,
            &Request::Analyze {
                files: files(1),
                cache_cap: None,
                invariants: false,
            }
            .encode(),
        )
        .unwrap();
        write_frame(&mut conn, &Request::Stats.encode()).unwrap();
        let mut read = || {
            let payload = crate::frame::read_frame(&mut conn, MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            Response::decode(&payload).unwrap()
        };
        assert_eq!(read(), Response::Pong);
        assert!(matches!(read(), Response::Analyze { .. }));
        assert!(matches!(read(), Response::Stats(_)));
        drop(conn);
        let mut client = Client::connect(&endpoint).unwrap();
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn stats_payload_is_json_parsable_end_to_end() {
        let mut config = ServerConfig::new(Endpoint::Tcp(String::new()));
        config.workers = 1;
        let (endpoint, handle) = spawn_server(config);
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).unwrap();
        let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(Json::parse(&stats.to_text()).unwrap(), stats);
        assert_eq!(
            stats
                .get("queue")
                .unwrap()
                .get("capacity")
                .unwrap()
                .as_i64(),
            Some(64)
        );
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }
}
