//! Live server metrics: request counters and per-phase latency windows.
//!
//! Counters are lock-free atomics bumped on the hot path; latency
//! samples go through a mutex-guarded [`LatencyWindow`] per phase
//! (four uncontended lock acquisitions per request — noise next to an
//! analysis). The `stats` request renders everything as one JSON
//! object via [`Metrics::snapshot_json`], reusing the bench harness's
//! percentile machinery so the daemon and the benchmarks agree on what
//! "p99" means.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use biv_bench::latency::{LatencySnapshot, LatencyWindow};
use biv_core::StoreGauges;

use crate::json::Json;

/// How many recent samples each phase window retains.
const WINDOW: usize = 1024;

/// The request phases measured per analyze request.
#[derive(Debug)]
struct Phases {
    /// Submit-to-dequeue wait in the bounded queue.
    queue_wait: LatencyWindow,
    /// Front-end parsing of the request's files.
    parse: LatencyWindow,
    /// Classification (plan + analyze + cache commit).
    analyze: LatencyWindow,
    /// Rendering the response text.
    render: LatencyWindow,
    /// Submit-to-response wall clock.
    total: LatencyWindow,
}

/// One analyze request's phase durations, recorded atomically at
/// completion so a `stats` probe never sees a half-recorded request.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSample {
    /// Time spent queued.
    pub queue_wait: Duration,
    /// Time parsing.
    pub parse: Duration,
    /// Time classifying.
    pub analyze: Duration,
    /// Time rendering.
    pub render: Duration,
    /// End-to-end time.
    pub total: Duration,
}

/// Shared server metrics. One instance per server, shared by reference.
#[derive(Debug)]
pub struct Metrics {
    /// Total request frames decoded successfully.
    pub requests: AtomicU64,
    /// Analyze requests accepted into the bounded queue. Once counted
    /// here, a request is always analyzed and answered — drain included.
    pub analyze_accepted: AtomicU64,
    /// Analyze requests completed (responded, success or per-file errors).
    pub analyze_ok: AtomicU64,
    /// Requests rejected with `busy` backpressure.
    pub rejected_busy: AtomicU64,
    /// Requests that hit the wall-clock timeout before a worker answered.
    pub timeouts: AtomicU64,
    /// Worker results discarded because their request had already timed
    /// out or its connection vanished (the recovery path).
    pub late_results: AtomicU64,
    /// Malformed frames answered with `bad-request`.
    pub bad_requests: AtomicU64,
    /// Functions submitted across all analyze requests.
    pub functions: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Jobs whose analysis panicked inside a worker; each is answered
    /// with an `internal` error response, never dropped.
    pub worker_panics: AtomicU64,
    /// Worker threads that died and were replaced by the accept loop.
    pub workers_respawned: AtomicU64,
    /// Summaries committed from replica write-through pushes (the
    /// receiving side of R-way replication).
    pub replica_received: AtomicU64,
    phases: Mutex<Phases>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Metrics {
        Metrics {
            requests: AtomicU64::new(0),
            analyze_accepted: AtomicU64::new(0),
            analyze_ok: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            late_results: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            functions: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            replica_received: AtomicU64::new(0),
            phases: Mutex::new(Phases {
                queue_wait: LatencyWindow::new(WINDOW),
                parse: LatencyWindow::new(WINDOW),
                analyze: LatencyWindow::new(WINDOW),
                render: LatencyWindow::new(WINDOW),
                total: LatencyWindow::new(WINDOW),
            }),
        }
    }

    /// Records one completed analyze request's phase times.
    pub fn record_phases(&self, sample: PhaseSample) {
        let mut phases = self.phases.lock().expect("metrics poisoned");
        phases.queue_wait.record(sample.queue_wait);
        phases.parse.record(sample.parse);
        phases.analyze.record(sample.analyze);
        phases.render.record(sample.render);
        phases.total.record(sample.total);
    }

    /// The current p50 of end-to-end latency — the backpressure
    /// `retry_after_ms` estimator's input.
    pub fn total_p50(&self) -> Duration {
        self.phases
            .lock()
            .expect("metrics poisoned")
            .total
            .snapshot()
            .p50
    }

    /// Renders every counter and per-phase histogram summary, plus the
    /// caller-supplied queue and cache gauges, as the `stats` payload.
    /// The `store` object appears only when the server fronts a durable
    /// store (`--cache-dir`); memory-only deployments omit the key
    /// entirely rather than reporting zeros that look like data.
    ///
    /// The shard fields are always present so fleet aggregation never
    /// branches on their absence: a single-process deployment reports
    /// `shard_id: 0, shard_count: 1`. `uptime_ms` is monotonic
    /// (measured from an [`std::time::Instant`], not the wall clock),
    /// so an aggregator polling the fleet can detect a restarted shard
    /// as an uptime regression even when every counter happens to look
    /// plausible.
    pub fn snapshot_json(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        cache: CacheGauges,
        store: Option<StoreGauges>,
        workers: usize,
        shard: ShardInfo,
    ) -> Json {
        let phases = self.phases.lock().expect("metrics poisoned");
        let load = |c: &AtomicU64| Json::Int(c.load(Ordering::Relaxed) as i64);
        let mut fields = vec![
            ("shard_id", Json::Int(i64::from(shard.shard_id))),
            ("shard_count", Json::Int(i64::from(shard.shard_count))),
            (
                "uptime_ms",
                Json::Int(shard.uptime.as_millis().min(i64::MAX as u128) as i64),
            ),
            (
                "requests",
                Json::obj(vec![
                    ("total", load(&self.requests)),
                    ("analyze_accepted", load(&self.analyze_accepted)),
                    ("analyze_ok", load(&self.analyze_ok)),
                    ("rejected_busy", load(&self.rejected_busy)),
                    ("timeouts", load(&self.timeouts)),
                    ("late_results", load(&self.late_results)),
                    ("bad_requests", load(&self.bad_requests)),
                    ("functions", load(&self.functions)),
                    ("connections", load(&self.connections)),
                    ("worker_panics", load(&self.worker_panics)),
                    ("workers_respawned", load(&self.workers_respawned)),
                    ("replica_received", load(&self.replica_received)),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::Int(queue_depth as i64)),
                    ("capacity", Json::Int(queue_capacity as i64)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Int(cache.hits as i64)),
                    ("misses", Json::Int(cache.misses as i64)),
                    ("evictions", Json::Int(cache.evictions as i64)),
                    ("entries", Json::Int(cache.entries as i64)),
                    ("capacity", Json::Int(cache.capacity as i64)),
                ]),
            ),
            ("workers", Json::Int(workers as i64)),
            (
                "latency",
                Json::obj(vec![
                    ("queue_wait", latency_json(phases.queue_wait.snapshot())),
                    ("parse", latency_json(phases.parse.snapshot())),
                    ("analyze", latency_json(phases.analyze.snapshot())),
                    ("render", latency_json(phases.render.snapshot())),
                    ("total", latency_json(phases.total.snapshot())),
                ]),
            ),
        ];
        if let Some(s) = store {
            fields.insert(6, ("store", store_json(&s)));
        }
        Json::obj(fields)
    }
}

/// A server's fleet identity and age, rendered into every stats
/// snapshot. Single-process servers use [`ShardInfo::single`].
#[derive(Debug, Clone, Copy)]
pub struct ShardInfo {
    /// This server's shard id, `0 ≤ shard_id < shard_count`.
    pub shard_id: u32,
    /// The fleet size this server was started for.
    pub shard_count: u32,
    /// Monotonic time since the server started serving.
    pub uptime: Duration,
}

impl ShardInfo {
    /// The identity of a server outside any fleet: shard 0 of 1.
    pub fn single(uptime: Duration) -> ShardInfo {
        ShardInfo {
            shard_id: 0,
            shard_count: 1,
            uptime,
        }
    }
}

/// Renders durable-store gauges as the `store` stats object; shared by
/// the daemon's `stats` endpoint and `bivc --stats-json` so dashboards
/// see one schema.
pub fn store_json(s: &StoreGauges) -> Json {
    Json::obj(vec![
        ("disk_hits", Json::Int(s.disk_hits as i64)),
        ("disk_misses", Json::Int(s.disk_misses as i64)),
        ("records_live", Json::Int(s.records_live as i64)),
        ("records_garbage", Json::Int(s.records_garbage as i64)),
        ("compactions", Json::Int(s.compactions as i64)),
        (
            "corrupt_records_skipped",
            Json::Int(s.corrupt_records_skipped as i64),
        ),
    ])
}

/// Point-in-time structural-cache counters for the stats payload.
#[derive(Debug, Clone, Copy)]
pub struct CacheGauges {
    /// Cumulative cache hits.
    pub hits: u64,
    /// Cumulative cache misses.
    pub misses: u64,
    /// Cumulative evictions.
    pub evictions: u64,
    /// Entries currently retained.
    pub entries: usize,
    /// Configured retention bound.
    pub capacity: usize,
}

fn latency_json(s: LatencySnapshot) -> Json {
    let us = |d: Duration| Json::Int(d.as_micros() as i64);
    Json::obj(vec![
        ("count", Json::Int(s.count as i64)),
        ("mean_us", us(s.mean)),
        ("p50_us", us(s.p50)),
        ("p90_us", us(s.p90)),
        ("p99_us", us(s.p99)),
        ("max_us", us(s.max)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_counters_and_phases() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.functions.fetch_add(12, Ordering::Relaxed);
        for ms in [2u64, 4, 6] {
            m.record_phases(PhaseSample {
                queue_wait: Duration::from_millis(1),
                parse: Duration::from_millis(ms),
                analyze: Duration::from_millis(10 * ms),
                render: Duration::from_micros(100),
                total: Duration::from_millis(11 * ms + 1),
            });
        }
        let json = m.snapshot_json(
            2,
            64,
            CacheGauges {
                hits: 7,
                misses: 5,
                evictions: 1,
                entries: 5,
                capacity: 4096,
            },
            None,
            4,
            ShardInfo::single(Duration::from_millis(1234)),
        );
        // The fleet-identity fields are always present, defaulting to
        // the single-process identity 0/1.
        assert_eq!(json.get("shard_id").unwrap().as_i64(), Some(0));
        assert_eq!(json.get("shard_count").unwrap().as_i64(), Some(1));
        assert_eq!(json.get("uptime_ms").unwrap().as_i64(), Some(1234));
        let req = json.get("requests").unwrap();
        assert_eq!(req.get("total").unwrap().as_i64(), Some(3));
        assert_eq!(req.get("functions").unwrap().as_i64(), Some(12));
        assert_eq!(
            json.get("queue").unwrap().get("depth").unwrap().as_i64(),
            Some(2)
        );
        assert_eq!(
            json.get("cache").unwrap().get("hits").unwrap().as_i64(),
            Some(7)
        );
        let analyze = json.get("latency").unwrap().get("analyze").unwrap();
        assert_eq!(analyze.get("count").unwrap().as_i64(), Some(3));
        assert_eq!(analyze.get("p50_us").unwrap().as_i64(), Some(40_000));
        assert_eq!(analyze.get("max_us").unwrap().as_i64(), Some(60_000));
        // The snapshot is valid JSON end to end.
        assert_eq!(Json::parse(&json.to_text()).unwrap(), json);
        // Memory-only deployments omit the store object entirely.
        assert!(json.get("store").is_none());
    }

    #[test]
    fn store_gauges_render_when_a_durable_tier_exists() {
        let m = Metrics::new();
        let gauges = StoreGauges {
            disk_hits: 11,
            disk_misses: 3,
            records_live: 8,
            records_garbage: 2,
            compactions: 1,
            corrupt_records_skipped: 1,
        };
        let json = m.snapshot_json(
            0,
            64,
            CacheGauges {
                hits: 0,
                misses: 0,
                evictions: 0,
                entries: 0,
                capacity: 4096,
            },
            Some(gauges),
            2,
            ShardInfo {
                shard_id: 2,
                shard_count: 3,
                uptime: Duration::from_secs(7),
            },
        );
        assert_eq!(json.get("shard_id").unwrap().as_i64(), Some(2));
        assert_eq!(json.get("shard_count").unwrap().as_i64(), Some(3));
        assert_eq!(json.get("uptime_ms").unwrap().as_i64(), Some(7000));
        let store = json.get("store").expect("store object present");
        assert_eq!(store.get("disk_hits").unwrap().as_i64(), Some(11));
        assert_eq!(store.get("disk_misses").unwrap().as_i64(), Some(3));
        assert_eq!(store.get("records_live").unwrap().as_i64(), Some(8));
        assert_eq!(store.get("records_garbage").unwrap().as_i64(), Some(2));
        assert_eq!(store.get("compactions").unwrap().as_i64(), Some(1));
        assert_eq!(
            store.get("corrupt_records_skipped").unwrap().as_i64(),
            Some(1)
        );
        assert_eq!(Json::parse(&json.to_text()).unwrap(), json);
    }

    #[test]
    fn total_p50_feeds_backpressure() {
        let m = Metrics::new();
        assert_eq!(m.total_p50(), Duration::ZERO);
        for ms in 1..=9 {
            m.record_phases(PhaseSample {
                queue_wait: Duration::ZERO,
                parse: Duration::ZERO,
                analyze: Duration::ZERO,
                render: Duration::ZERO,
                total: Duration::from_millis(ms),
            });
        }
        assert_eq!(m.total_p50().as_millis(), 5);
    }
}
