//! `biv-server` — the resident induction-variable analysis service.
//!
//! `bivc` analyzes a batch and exits; this crate keeps the analysis
//! warm. A `bivd` daemon owns a worker pool and a shared
//! [`biv_core::StructuralCache`], so structurally repeated functions —
//! the common case across rebuilds of the same codebase — are
//! classified once and served from cache on every later request, across
//! clients and across time.
//!
//! The pieces, bottom-up:
//!
//! - [`json`] — a dependency-free JSON value, parser, and writer (the
//!   workspace builds offline; there is no serde here);
//! - [`frame`] — length-prefixed framing over any byte stream;
//! - [`proto`] — the typed request/response protocol;
//! - [`net`] — Unix-socket and TCP transports behind one interface;
//! - [`pool`] — the bounded job queue whose full state is the
//!   backpressure signal;
//! - [`metrics`] — lock-free counters plus per-phase latency windows;
//! - [`signal`] — SIGINT/SIGTERM to a drain flag, no `libc` crate;
//! - [`server`] — job routing, the worker pool, timeouts, graceful
//!   drain, and the threaded fallback front-end;
//! - `event` (Linux) — the readiness-driven epoll front-end that owns
//!   every connection's I/O on one thread;
//! - [`client`] — the blocking client `bivc --remote` is built on.
//!
//! The contract that makes remote serving safe to adopt: an `analyze`
//! response is **byte-identical** to what a local `bivc` run would
//! print for the same files, no matter how warm the server's cache is
//! (see [`server`]'s module docs for how the stats line is replayed
//! cold).

#![deny(unsafe_code)] // `signal::imp` opts back in, narrowly.
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
#[cfg(target_os = "linux")]
mod event;
mod faults;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod net;
pub mod pool;
pub mod proto;
pub mod server;
pub mod signal;

pub use client::Client;
pub use cluster::{ClusterHandle, ClusterHook};
pub use json::Json;
pub use net::{Conn, Endpoint, Listener};
pub use proto::{AnalyzeFile, FileError, FleetFile, ReplicaEntry, Request, Response};
pub use server::{NetMode, ServeSummary, Server, ServerConfig};
