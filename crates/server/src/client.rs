//! A blocking `bivd` client: one connection, framed request/response
//! pairs, and a bounded busy-retry loop for analyze submissions.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
use crate::net::{Conn, Endpoint};
use crate::proto::{AnalyzeFile, Request, Response};

/// How many `busy` rejections an analyze submission tolerates before
/// giving up. With the server's `retry_after_ms` hints this spans
/// multiple seconds of sustained overload. This is a hard cap: jitter
/// stretches individual sleeps but never adds attempts.
const MAX_BUSY_RETRIES: u32 = 10;

/// Cap on the *cumulative* time one request may spend asleep between
/// busy retries. The per-attempt cap bounds each sleep, but a server
/// hinting large `retry_after_ms` values could still stretch ten
/// retries toward two minutes; past this budget the request gives up
/// and surfaces the final `busy` to the caller instead.
const MAX_BUSY_WAIT: Duration = Duration::from_secs(30);

/// Process-wide count of requests that gave up on busy backoff — either
/// the retry count or the cumulative sleep budget ran out.
static BACKOFF_EXHAUSTED: AtomicU64 = AtomicU64::new(0);

/// How many requests (in this process) exhausted their busy backoff
/// budget. The fleet router surfaces the delta per batch.
pub fn backoff_exhausted() -> u64 {
    BACKOFF_EXHAUSTED.load(Ordering::Relaxed)
}

/// Records one request giving up on busy backoff. Public so the fleet
/// router's own retry loop counts against the same ledger.
pub fn note_backoff_exhausted() {
    BACKOFF_EXHAUSTED.fetch_add(1, Ordering::Relaxed);
}

/// How large the attempt-scaled backoff base may grow, so ten retries
/// against a large hint never add up to minutes of sleeping.
const MAX_BACKOFF_MS: u64 = 10_000;

/// Sleep for a busy retry: the server's hint — floored at 1 ms and
/// scaled by the attempt number — plus up to 50% random jitter, so a
/// herd of clients rejected by the same queue-full burst doesn't
/// re-arrive in lockstep and recreate the burst.
///
/// The floor matters: a server that has served nothing yet can hint
/// `retry_after_ms: 0`, and without it every retry would sleep zero —
/// MAX_BUSY_RETRIES spent hot-looping against a queue that needs time
/// to drain. Growth with the attempt number makes persistent overload
/// progressively cheaper for the server instead of a fixed-rate hammer.
///
/// The jitter source is a tiny SplitMix64 step seeded from the process
/// id and attempt number — decorrelated across clients, yet
/// reproducible within one (no global RNG state, no new dependency).
///
/// Public because the fleet router applies the same policy to its
/// per-shard submissions.
pub fn busy_backoff(hint_ms: u64, attempt: u32) -> Duration {
    let base = hint_ms
        .max(1)
        .saturating_mul(u64::from(attempt.max(1)))
        .min(MAX_BACKOFF_MS);
    let mut x = (u64::from(std::process::id()) << 32) ^ u64::from(attempt);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let jitter = x % (base / 2 + 1);
    Duration::from_millis(base + jitter)
}

/// A connected client.
pub struct Client {
    conn: Conn,
    max_frame_bytes: usize,
}

impl Client {
    /// Dials the endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            conn: Conn::connect(endpoint)?,
            max_frame_bytes: MAX_FRAME_BYTES,
        })
    }

    /// Dials the endpoint with a deadline on both the connect and every
    /// subsequent read, so one unreachable or wedged server degrades
    /// that call instead of hanging the caller. This is what `bivctl
    /// stats` and the gossip loop use.
    pub fn connect_timeout(endpoint: &Endpoint, timeout: Duration) -> io::Result<Client> {
        let conn = Conn::connect_timeout(endpoint, timeout)?;
        conn.set_read_timeout(Some(timeout))?;
        Ok(Client {
            conn,
            max_frame_bytes: MAX_FRAME_BYTES,
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.conn, &request.encode())?;
        let payload = read_frame(&mut self.conn, self.max_frame_bytes)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits files for analysis, honoring `busy` backpressure by
    /// sleeping for the server's hint and retrying, a bounded number of
    /// times.
    pub fn analyze(
        &mut self,
        files: Vec<AnalyzeFile>,
        cache_cap: Option<usize>,
    ) -> io::Result<Response> {
        self.analyze_with(files, cache_cap, false)
    }

    /// [`Client::analyze`] with invariant rendering requested (the
    /// `invariants` wire op).
    pub fn analyze_with(
        &mut self,
        files: Vec<AnalyzeFile>,
        cache_cap: Option<usize>,
        invariants: bool,
    ) -> io::Result<Response> {
        let request = Request::Analyze {
            files,
            cache_cap,
            invariants,
        };
        let mut retries = 0;
        let mut slept = Duration::ZERO;
        loop {
            match self.request(&request)? {
                Response::Busy { retry_after_ms } => {
                    let pause = busy_backoff(retry_after_ms, retries + 1);
                    if retries >= MAX_BUSY_RETRIES || slept + pause > MAX_BUSY_WAIT {
                        note_backoff_exhausted();
                        return Ok(Response::Busy { retry_after_ms });
                    }
                    retries += 1;
                    slept += pause;
                    std::thread::sleep(pause);
                }
                response => return Ok(response),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_backoff_stays_within_scaled_hint_plus_half() {
        for hint in [0u64, 1, 25, 1000] {
            for attempt in 1..=MAX_BUSY_RETRIES {
                let base = hint
                    .max(1)
                    .saturating_mul(u64::from(attempt))
                    .min(MAX_BACKOFF_MS);
                let d = busy_backoff(hint, attempt);
                assert!(
                    d >= Duration::from_millis(base),
                    "hint={hint} attempt={attempt}"
                );
                assert!(
                    d <= Duration::from_millis(base + base / 2),
                    "hint={hint} attempt={attempt} slept {d:?}"
                );
            }
        }
    }

    #[test]
    fn busy_backoff_hint_zero_never_hot_loops() {
        // A zero hint used to yield `x % 1 == 0` jitter and a
        // zero-length sleep — MAX_BUSY_RETRIES spent spinning. Pin the
        // floor and the growth.
        let mut prev = Duration::ZERO;
        for attempt in 1..=MAX_BUSY_RETRIES {
            let d = busy_backoff(0, attempt);
            assert!(
                d >= Duration::from_millis(1),
                "attempt {attempt} slept {d:?}"
            );
            assert!(
                d >= Duration::from_millis(u64::from(attempt)),
                "base grows with the attempt number: attempt {attempt} slept {d:?}"
            );
            assert!(d >= prev.min(Duration::from_millis(u64::from(attempt))));
            prev = d;
        }
        // The growth is capped: a huge hint late in the retry budget
        // stays within MAX_BACKOFF_MS plus jitter.
        let d = busy_backoff(5_000, MAX_BUSY_RETRIES);
        assert!(d <= Duration::from_millis(MAX_BACKOFF_MS + MAX_BACKOFF_MS / 2));
    }

    #[test]
    fn cumulative_budget_binds_before_the_retry_count_on_large_hints() {
        // With a server hinting the per-attempt maximum every time, the
        // cumulative sleep budget must cut the loop off before all ten
        // retries run — otherwise one request could sleep for minutes.
        let mut slept = Duration::ZERO;
        let mut attempts = 0;
        for attempt in 1..=MAX_BUSY_RETRIES {
            let pause = busy_backoff(MAX_BACKOFF_MS, attempt);
            if slept + pause > MAX_BUSY_WAIT {
                break;
            }
            slept += pause;
            attempts = attempt;
        }
        assert!(
            attempts < MAX_BUSY_RETRIES,
            "budget never bound: slept {slept:?} over {attempts} attempts"
        );
        assert!(slept <= MAX_BUSY_WAIT);
    }

    #[test]
    fn backoff_exhausted_counter_is_monotonic() {
        let before = backoff_exhausted();
        note_backoff_exhausted();
        assert!(backoff_exhausted() > before);
    }
}
