//! A blocking `bivd` client: one connection, framed request/response
//! pairs, and a bounded busy-retry loop for analyze submissions.

use std::io;
use std::time::Duration;

use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
use crate::net::{Conn, Endpoint};
use crate::proto::{AnalyzeFile, Request, Response};

/// How many `busy` rejections an analyze submission tolerates before
/// giving up. With the server's `retry_after_ms` hints this spans
/// multiple seconds of sustained overload. This is a hard cap: jitter
/// stretches individual sleeps but never adds attempts.
const MAX_BUSY_RETRIES: u32 = 10;

/// Sleep for a busy retry: the server's hint plus up to 50% random
/// jitter, so a herd of clients rejected by the same queue-full burst
/// doesn't re-arrive in lockstep and recreate the burst.
///
/// The jitter source is a tiny SplitMix64 step seeded from the process
/// id and attempt number — decorrelated across clients, yet
/// reproducible within one (no global RNG state, no new dependency).
fn busy_backoff(hint_ms: u64, attempt: u32) -> Duration {
    let mut x = (u64::from(std::process::id()) << 32) ^ u64::from(attempt);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let jitter = x % (hint_ms / 2 + 1);
    Duration::from_millis(hint_ms + jitter)
}

/// A connected client.
pub struct Client {
    conn: Conn,
    max_frame_bytes: usize,
}

impl Client {
    /// Dials the endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            conn: Conn::connect(endpoint)?,
            max_frame_bytes: MAX_FRAME_BYTES,
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.conn, &request.encode())?;
        let payload = read_frame(&mut self.conn, self.max_frame_bytes)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits files for analysis, honoring `busy` backpressure by
    /// sleeping for the server's hint and retrying, a bounded number of
    /// times.
    pub fn analyze(
        &mut self,
        files: Vec<AnalyzeFile>,
        cache_cap: Option<usize>,
    ) -> io::Result<Response> {
        let request = Request::Analyze { files, cache_cap };
        let mut retries = 0;
        loop {
            match self.request(&request)? {
                Response::Busy { retry_after_ms } if retries < MAX_BUSY_RETRIES => {
                    retries += 1;
                    std::thread::sleep(busy_backoff(retry_after_ms, retries));
                }
                response => return Ok(response),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_backoff_stays_within_hint_plus_half() {
        for hint in [0u64, 1, 25, 1000] {
            for attempt in 1..=MAX_BUSY_RETRIES {
                let d = busy_backoff(hint, attempt);
                assert!(d >= Duration::from_millis(hint));
                assert!(d <= Duration::from_millis(hint + hint / 2));
            }
        }
    }
}
