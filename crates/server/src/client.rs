//! A blocking `bivd` client: one connection, framed request/response
//! pairs, and a bounded busy-retry loop for analyze submissions.

use std::io;
use std::time::Duration;

use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
use crate::net::{Conn, Endpoint};
use crate::proto::{AnalyzeFile, Request, Response};

/// How many `busy` rejections an analyze submission tolerates before
/// giving up. With the server's `retry_after_ms` hints this spans
/// multiple seconds of sustained overload.
const MAX_BUSY_RETRIES: u32 = 10;

/// A connected client.
pub struct Client {
    conn: Conn,
    max_frame_bytes: usize,
}

impl Client {
    /// Dials the endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            conn: Conn::connect(endpoint)?,
            max_frame_bytes: MAX_FRAME_BYTES,
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.conn, &request.encode())?;
        let payload = read_frame(&mut self.conn, self.max_frame_bytes)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits files for analysis, honoring `busy` backpressure by
    /// sleeping for the server's hint and retrying, a bounded number of
    /// times.
    pub fn analyze(
        &mut self,
        files: Vec<AnalyzeFile>,
        cache_cap: Option<usize>,
    ) -> io::Result<Response> {
        let request = Request::Analyze { files, cache_cap };
        let mut retries = 0;
        loop {
            match self.request(&request)? {
                Response::Busy { retry_after_ms } if retries < MAX_BUSY_RETRIES => {
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
                response => return Ok(response),
            }
        }
    }
}
