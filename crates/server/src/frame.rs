//! Length-prefixed framing: a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON.
//!
//! The prefix makes request boundaries explicit (no sniffing for
//! balanced braces on the stream) and lets the server reject oversized
//! frames before allocating. A read that ends cleanly *between* frames
//! is a normal close ([`read_frame`] returns `Ok(None)`); one that ends
//! inside a frame is an error.

use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (64 MiB) — far above any
/// real analysis request, low enough to fail fast on garbage prefixes.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one frame: length prefix plus payload, then flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean end-of-stream before any
/// prefix byte, an `UnexpectedEof` error on truncation mid-frame, an
/// `InvalidData` error when the prefix exceeds `max_bytes`.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix)? {
        FirstRead::Eof => return Ok(None),
        FirstRead::Full => {}
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_bytes}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

enum FirstRead {
    /// Zero bytes then EOF: the peer closed between frames.
    Eof,
    /// The buffer was filled.
    Full,
}

/// Like `read_exact`, but distinguishes "EOF before the first byte"
/// (clean close) from "EOF mid-buffer" (truncation).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<FirstRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(FirstRead::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FirstRead::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "ütf✓".as_bytes()).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(),
            "ütf✓".as_bytes()
        );
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn clean_eof_vs_truncation() {
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
        // Truncated prefix.
        let mut r: &[u8] = &[0, 0];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Truncated payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, 1024).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
