//! Length-prefixed framing: a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON.
//!
//! The prefix makes request boundaries explicit (no sniffing for
//! balanced braces on the stream) and lets the server reject oversized
//! frames before allocating. A read that ends cleanly *between* frames
//! is a normal close ([`read_frame`] returns `Ok(None)`); one that ends
//! inside a frame is an error.
//!
//! Both directions handle partial operations and spurious `EINTR`
//! uniformly: every read and write sits in an explicit retry loop, so a
//! signal landing mid-frame, or a transport that hands back short
//! reads/writes (as the fault-injected chaos transport deliberately
//! does), never corrupts framing.

use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (64 MiB) — far above any
/// real analysis request, low enough to fail fast on garbage prefixes.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one frame: length prefix plus payload, then flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    write_full(w, &len.to_be_bytes())?;
    write_full(w, payload)?;
    w.flush()
}

/// Writes the whole buffer, retrying short writes and `EINTR`.
///
/// `Write::write_all` would also loop, but spelling the loop out keeps
/// the retry policy in one audited place next to the read side, and
/// guarantees the behavior even for writers whose `write_all` is
/// overridden.
fn write_full(w: &mut impl Write, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting mid-frame",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame; `Ok(None)` on a clean end-of-stream before any
/// prefix byte, an `UnexpectedEof` error on truncation mid-frame, an
/// `InvalidData` error when the prefix exceeds `max_bytes`.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix)? {
        FirstRead::Eof => return Ok(None),
        FirstRead::Full => {}
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_bytes}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload)?;
    Ok(Some(payload))
}

/// Fills the whole buffer, retrying short reads and `EINTR`; EOF at any
/// point here is truncation (the prefix promised `buf.len()` bytes).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

enum FirstRead {
    /// Zero bytes then EOF: the peer closed between frames.
    Eof,
    /// The buffer was filled.
    Full,
}

/// Like `read_exact`, but distinguishes "EOF before the first byte"
/// (clean close) from "EOF mid-buffer" (truncation).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<FirstRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(FirstRead::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FirstRead::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "ütf✓".as_bytes()).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(),
            "ütf✓".as_bytes()
        );
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn clean_eof_vs_truncation() {
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
        // Truncated prefix.
        let mut r: &[u8] = &[0, 0];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Truncated payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    /// A transport that hands back one byte at a time and sprinkles
    /// spurious `EINTR` between them — the worst legal stream behavior.
    struct Hostile<T> {
        inner: T,
        tick: usize,
    }

    impl<R: Read> Read for Hostile<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.tick += 1;
            if self.tick.is_multiple_of(3) {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"));
            }
            let n = buf.len().min(1);
            self.inner.read(&mut buf[..n])
        }
    }

    impl<W: Write> Write for Hostile<W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tick += 1;
            if self.tick.is_multiple_of(3) {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"));
            }
            let n = buf.len().min(1);
            self.inner.write(&buf[..n])
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    #[test]
    fn short_ops_and_eintr_are_retried_uniformly() {
        let mut w = Hostile {
            inner: Vec::new(),
            tick: 0,
        };
        write_frame(&mut w, b"resilient payload").unwrap();
        let mut r = Hostile {
            inner: &w.inner[..],
            tick: 0,
        };
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(),
            b"resilient payload"
        );
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, 1024).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
