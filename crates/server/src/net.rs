//! Transport abstraction: one listener/stream pair covering Unix
//! domain sockets (the default, filesystem-scoped) and TCP (`--tcp`,
//! for remote use). Everything above this module is
//! transport-agnostic.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::fd::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7878` (port 0 picks one).
    Tcp(String),
}

impl Endpoint {
    /// Parses an endpoint string: `tcp:ADDR` is TCP, `unix:PATH` or a
    /// bare path is a Unix socket. Accepting the `unix:` prefix keeps
    /// [`Listener::bound_endpoint`] strings round-trippable, so an
    /// advertised endpoint can be dialed verbatim.
    pub fn parse(text: &str) -> Endpoint {
        if let Some(addr) = text.strip_prefix("tcp:") {
            return Endpoint::Tcp(addr.to_string());
        }
        let path = text.strip_prefix("unix:").unwrap_or(text);
        Endpoint::Unix(PathBuf::from(path))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound listener for either transport.
#[derive(Debug)]
pub enum Listener {
    /// Unix domain socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

/// One accepted or dialed connection.
#[derive(Debug)]
pub enum Conn {
    /// Unix domain socket stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Listener {
    /// Binds the endpoint. A stale Unix socket file (left by a killed
    /// server) is detected by a failed probe connect and replaced; a
    /// *live* socket stays and the bind fails with `AddrInUse`.
    ///
    /// The probe discriminates by error kind: `ConnectionRefused` means
    /// a socket file with no listener behind it (the classic stale
    /// leftover), and `NotFound` means the file vanished between our
    /// bind attempt and the probe (someone else cleaned it up) — both
    /// are stale. Any *other* probe failure (permissions, resource
    /// limits) proves nothing about liveness, so we conservatively
    /// treat the socket as live rather than deleting a file we don't
    /// understand. The `remove_file` tolerates a concurrent-cleanup
    /// `NotFound` race for the same reason.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => match UnixListener::bind(path) {
                Ok(l) => Ok(Listener::Unix(l)),
                Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                    let stale = match UnixStream::connect(path) {
                        Ok(_) => false,
                        Err(probe) => matches!(
                            probe.kind(),
                            io::ErrorKind::ConnectionRefused | io::ErrorKind::NotFound
                        ),
                    };
                    if !stale {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("a server is already listening on {}", path.display()),
                        ));
                    }
                    match std::fs::remove_file(path) {
                        Ok(()) => {}
                        Err(rm) if rm.kind() == io::ErrorKind::NotFound => {}
                        Err(rm) => return Err(rm),
                    }
                    UnixListener::bind(path).map(Listener::Unix)
                }
                Err(e) => Err(e),
            },
            #[cfg(not(unix))]
            Endpoint::Unix(path) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unix sockets unsupported here ({})", path.display()),
            )),
            Endpoint::Tcp(addr) => TcpListener::bind(addr).map(Listener::Tcp),
        }
    }

    /// Describes where the listener actually bound (TCP port 0 resolves
    /// to the assigned port).
    pub fn bound_endpoint(&self) -> String {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => match l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
            {
                Some(p) => format!("unix:{p}"),
                None => "unix:<unnamed>".to_string(),
            },
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:<unknown>".to_string(),
            },
        }
    }

    /// Switches the accept loop between blocking and polling mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

#[cfg(unix)]
impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }
}

#[cfg(unix)]
impl AsRawFd for Conn {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Conn::Unix(s) => s.as_raw_fd(),
            Conn::Tcp(s) => s.as_raw_fd(),
        }
    }
}

impl Conn {
    /// Dials the endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            #[cfg(not(unix))]
            Endpoint::Unix(path) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unix sockets unsupported here ({})", path.display()),
            )),
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Conn::Tcp),
        }
    }

    /// Dials the endpoint with a bound on how long the connect may
    /// take. TCP gets a true `connect_timeout` (a SYN into a partitioned
    /// host otherwise blocks for the kernel's minutes-long default);
    /// Unix sockets connect or refuse immediately on the local
    /// filesystem, so they use the plain path.
    pub fn connect_timeout(endpoint: &Endpoint, timeout: Duration) -> io::Result<Conn> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                use std::net::ToSocketAddrs;
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("endpoint resolves to no address: {addr}"),
                    )
                })?;
                TcpStream::connect_timeout(&resolved, timeout).map(Conn::Tcp)
            }
            other => Conn::connect(other),
        }
    }

    /// Sets the read timeout (`None` blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
            Conn::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Switches the stream between blocking and readiness-driven mode
    /// (the event loop owns nonblocking connections).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(nonblocking),
            Conn::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Fault-injection sites: a spurious EINTR or a short read here
        // exercises exactly the retry loops in `frame` — both must be
        // invisible to callers above the framing layer.
        if let Some(e) = crate::faults::io_error("net.read.eintr") {
            return Err(e);
        }
        let cap = crate::faults::short_len("net.read.short", buf.len()).unwrap_or(buf.len());
        let buf = &mut buf[..cap];
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(e) = crate::faults::io_error("net.write.eintr") {
            return Err(e);
        }
        let cap = crate::faults::short_len("net.write.short", buf.len()).unwrap_or(buf.len());
        let buf = &buf[..cap];
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_splits_transports() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7878"),
            Endpoint::Tcp("127.0.0.1:7878".into())
        );
        assert_eq!(
            Endpoint::parse("/tmp/bivd.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/bivd.sock"))
        );
        assert_eq!(Endpoint::parse("tcp:x").to_string(), "tcp:x");
        assert_eq!(Endpoint::parse("/a/b").to_string(), "unix:/a/b");
        // Display output round-trips, so a shard can advertise its
        // bound endpoint verbatim.
        assert_eq!(
            Endpoint::parse("unix:/a/b"),
            Endpoint::Unix(PathBuf::from("/a/b"))
        );
    }

    #[cfg(unix)]
    #[test]
    fn stale_unix_socket_is_replaced_live_one_is_not() {
        let dir = std::env::temp_dir().join(format!("biv_net_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.sock");
        // Create then leak a socket file by dropping the listener.
        drop(Listener::bind(&Endpoint::Unix(path.clone())).unwrap());
        assert!(path.exists(), "dropped listener leaves the file");
        // A fresh bind detects the stale file and succeeds.
        let live = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        // While it's live, another bind must refuse.
        let err = Listener::bind(&Endpoint::Unix(path.clone())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        drop(live);
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}
