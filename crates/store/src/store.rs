//! The durable store: an append-only record log, a fully-decoded
//! in-memory index, and an atomically-replaced snapshot.
//!
//! ## Commit protocol
//!
//! A `put` appends one self-checking record to the log with a plain
//! `write`; durability is deferred to [`Store::flush`], which fsyncs
//! the log and then replaces the snapshot via write-temp + fsync +
//! rename + directory fsync. The log is therefore the source of truth
//! and the snapshot is an open-time accelerator that is *only* trusted
//! when its recorded metadata (container format, analyzer version,
//! budget fingerprint, log length) matches the live log exactly.
//!
//! ## Crash matrix
//!
//! | failure | state on reopen |
//! |---------|-----------------|
//! | crash before `flush` | records up to the last complete append survive via the page cache if the OS stayed up; a torn final record is truncated |
//! | `kill -9` mid-append | the log ends in a partial record → truncated to the consistent prefix, `corrupt_records_skipped` counts it |
//! | crash mid-snapshot-replace | the temp file is ignored; the old snapshot either survives (stale `log_len` → full scan) or was already renamed (consistent) |
//! | bit rot / post-CRC corruption | the record's CRC fails → the log is truncated *at* that record; everything before it is served |
//! | analyzer upgraded ([`FORMAT_VERSION`] bump) or budget caps changed | header mismatch → every record is garbage, the store compacts to empty |
//!
//! Truncating at the first bad record — rather than skipping it —
//! is deliberate: an append-only log has no framing recovery, so
//! anything after a corrupt region is unattributable and must be
//! recomputed, never served.
//!
//! ## Compaction policy
//!
//! Compaction runs only on open (the serving path never pays for it):
//! when garbage records exceed [`StoreOptions::compact_garbage_percent`]
//! of the log, or unconditionally on wholesale invalidation, the live
//! records are rewritten to a temp log which atomically replaces the
//! old one.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use biv_core::{analysis_fingerprint, Budget, StoreGauges, StructuralSummary, FORMAT_VERSION};

use crate::codec::{decode_summary, encode_summary};
use crate::faults;
use crate::log::{
    decode_header, decode_snapshot, encode_header, encode_record, encode_snapshot, parse_record,
    SnapEntry, Snapshot,
};

/// File name of the record log inside the store directory.
pub const LOG_FILE: &str = "store.log";
/// File name of the index snapshot inside the store directory.
pub const SNAP_FILE: &str = "index.snap";
const SNAP_TMP_FILE: &str = "index.snap.tmp";
const LOG_TMP_FILE: &str = "store.log.tmp";

/// What a store is keyed on and when it compacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreOptions {
    /// Analyzer format version; normally [`FORMAT_VERSION`]. A store
    /// written under any other version is invalidated wholesale on
    /// open. Overridable so tests can simulate an analyzer upgrade.
    pub format_version: u32,
    /// Deterministic budget fingerprint; normally
    /// [`analysis_fingerprint`] of the serving budget. Same wholesale
    /// invalidation semantics as the version.
    pub fingerprint: String,
    /// Compact on open when garbage records exceed this percentage of
    /// all records (0 compacts whenever any garbage exists; 100 never
    /// compacts short of wholesale invalidation).
    pub compact_garbage_percent: u8,
}

impl StoreOptions {
    /// Options for serving under `budget` with the current analyzer.
    pub fn for_budget(budget: &Budget) -> StoreOptions {
        StoreOptions {
            format_version: FORMAT_VERSION,
            fingerprint: analysis_fingerprint(budget),
            compact_garbage_percent: 50,
        }
    }
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions::for_budget(&Budget::UNLIMITED)
    }
}

/// A durable content-addressed map from structural hash to
/// [`StructuralSummary`], preloaded into memory on open.
pub struct Store {
    dir: PathBuf,
    file: File,
    log_len: u64,
    options: StoreOptions,
    index: HashMap<u64, Arc<StructuralSummary>>,
    layout: HashMap<u64, SnapEntry>,
    garbage: u64,
    disk_hits: u64,
    disk_misses: u64,
    compactions: u64,
    corrupt_skipped: u64,
    wedged: bool,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("live", &self.index.len())
            .field("garbage", &self.garbage)
            .field("wedged", &self.wedged)
            .finish_non_exhaustive()
    }
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

struct ScanOutcome {
    index: HashMap<u64, Arc<StructuralSummary>>,
    layout: HashMap<u64, SnapEntry>,
    garbage: u64,
    corrupt_skipped: u64,
    /// Consistent-prefix length; the file is truncated here if shorter
    /// than what was read.
    prefix_len: u64,
}

/// Sequentially parses every record after the header, superseding
/// earlier records for the same hash, stopping (and marking the tail
/// corrupt) at the first record that fails framing, CRC, or decode.
fn scan_records(buf: &[u8], header_len: usize) -> ScanOutcome {
    let mut index = HashMap::new();
    let mut layout: HashMap<u64, SnapEntry> = HashMap::new();
    let mut garbage = 0u64;
    let mut corrupt_skipped = 0u64;
    let mut at = header_len;
    while at < buf.len() {
        let Some(rec) = parse_record(buf, at) else {
            corrupt_skipped += 1;
            break;
        };
        match decode_summary(rec.payload) {
            Ok(summary) if summary.cacheable() => {
                let entry = SnapEntry {
                    hash: rec.hash,
                    offset: at as u64,
                    len: u32::try_from(rec.len).expect("record length"),
                };
                if layout.insert(rec.hash, entry).is_some() {
                    garbage += 1;
                }
                index.insert(rec.hash, summary);
            }
            // A record that decodes to a non-cacheable summary should
            // never have been written; treat it as garbage, not as
            // corruption — the framing after it is still sound.
            Ok(_) => garbage += 1,
            Err(_) => {
                corrupt_skipped += 1;
                break;
            }
        }
        at += rec.len;
    }
    let prefix_len = if corrupt_skipped > 0 {
        at as u64
    } else {
        buf.len() as u64
    };
    ScanOutcome {
        index,
        layout,
        garbage,
        corrupt_skipped,
        prefix_len,
    }
}

impl Store {
    /// Opens (creating if absent) the store in `dir`, validating the
    /// log, truncating any corrupt tail, invalidating wholesale on
    /// version or fingerprint mismatch, and compacting when the garbage
    /// ratio warrants it. The surviving records are fully decoded into
    /// memory — a warm open *is* the preload.
    pub fn open(dir: &Path, options: &StoreOptions) -> io::Result<Store> {
        fs::create_dir_all(dir)?;
        let log_path = dir.join(LOG_FILE);
        let mut buf = Vec::new();
        match File::open(&log_path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let mut store = Store {
            dir: dir.to_path_buf(),
            // Placeholder; replaced below once the log is settled.
            file: OpenOptions::new()
                .append(true)
                .create(true)
                .open(&log_path)?,
            log_len: 0,
            options: options.clone(),
            index: HashMap::new(),
            layout: HashMap::new(),
            garbage: 0,
            disk_hits: 0,
            disk_misses: 0,
            compactions: 0,
            corrupt_skipped: 0,
            wedged: false,
        };

        let header = if buf.is_empty() {
            None
        } else {
            decode_header(&buf)
        };
        match header {
            None => {
                // Missing or corrupt header: nothing in this log is
                // attributable. Start fresh.
                store.reset_log()?;
            }
            Some(h)
                if h.app_version != options.format_version
                    || h.fingerprint != options.fingerprint =>
            {
                // Wholesale invalidation: every record in the old log
                // is stale garbage, so compact straight to empty.
                store.reset_log()?;
                store.compactions += 1;
            }
            Some(h) => {
                let outcome = match store.load_from_snapshot(&buf, &h.fingerprint, h.app_version) {
                    Some(outcome) => outcome,
                    None => scan_records(&buf, h.len),
                };
                store.corrupt_skipped = outcome.corrupt_skipped;
                if outcome.prefix_len < buf.len() as u64 {
                    // Truncate the unattributable tail before anything
                    // else can append after it.
                    store.file.set_len(outcome.prefix_len)?;
                    store.file.sync_all()?;
                }
                store.log_len = outcome.prefix_len;
                store.index = outcome.index;
                store.layout = outcome.layout;
                store.garbage = outcome.garbage;

                let total = store.index.len() as u64 + store.garbage;
                let threshold = u64::from(options.compact_garbage_percent);
                if store.garbage > 0 && total > 0 && store.garbage * 100 > total * threshold {
                    store.compact(&buf)?;
                }
            }
        }
        Ok(store)
    }

    /// Tries the snapshot fast path: decode `index.snap`, verify it
    /// describes exactly this log, and load only the live records it
    /// points at. Any disagreement returns `None` → full scan.
    fn load_from_snapshot(
        &self,
        buf: &[u8],
        fingerprint: &str,
        app_version: u32,
    ) -> Option<ScanOutcome> {
        let snap_bytes = fs::read(self.dir.join(SNAP_FILE)).ok()?;
        let snap = decode_snapshot(&snap_bytes)?;
        if snap.app_version != app_version
            || snap.fingerprint != fingerprint
            || snap.log_len != buf.len() as u64
        {
            return None;
        }
        let mut index = HashMap::with_capacity(snap.entries.len());
        let mut layout = HashMap::with_capacity(snap.entries.len());
        for e in &snap.entries {
            let offset = usize::try_from(e.offset).ok()?;
            let rec = parse_record(buf, offset)?;
            if rec.hash != e.hash || rec.len != e.len as usize {
                return None;
            }
            let summary = decode_summary(rec.payload).ok()?;
            index.insert(e.hash, summary);
            layout.insert(e.hash, *e);
        }
        Some(ScanOutcome {
            index,
            layout,
            garbage: snap.garbage,
            corrupt_skipped: 0,
            prefix_len: buf.len() as u64,
        })
    }

    /// Replaces the log with a fresh empty one (header only) and drops
    /// any snapshot.
    fn reset_log(&mut self) -> io::Result<()> {
        let header = encode_header(self.options.format_version, &self.options.fingerprint);
        self.replace_log(&header)?;
        self.index.clear();
        self.layout.clear();
        Ok(())
    }

    /// Rewrites the log to hold only live records, atomically.
    fn compact(&mut self, old_buf: &[u8]) -> io::Result<()> {
        let mut fresh = encode_header(self.options.format_version, &self.options.fingerprint);
        let mut entries: Vec<SnapEntry> = self.layout.values().copied().collect();
        // Deterministic output: preserve original log order.
        entries.sort_by_key(|e| e.offset);
        let mut layout = HashMap::with_capacity(entries.len());
        for e in &entries {
            let offset = usize::try_from(e.offset).expect("offset fits usize");
            let new_offset = fresh.len() as u64;
            fresh.extend_from_slice(&old_buf[offset..offset + e.len as usize]);
            layout.insert(
                e.hash,
                SnapEntry {
                    hash: e.hash,
                    offset: new_offset,
                    len: e.len,
                },
            );
        }
        self.replace_log(&fresh)?;
        self.layout = layout;
        self.garbage = 0;
        self.compactions += 1;
        Ok(())
    }

    /// Writes `contents` to a temp log, fsyncs, renames over the live
    /// log, fsyncs the directory, reopens the append handle, and
    /// removes any snapshot (now stale by construction).
    fn replace_log(&mut self, contents: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(LOG_TMP_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(contents)?;
            f.sync_all()?;
        }
        let log_path = self.dir.join(LOG_FILE);
        fs::rename(&tmp, &log_path)?;
        fsync_dir(&self.dir)?;
        match fs::remove_file(self.dir.join(SNAP_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        self.file = OpenOptions::new().append(true).open(&log_path)?;
        self.log_len = contents.len() as u64;
        Ok(())
    }

    /// Iterates every live record as `(structural_hash, summary)`
    /// pairs, in unspecified order, without touching the hit/miss
    /// counters. This is the warm-handoff export: a fleet successor
    /// opens a drained shard's snapshot and feeds these entries into
    /// its own cache tiers. (Opening already applied the
    /// version/fingerprint gate — a snapshot written under a different
    /// analyzer or budget yields no entries rather than wrong ones.)
    pub fn entries(&self) -> impl Iterator<Item = (u64, &Arc<StructuralSummary>)> {
        self.index.iter().map(|(h, s)| (*h, s))
    }

    /// Looks `hash` up, counting a disk hit or miss.
    pub fn get(&mut self, hash: u64) -> Option<Arc<StructuralSummary>> {
        let found = self.index.get(&hash).map(Arc::clone);
        if found.is_some() {
            self.disk_hits += 1;
        } else {
            self.disk_misses += 1;
        }
        found
    }

    /// Appends `summary` under `hash`. Returns `Ok(false)` without
    /// writing when the hash is already present, the summary is not
    /// cacheable (defense in depth — budget-degraded or panicked
    /// summaries must never be persisted), or the store is wedged.
    ///
    /// A failed append tries to roll the log back to the record
    /// boundary; if even that fails, the store wedges: reads keep
    /// working, writes stop, and the next open repairs the file.
    pub fn put(&mut self, hash: u64, summary: &Arc<StructuralSummary>) -> io::Result<bool> {
        if self.wedged || !summary.cacheable() || self.index.contains_key(&hash) {
            return Ok(false);
        }
        let payload = encode_summary(summary);
        let mut rec = encode_record(hash, &payload);

        // Injected fault: flip one byte *after* the CRC was computed —
        // undetectable now, caught by CRC verification on reopen. The
        // in-memory index keeps the correct summary, so this process
        // never serves the corrupt bytes.
        if let Some(entropy) = faults::entropy("store.record.corrupt") {
            let at = (entropy as usize) % rec.len();
            rec[at] ^= 1 << ((entropy >> 32) % 8);
        }

        // Injected fault: the process "dies" mid-append — only a prefix
        // of the record reaches the file and the store wedges, exactly
        // the state a real crash leaves behind.
        if let Some(entropy) = faults::entropy("store.write.torn") {
            let cut = 1 + (entropy as usize) % (rec.len() - 1);
            let _ = self.file.write_all(&rec[..cut]);
            self.wedged = true;
            return Ok(false);
        }

        let write_result = match faults::short_len("store.write.short", rec.len()) {
            // Injected fault: the append lands in two writes. No data
            // is lost; this exercises torn-tail *detection* only when a
            // real crash interleaves (see tests/crash.rs).
            Some(n) => self
                .file
                .write_all(&rec[..n])
                .and_then(|()| self.file.write_all(&rec[n..])),
            None => self.file.write_all(&rec),
        };
        if let Err(e) = write_result {
            if self.file.set_len(self.log_len).is_err() || self.file.sync_all().is_err() {
                self.wedged = true;
            }
            return Err(e);
        }

        let entry = SnapEntry {
            hash,
            offset: self.log_len,
            len: u32::try_from(rec.len()).expect("record length"),
        };
        self.log_len += rec.len() as u64;
        self.layout.insert(hash, entry);
        self.index.insert(hash, Arc::clone(summary));
        Ok(true)
    }

    /// Makes everything appended so far durable: fsync the log, then
    /// atomically replace the snapshot (write-temp + fsync + rename +
    /// directory fsync). A wedged store skips the snapshot — its
    /// in-memory state no longer matches the file.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.wedged {
            return Ok(());
        }
        self.file.sync_all()?;
        let mut entries: Vec<SnapEntry> = self.layout.values().copied().collect();
        entries.sort_by_key(|e| e.offset);
        let snap = Snapshot {
            app_version: self.options.format_version,
            fingerprint: self.options.fingerprint.clone(),
            log_len: self.log_len,
            garbage: self.garbage,
            entries,
        };
        let tmp = self.dir.join(SNAP_TMP_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&encode_snapshot(&snap))?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(SNAP_FILE))?;
        fsync_dir(&self.dir)
    }

    /// Point-in-time counters for the `stats` endpoint /
    /// `--stats-json`.
    pub fn stats(&self) -> StoreGauges {
        StoreGauges {
            disk_hits: self.disk_hits,
            disk_misses: self.disk_misses,
            records_live: self.index.len() as u64,
            records_garbage: self.garbage,
            compactions: self.compactions,
            corrupt_records_skipped: self.corrupt_skipped,
        }
    }

    /// Live records currently indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no records are live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `hash` is live, without touching hit/miss counters.
    pub fn contains(&self, hash: u64) -> bool {
        self.index.contains_key(&hash)
    }

    /// Whether a failed or torn append has stopped writes.
    pub fn wedged(&self) -> bool {
        self.wedged
    }

    /// The options this store was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// The directory holding the log and snapshot.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("biv-store-test-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn summary(tag: &str) -> Arc<StructuralSummary> {
        Arc::new(StructuralSummary::from_loops(vec![biv_core::LoopSummary {
            name: format!("L_{tag}"),
            trip_count: "10".to_string(),
            max_trip_count: None,
            classes: vec![(format!("v_{tag}"), "invariant".to_string())],
            invariants: Vec::new(),
        }]))
    }

    #[test]
    fn put_get_survive_reopen() {
        let dir = tmp_dir("reopen");
        let opts = StoreOptions::default();
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            assert!(store.put(1, &summary("a")).expect("put"));
            assert!(store.put(2, &summary("b")).expect("put"));
            assert!(
                !store.put(1, &summary("a")).expect("dup put"),
                "dup is a no-op"
            );
            store.flush().expect("flush");
        }
        let mut store = Store::open(&dir, &opts).expect("reopen");
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).expect("hit").loops[0].name, "L_a");
        assert!(store.get(3).is_none());
        let gauges = store.stats();
        assert_eq!(gauges.disk_hits, 1);
        assert_eq!(gauges.disk_misses, 1);
        assert_eq!(gauges.records_live, 2);
        assert_eq!(gauges.corrupt_records_skipped, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unflushed_appends_survive_reopen_via_full_scan() {
        let dir = tmp_dir("noflush");
        let opts = StoreOptions::default();
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            store.put(1, &summary("a")).expect("put");
            // No flush: no fsync, no snapshot. The bytes are still in
            // the file (same OS instance), so the scan finds them.
        }
        let store = Store::open(&dir, &opts).expect("reopen");
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_bump_invalidates_wholesale() {
        let dir = tmp_dir("version");
        let opts = StoreOptions::default();
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            store.put(1, &summary("a")).expect("put");
            store.put(2, &summary("b")).expect("put");
            store.flush().expect("flush");
        }
        let bumped = StoreOptions {
            format_version: opts.format_version + 1,
            ..opts.clone()
        };
        let mut store = Store::open(&dir, &bumped).expect("reopen");
        assert!(store.is_empty(), "stale records must not be visible");
        assert!(store.get(1).is_none());
        let gauges = store.stats();
        assert_eq!(gauges.records_live, 0);
        assert_eq!(gauges.records_garbage, 0);
        assert_eq!(gauges.compactions, 1, "invalidation compacts to empty");
        // And the new-version store works from there.
        let mut store = store;
        store.put(9, &summary("fresh")).expect("put");
        store.flush().expect("flush");
        drop(store);
        let store = Store::open(&dir, &bumped).expect("second reopen");
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_change_invalidates_wholesale() {
        let dir = tmp_dir("fingerprint");
        let opts = StoreOptions::default();
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            store.put(1, &summary("a")).expect("put");
            store.flush().expect("flush");
        }
        let capped = StoreOptions::for_budget(&Budget {
            max_scc: Some(16),
            ..Budget::UNLIMITED
        });
        let store = Store::open(&dir, &capped).expect("reopen");
        assert!(store.is_empty());
        assert_eq!(store.stats().compactions, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_cacheable_summaries_are_refused() {
        let dir = tmp_dir("cacheable");
        let mut store = Store::open(&dir, &StoreOptions::default()).expect("open");
        let degraded = Arc::new(StructuralSummary {
            loops: Vec::new(),
            breaches: vec![biv_core::BudgetBreach::Deadline],
            error: None,
        });
        let errored = Arc::new(StructuralSummary {
            loops: Vec::new(),
            breaches: Vec::new(),
            error: Some("panicked".to_string()),
        });
        assert!(!store.put(1, &degraded).expect("put"));
        assert!(!store.put(2, &errored).expect("put"));
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = tmp_dir("torn");
        let opts = StoreOptions::default();
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            store.put(1, &summary("a")).expect("put");
            store.put(2, &summary("b")).expect("put");
            store.flush().expect("flush");
        }
        // Simulate kill -9 mid-append: append half a record by hand.
        let log = dir.join(LOG_FILE);
        let mut f = OpenOptions::new()
            .append(true)
            .open(&log)
            .expect("open log");
        let torn = encode_record(3, &encode_summary(&summary("c")));
        f.write_all(&torn[..torn.len() / 2]).expect("torn append");
        drop(f);
        let full_len = fs::metadata(&log).expect("meta").len();

        let mut store = Store::open(&dir, &opts).expect("reopen");
        assert_eq!(store.len(), 2, "consistent prefix survives");
        assert!(store.get(1).is_some());
        assert_eq!(store.stats().corrupt_records_skipped, 1);
        assert!(
            fs::metadata(&log).expect("meta").len() < full_len,
            "the torn tail must be truncated from the file"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_truncates_from_there() {
        let dir = tmp_dir("corrupt");
        let opts = StoreOptions::default();
        let record_two_offset;
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            store.put(1, &summary("a")).expect("put");
            record_two_offset = fs::metadata(dir.join(LOG_FILE)).expect("meta").len();
            store.put(2, &summary("b")).expect("put");
            store.put(3, &summary("c")).expect("put");
            store.flush().expect("flush");
        }
        // Flip one payload byte of record 2.
        let log = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log).expect("read log");
        let at = record_two_offset as usize + 17;
        bytes[at] ^= 0x20;
        fs::write(&log, &bytes).expect("write log");

        let mut store = Store::open(&dir, &opts).expect("reopen");
        assert_eq!(
            store.len(),
            1,
            "records at and after the corruption are dropped"
        );
        assert!(store.get(1).is_some());
        assert!(store.get(2).is_none());
        assert!(store.get(3).is_none());
        assert_eq!(store.stats().corrupt_records_skipped, 1);
        // Recompute and re-store the lost records.
        assert!(store.put(2, &summary("b")).expect("re-put"));
        store.flush().expect("flush");
        drop(store);
        let store = Store::open(&dir, &opts).expect("second reopen");
        assert_eq!(store.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_fast_path_matches_full_scan() {
        let dir = tmp_dir("snap");
        let opts = StoreOptions::default();
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            for i in 0..10u64 {
                store.put(i, &summary(&format!("s{i}"))).expect("put");
            }
            store.flush().expect("flush");
        }
        // Snapshot present and fresh → fast path.
        let via_snapshot = Store::open(&dir, &opts).expect("snap open");
        assert_eq!(via_snapshot.len(), 10);
        drop(via_snapshot);
        // Remove the snapshot → full scan must agree.
        fs::remove_file(dir.join(SNAP_FILE)).expect("rm snap");
        let via_scan = Store::open(&dir, &opts).expect("scan open");
        assert_eq!(via_scan.len(), 10);
        for i in 0..10u64 {
            assert!(via_scan.contains(i));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_snapshot_is_distrusted() {
        let dir = tmp_dir("stale-snap");
        let opts = StoreOptions::default();
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            store.put(1, &summary("a")).expect("put");
            store.flush().expect("flush");
            // Append after the snapshot was taken; snapshot.log_len is
            // now stale.
            store.put(2, &summary("b")).expect("put");
        }
        let store = Store::open(&dir, &opts).expect("reopen");
        assert_eq!(
            store.len(),
            2,
            "full scan must see the post-snapshot append"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_header_resets_the_store() {
        let dir = tmp_dir("header");
        let opts = StoreOptions::default();
        {
            let mut store = Store::open(&dir, &opts).expect("open");
            store.put(1, &summary("a")).expect("put");
            store.flush().expect("flush");
        }
        let log = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log).expect("read");
        bytes[1] ^= 0xFF;
        fs::write(&log, &bytes).expect("write");
        let mut store = Store::open(&dir, &opts).expect("reopen");
        assert!(store.is_empty());
        assert!(store.put(5, &summary("fresh")).expect("put"));
        fs::remove_dir_all(&dir).ok();
    }
}
