//! Compile-time shim over `biv-faults` so the append path's injection
//! sites read the same with or without the `fault-injection` feature;
//! without it every hook is an inlined constant the optimizer erases.

#![allow(dead_code)]

#[cfg(feature = "fault-injection")]
pub(crate) use biv_faults::{entropy, short_len};

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn entropy(_site: &str) -> Option<u64> {
    None
}

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn short_len(_site: &str, _full: usize) -> Option<usize> {
    None
}
