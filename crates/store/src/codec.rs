//! Binary serialization of [`StructuralSummary`] record payloads.
//!
//! Hand-rolled and dependency-free: little-endian fixed-width integers,
//! `u32`-length-prefixed UTF-8 strings, `u8`-tagged options and enum
//! variants. The encoding is *not* self-describing — the store's header
//! carries [`biv_core::FORMAT_VERSION`], and any change here must bump
//! it so stale records are invalidated wholesale rather than misread.
//!
//! Decoding is total: every failure mode (truncation, bad tag, invalid
//! UTF-8, trailing bytes, absurd lengths) maps to [`DecodeError`], which
//! the store treats exactly like a CRC failure — the record is corrupt.

use std::fmt;
use std::sync::Arc;

use biv_core::{BudgetBreach, LoopSummary, StructuralSummary};

/// Why a payload failed to decode. The store does not distinguish
/// causes — any decode failure marks the record corrupt — but tests do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before a declared field.
    Truncated,
    /// An enum or option tag byte held an unknown value.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A length prefix exceeded the bytes remaining.
    BadLength(u64),
    /// Bytes remained after the final field.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            DecodeError::BadLength(n) => write!(f, "length prefix {n} exceeds payload"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after final field"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()?;
        let remaining = self.buf.len() - self.pos;
        if n as usize > remaining {
            return Err(DecodeError::BadLength(u64::from(n)));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn usize64(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        usize::try_from(n).map_err(|_| DecodeError::BadLength(n))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(
        out,
        u32::try_from(s.len()).expect("string field over 4 GiB"),
    );
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn get_opt_str(r: &mut Reader) -> Result<Option<String>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.string()?)),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn put_breach(out: &mut Vec<u8>, b: &BudgetBreach) {
    match b {
        BudgetBreach::Deadline => out.push(0),
        BudgetBreach::RegionNodes { nodes, limit } => {
            out.push(1);
            put_u64(out, *nodes as u64);
            put_u64(out, *limit as u64);
        }
        BudgetBreach::SccSize { size, limit } => {
            out.push(2);
            put_u64(out, *size as u64);
            put_u64(out, *limit as u64);
        }
        BudgetBreach::PolyOrder { order, limit } => {
            out.push(3);
            put_u64(out, *order as u64);
            put_u64(out, *limit as u64);
        }
    }
}

fn get_breach(r: &mut Reader) -> Result<BudgetBreach, DecodeError> {
    match r.u8()? {
        0 => Ok(BudgetBreach::Deadline),
        1 => Ok(BudgetBreach::RegionNodes {
            nodes: r.usize64()?,
            limit: r.usize64()?,
        }),
        2 => Ok(BudgetBreach::SccSize {
            size: r.usize64()?,
            limit: r.usize64()?,
        }),
        3 => Ok(BudgetBreach::PolyOrder {
            order: r.usize64()?,
            limit: r.usize64()?,
        }),
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Encodes a summary into a fresh payload buffer.
pub fn encode_summary(summary: &StructuralSummary) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    put_u32(
        &mut out,
        u32::try_from(summary.loops.len()).expect("loop count"),
    );
    for lp in &summary.loops {
        put_str(&mut out, &lp.name);
        put_str(&mut out, &lp.trip_count);
        put_opt_str(&mut out, lp.max_trip_count.as_deref());
        put_u32(
            &mut out,
            u32::try_from(lp.classes.len()).expect("class count"),
        );
        for (value, class) in &lp.classes {
            put_str(&mut out, value);
            put_str(&mut out, class);
        }
        put_u32(
            &mut out,
            u32::try_from(lp.invariants.len()).expect("invariant count"),
        );
        for relation in &lp.invariants {
            put_str(&mut out, relation);
        }
    }
    put_u32(
        &mut out,
        u32::try_from(summary.breaches.len()).expect("breach count"),
    );
    for b in &summary.breaches {
        put_breach(&mut out, b);
    }
    put_opt_str(&mut out, summary.error.as_deref());
    out
}

/// Decodes a payload produced by [`encode_summary`]; rejects trailing
/// bytes so a framing slip cannot silently pass.
pub fn decode_summary(payload: &[u8]) -> Result<Arc<StructuralSummary>, DecodeError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let loop_count = r.len()?;
    let mut loops = Vec::with_capacity(loop_count.min(1024));
    for _ in 0..loop_count {
        let name = r.string()?;
        let trip_count = r.string()?;
        let max_trip_count = get_opt_str(&mut r)?;
        let class_count = r.len()?;
        let mut classes = Vec::with_capacity(class_count.min(1024));
        for _ in 0..class_count {
            let value = r.string()?;
            let class = r.string()?;
            classes.push((value, class));
        }
        let invariant_count = r.len()?;
        let mut invariants = Vec::with_capacity(invariant_count.min(1024));
        for _ in 0..invariant_count {
            invariants.push(r.string()?);
        }
        loops.push(LoopSummary {
            name,
            trip_count,
            max_trip_count,
            classes,
            invariants,
        });
    }
    let breach_count = r.len()?;
    let mut breaches = Vec::with_capacity(breach_count.min(1024));
    for _ in 0..breach_count {
        breaches.push(get_breach(&mut r)?);
    }
    let error = get_opt_str(&mut r)?;
    if r.pos != payload.len() {
        return Err(DecodeError::TrailingBytes(payload.len() - r.pos));
    }
    Ok(Arc::new(StructuralSummary {
        loops,
        breaches,
        error,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StructuralSummary {
        StructuralSummary {
            loops: vec![
                LoopSummary {
                    name: "L7".to_string(),
                    trip_count: "(1000 - n1) / (c1 + k1)".to_string(),
                    max_trip_count: Some("1000".to_string()),
                    classes: vec![
                        ("j2".to_string(), "(L7, n1, c1 + k1)".to_string()),
                        ("i1".to_string(), "(L7, n1 + c1, c1 + k1)".to_string()),
                    ],
                    invariants: vec!["2*%3 - %2^2 + %2 = 0".to_string()],
                },
                LoopSummary {
                    name: "L9".to_string(),
                    trip_count: "unknown".to_string(),
                    max_trip_count: None,
                    classes: Vec::new(),
                    invariants: Vec::new(),
                },
            ],
            breaches: vec![
                BudgetBreach::RegionNodes {
                    nodes: 4096,
                    limit: 1024,
                },
                BudgetBreach::SccSize {
                    size: 99,
                    limit: 64,
                },
                BudgetBreach::PolyOrder { order: 5, limit: 3 },
            ],
            error: None,
        }
    }

    #[test]
    fn roundtrips_every_field() {
        let original = sample();
        let decoded = decode_summary(&encode_summary(&original)).expect("decode");
        assert_eq!(*decoded, original);
    }

    #[test]
    fn roundtrips_degenerate_summaries() {
        for summary in [
            StructuralSummary::from_loops(Vec::new()),
            StructuralSummary {
                loops: Vec::new(),
                breaches: vec![BudgetBreach::Deadline],
                error: Some("panicked: boom".to_string()),
            },
        ] {
            let decoded = decode_summary(&encode_summary(&summary)).expect("decode");
            assert_eq!(*decoded, summary);
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode_summary(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_summary(&bytes[..cut]).is_err(),
                "truncation at {cut} of {} must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_summary(&sample());
        bytes.push(0);
        assert_eq!(decode_summary(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let summary = StructuralSummary {
            loops: Vec::new(),
            breaches: vec![BudgetBreach::Deadline],
            error: None,
        };
        let mut bytes = encode_summary(&summary);
        // The breach tag is the byte right after the two count words.
        bytes[8] = 9;
        assert_eq!(decode_summary(&bytes), Err(DecodeError::BadTag(9)));
    }
}
