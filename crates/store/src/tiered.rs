//! The two-tier cache backend: a bounded in-memory [`StructuralCache`]
//! in front of a durable [`Store`], write-through on commit.
//!
//! Tiering is invisible to the batch driver: a hit from either tier is
//! one hit in the front tier's cumulative counters, so
//! `hits + misses == functions submitted` holds exactly as it does for
//! the memory-only backend. Which tier answered shows up only in the
//! [`StoreGauges`] — `disk_hits` are lookups the memory tier missed.
//!
//! A disk hit *promotes*: the summary is inserted into the memory tier
//! so repeats stay off the (already cheap) index path and FIFO eviction
//! sees realistic traffic.

use std::path::Path;
use std::sync::Arc;

use biv_core::{CacheBackend, StoreGauges, StructuralCache, StructuralSummary};

use crate::store::{Store, StoreOptions};

/// Memory tier in front of a durable store; implements
/// [`CacheBackend`] so `analyze_batch_with_backend` and the server's
/// shared variant can use it interchangeably with a bare
/// [`StructuralCache`].
#[derive(Debug)]
pub struct TieredCache {
    mem: StructuralCache,
    store: Store,
}

impl TieredCache {
    /// Fronts `store` with a memory tier bounded to `mem_capacity`.
    pub fn new(mem_capacity: usize, store: Store) -> TieredCache {
        TieredCache {
            mem: StructuralCache::new(mem_capacity),
            store,
        }
    }

    /// Opens (creating if absent) the store in `dir` and fronts it.
    pub fn open(
        dir: &Path,
        mem_capacity: usize,
        options: &StoreOptions,
    ) -> std::io::Result<TieredCache> {
        Ok(TieredCache::new(mem_capacity, Store::open(dir, options)?))
    }

    /// The durable tier.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The durable tier, mutably (tests and maintenance).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }
}

impl CacheBackend for TieredCache {
    fn lookup(&mut self, hash: u64) -> Option<Arc<StructuralSummary>> {
        if let Some(summary) = self.mem.peek(hash) {
            self.mem.note_hit();
            return Some(summary);
        }
        match self.store.get(hash) {
            Some(summary) => {
                self.mem.note_hit();
                self.mem.insert(hash, Arc::clone(&summary));
                Some(summary)
            }
            None => {
                self.mem.note_miss();
                None
            }
        }
    }

    fn note_duplicate_hit(&mut self) {
        self.mem.note_hit();
    }

    fn commit(&mut self, hash: u64, summary: Arc<StructuralSummary>) -> usize {
        let evicted = self.mem.insert(hash, Arc::clone(&summary));
        // Write-through. `put` re-checks `cacheable()` and refuses
        // wedged stores; an I/O error wedges rather than failing the
        // batch — persistence degrades, answers do not.
        let _ = self.store.put(hash, &summary);
        evicted
    }

    fn memory(&self) -> &StructuralCache {
        &self.mem
    }

    fn store_gauges(&self) -> Option<StoreGauges> {
        Some(self.store.stats())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.store.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("biv-tiered-test-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn summary(tag: &str) -> Arc<StructuralSummary> {
        Arc::new(StructuralSummary::from_loops(vec![biv_core::LoopSummary {
            name: format!("L_{tag}"),
            trip_count: "8".to_string(),
            max_trip_count: None,
            classes: Vec::new(),
            invariants: Vec::new(),
        }]))
    }

    #[test]
    fn disk_hits_promote_and_counters_balance() {
        let dir = tmp_dir("promote");
        let opts = StoreOptions::default();
        {
            let mut warm = TieredCache::open(&dir, 16, &opts).expect("open");
            assert!(warm.lookup(1).is_none());
            warm.commit(1, summary("a"));
            warm.flush().expect("flush");
        }
        let mut tiered = TieredCache::open(&dir, 16, &opts).expect("reopen");
        // Memory tier is cold; the store answers and promotes.
        assert!(tiered.lookup(1).is_some());
        let gauges = tiered.store_gauges().expect("gauges");
        assert_eq!(gauges.disk_hits, 1);
        assert_eq!(gauges.disk_misses, 0);
        // Promoted: second lookup is a pure memory hit.
        assert!(tiered.lookup(1).is_some());
        assert_eq!(tiered.store_gauges().expect("gauges").disk_hits, 1);
        // One miss on a hash neither tier has.
        assert!(tiered.lookup(99).is_none());
        let mem = tiered.memory();
        assert_eq!(mem.hits() + mem.misses(), 3, "one count per lookup");
        assert_eq!(mem.hits(), 2);
        assert_eq!(tiered.store_gauges().expect("gauges").disk_misses, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_invariant_store_invalidates_wholesale_on_reopen() {
        // A store written by the previous analyzer release (format 1,
        // before mixed-geometric classes and invariant lines existed)
        // must not serve a single record to the current release: its
        // summaries would be missing the invariants field entirely.
        let dir = tmp_dir("pre-invariant");
        let old_opts = StoreOptions {
            format_version: biv_core::FORMAT_VERSION - 1,
            ..StoreOptions::default()
        };
        {
            let mut old = TieredCache::open(&dir, 16, &old_opts).expect("open old");
            old.commit(1, summary("a"));
            old.commit(2, summary("b"));
            old.flush().expect("flush");
        }
        let mut fresh = TieredCache::open(&dir, 16, &StoreOptions::default()).expect("reopen");
        assert!(fresh.lookup(1).is_none(), "stale record must not serve");
        assert!(fresh.lookup(2).is_none(), "stale record must not serve");
        let gauges = fresh.store_gauges().expect("gauges");
        assert_eq!(gauges.disk_hits, 0, "zero disk hits from a stale store");
        assert_eq!(gauges.disk_misses, 2);
        assert_eq!(gauges.records_live, 0, "wholesale invalidation");
        // The store is usable going forward under the current version.
        fresh.commit(1, summary("a"));
        fresh.flush().expect("flush");
        let mut again = TieredCache::open(&dir, 16, &StoreOptions::default()).expect("re-reopen");
        assert!(again.lookup(1).is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_writes_through_but_never_persists_uncacheable() {
        let dir = tmp_dir("writethrough");
        let opts = StoreOptions::default();
        let mut tiered = TieredCache::open(&dir, 16, &opts).expect("open");
        tiered.commit(1, summary("a"));
        let degraded = Arc::new(StructuralSummary {
            loops: Vec::new(),
            breaches: vec![biv_core::BudgetBreach::Deadline],
            error: None,
        });
        tiered.commit(2, degraded);
        assert!(tiered.store().contains(1));
        assert!(
            !tiered.store().contains(2),
            "non-cacheable summaries must never reach disk"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
