//! On-disk framing for the record log and the index snapshot.
//!
//! The log is the source of truth: a fixed header followed by
//! append-only records, each independently CRC-checked so any prefix of
//! the file that parses is a consistent state. The snapshot is only an
//! open-time accelerator; it is rewritten atomically and distrusted the
//! moment its metadata disagrees with the log.
//!
//! ## Log layout
//!
//! ```text
//! header := "BIVS" | file_format u32 | app_version u32
//!         | fp_len u32 | fingerprint bytes | crc32
//! record := "BIVR" | payload_len u32 | hash u64 | payload | crc32
//! ```
//!
//! All integers are little-endian. The header CRC covers everything
//! between the magic and the CRC itself; a record's CRC covers the hash
//! and the payload (the framing words are validated structurally: bad
//! magic or an impossible length is as fatal as a bad checksum).
//!
//! ## Snapshot layout
//!
//! ```text
//! snapshot := "BIVI" | file_format u32 | app_version u32
//!           | fp_len u32 | fingerprint bytes
//!           | log_len u64 | garbage u64
//!           | entry_count u32 | { hash u64, offset u64, len u32 }*
//!           | crc32
//! ```
//!
//! A snapshot is trusted only when its file format, app version,
//! fingerprint, *and* recorded `log_len` all match the live log — any
//! append the snapshot has not seen (including one torn by `kill -9`)
//! forces the full sequential scan instead.

/// Magic leading the record log.
pub const LOG_MAGIC: [u8; 4] = *b"BIVS";
/// Magic leading the index snapshot.
pub const SNAP_MAGIC: [u8; 4] = *b"BIVI";
/// Magic leading every record.
pub const REC_MAGIC: [u8; 4] = *b"BIVR";
/// Version of the *container* layout described in this module —
/// orthogonal to [`biv_core::FORMAT_VERSION`], which versions the
/// analysis semantics carried in payloads.
pub const LOG_FILE_FORMAT: u32 = 1;

/// Bytes of record framing around a payload: magic, length, hash, CRC.
pub const RECORD_OVERHEAD: usize = 4 + 4 + 8 + 4;

/// CRC-32 (IEEE 802.3, reflected) with a compile-time table.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
}

/// Encodes the log header for a store keyed on
/// `(app_version, fingerprint)`.
pub fn encode_header(app_version: u32, fingerprint: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + fingerprint.len() + 4);
    out.extend_from_slice(&LOG_MAGIC);
    push_u32(&mut out, LOG_FILE_FORMAT);
    push_u32(&mut out, app_version);
    push_u32(
        &mut out,
        u32::try_from(fingerprint.len()).expect("fingerprint length"),
    );
    out.extend_from_slice(fingerprint.as_bytes());
    let crc = crc32(&out[4..]);
    push_u32(&mut out, crc);
    out
}

/// A successfully parsed log header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// [`biv_core::FORMAT_VERSION`] at write time.
    pub app_version: u32,
    /// [`biv_core::analysis_fingerprint`] at write time.
    pub fingerprint: String,
    /// Bytes the header occupies; the first record starts here.
    pub len: usize,
}

/// Parses the log header; `None` means the header is corrupt or from an
/// unknown container format, and the log must be reset.
pub fn decode_header(buf: &[u8]) -> Option<Header> {
    if buf.get(..4)? != LOG_MAGIC {
        return None;
    }
    if read_u32(buf, 4)? != LOG_FILE_FORMAT {
        return None;
    }
    let app_version = read_u32(buf, 8)?;
    let fp_len = read_u32(buf, 12)? as usize;
    let body_end = 16usize.checked_add(fp_len)?;
    let fingerprint = String::from_utf8(buf.get(16..body_end)?.to_vec()).ok()?;
    let crc = read_u32(buf, body_end)?;
    if crc != crc32(&buf[4..body_end]) {
        return None;
    }
    Some(Header {
        app_version,
        fingerprint,
        len: body_end + 4,
    })
}

/// Encodes one record: framing, hash, payload, CRC over hash+payload.
pub fn encode_record(hash: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&REC_MAGIC);
    push_u32(
        &mut out,
        u32::try_from(payload.len()).expect("payload length"),
    );
    push_u64(&mut out, hash);
    out.extend_from_slice(payload);
    let crc = crc32(&out[8..]);
    push_u32(&mut out, crc);
    out
}

/// A record parsed in place from the log buffer.
#[derive(Debug, Clone, Copy)]
pub struct ParsedRecord<'a> {
    /// The structural hash the record is keyed on.
    pub hash: u64,
    /// The CRC-verified payload bytes.
    pub payload: &'a [u8],
    /// Total bytes the record occupies, framing included.
    pub len: usize,
}

/// Parses the record starting at `offset`. `None` covers every failure
/// mode — truncation, bad magic, impossible length, CRC mismatch —
/// because the caller's response is always the same: the consistent
/// prefix ends here.
pub fn parse_record(buf: &[u8], offset: usize) -> Option<ParsedRecord<'_>> {
    let rec = buf.get(offset..)?;
    if rec.get(..4)? != REC_MAGIC {
        return None;
    }
    let payload_len = read_u32(rec, 4)? as usize;
    let total = RECORD_OVERHEAD.checked_add(payload_len)?;
    if rec.len() < total {
        return None;
    }
    let hash = read_u64(rec, 8)?;
    let payload = &rec[16..16 + payload_len];
    let crc = read_u32(rec, 16 + payload_len)?;
    if crc != crc32(&rec[8..16 + payload_len]) {
        return None;
    }
    Some(ParsedRecord {
        hash,
        payload,
        len: total,
    })
}

/// One live-record descriptor inside a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapEntry {
    /// The structural hash.
    pub hash: u64,
    /// Byte offset of the record in the log.
    pub offset: u64,
    /// Total record length, framing included.
    pub len: u32,
}

/// The decoded contents of an index snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// [`biv_core::FORMAT_VERSION`] at write time.
    pub app_version: u32,
    /// [`biv_core::analysis_fingerprint`] at write time.
    pub fingerprint: String,
    /// Log length the snapshot describes; a live log of any other
    /// length invalidates it.
    pub log_len: u64,
    /// Garbage records resident in the log at snapshot time.
    pub garbage: u64,
    /// Live records, in no particular order.
    pub entries: Vec<SnapEntry>,
}

/// Encodes an index snapshot.
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + snap.fingerprint.len() + snap.entries.len() * 20);
    out.extend_from_slice(&SNAP_MAGIC);
    push_u32(&mut out, LOG_FILE_FORMAT);
    push_u32(&mut out, snap.app_version);
    push_u32(
        &mut out,
        u32::try_from(snap.fingerprint.len()).expect("fingerprint length"),
    );
    out.extend_from_slice(snap.fingerprint.as_bytes());
    push_u64(&mut out, snap.log_len);
    push_u64(&mut out, snap.garbage);
    push_u32(
        &mut out,
        u32::try_from(snap.entries.len()).expect("entry count"),
    );
    for e in &snap.entries {
        push_u64(&mut out, e.hash);
        push_u64(&mut out, e.offset);
        push_u32(&mut out, e.len);
    }
    let crc = crc32(&out[4..]);
    push_u32(&mut out, crc);
    out
}

/// Decodes an index snapshot; `None` on any corruption or format skew.
pub fn decode_snapshot(buf: &[u8]) -> Option<Snapshot> {
    if buf.len() < 4 || buf.get(..4)? != SNAP_MAGIC {
        return None;
    }
    let crc_at = buf.len().checked_sub(4)?;
    if read_u32(buf, crc_at)? != crc32(&buf[4..crc_at]) {
        return None;
    }
    if read_u32(buf, 4)? != LOG_FILE_FORMAT {
        return None;
    }
    let app_version = read_u32(buf, 8)?;
    let fp_len = read_u32(buf, 12)? as usize;
    let mut at = 16usize.checked_add(fp_len)?;
    let fingerprint = String::from_utf8(buf.get(16..at)?.to_vec()).ok()?;
    let log_len = read_u64(buf, at)?;
    let garbage = read_u64(buf, at + 8)?;
    let entry_count = read_u32(buf, at + 16)? as usize;
    at += 20;
    let mut entries = Vec::with_capacity(entry_count.min(1 << 16));
    for _ in 0..entry_count {
        entries.push(SnapEntry {
            hash: read_u64(buf, at)?,
            offset: read_u64(buf, at + 8)?,
            len: read_u32(buf, at + 16)?,
        });
        at += 20;
    }
    if at != crc_at {
        return None;
    }
    Some(Snapshot {
        app_version,
        fingerprint,
        log_len,
        garbage,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn header_roundtrips_and_rejects_tampering() {
        let bytes = encode_header(3, "nodes=-,scc=64,order=-");
        let h = decode_header(&bytes).expect("decode");
        assert_eq!(h.app_version, 3);
        assert_eq!(h.fingerprint, "nodes=-,scc=64,order=-");
        assert_eq!(h.len, bytes.len());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_header(&bad).is_none(), "flip at {i} must be caught");
        }
        assert!(decode_header(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn record_roundtrips_and_rejects_tampering() {
        let rec = encode_record(0xDEAD_BEEF_CAFE_F00D, b"payload bytes");
        let p = parse_record(&rec, 0).expect("parse");
        assert_eq!(p.hash, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(p.payload, b"payload bytes");
        assert_eq!(p.len, rec.len());
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0x01;
            assert!(
                parse_record(&bad, 0).is_none(),
                "flip at {i} must be caught"
            );
        }
        for cut in 0..rec.len() {
            assert!(
                parse_record(&rec[..cut], 0).is_none(),
                "truncation at {cut}"
            );
        }
    }

    #[test]
    fn records_parse_back_to_back() {
        let mut buf = encode_record(1, b"a");
        let second_at = buf.len();
        buf.extend_from_slice(&encode_record(2, b"bb"));
        let first = parse_record(&buf, 0).expect("first");
        assert_eq!(first.hash, 1);
        assert_eq!(first.len, second_at);
        let second = parse_record(&buf, second_at).expect("second");
        assert_eq!(second.hash, 2);
        assert_eq!(second.payload, b"bb");
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_tampering() {
        let snap = Snapshot {
            app_version: 1,
            fingerprint: "nodes=-,scc=-,order=-".to_string(),
            log_len: 4096,
            garbage: 2,
            entries: vec![
                SnapEntry {
                    hash: 7,
                    offset: 30,
                    len: 44,
                },
                SnapEntry {
                    hash: 9,
                    offset: 74,
                    len: 120,
                },
            ],
        };
        let bytes = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&bytes).as_ref(), Some(&snap));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                decode_snapshot(&bad).is_none(),
                "flip at {i} must be caught"
            );
        }
    }
}
