//! **biv-store** — a durable content-addressed store for analysis
//! summaries, so restarts are warm and repeated corpora are near-free.
//!
//! The structural hash computed by `biv_core::batch` already
//! content-addresses analysis *inputs*; this crate makes it a durable
//! key. The design is a miniature of the classic compilation-cache
//! shape:
//!
//! - [`codec`] — a dependency-free binary encoding of
//!   [`biv_core::StructuralSummary`];
//! - [`log`] — CRC-checked framing for an append-only record log and an
//!   atomically-replaced index snapshot;
//! - [`Store`] — open/scan/truncate/compact, preloaded in-memory index,
//!   append on put, fsync + snapshot on flush;
//! - [`TieredCache`] — a bounded memory tier in front of the store,
//!   implementing `biv_core`'s `CacheBackend` for the batch driver and
//!   the server.
//!
//! Two invariants carry the whole crate:
//!
//! 1. **Only consistent prefixes are served.** Every record is
//!    independently checksummed; the first record that fails framing,
//!    CRC, or decode ends the usable log, and the tail past it is
//!    truncated — recomputed, never served.
//! 2. **Stale analysis is invalidated wholesale.** The log header pins
//!    `(FORMAT_VERSION, budget fingerprint)`; any mismatch on open
//!    turns every record into garbage and compacts the store to empty.
//!    There is no per-record versioning to get subtly wrong.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod faults;
pub mod log;
mod store;
mod tiered;

pub use store::{Store, StoreOptions, LOG_FILE, SNAP_FILE};
pub use tiered::TieredCache;
