//! Crash-consistency sweep: a log cut at *every possible byte length*
//! must reopen to the exact consistent prefix — the records fully
//! written before the cut, nothing after, no error, no wrong answer.
//!
//! This is the deterministic core of the chaos story: `kill -9`, torn
//! writes, and power loss all leave some prefix of the bytes we
//! appended, and this sweep enumerates all of them.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use biv_core::{LoopSummary, StructuralSummary};
use biv_store::{Store, StoreOptions, LOG_FILE, SNAP_FILE};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("biv-store-crash-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn summary(tag: &str) -> Arc<StructuralSummary> {
    Arc::new(StructuralSummary::from_loops(vec![LoopSummary {
        name: format!("L_{tag}"),
        trip_count: format!("trip_{tag}"),
        max_trip_count: Some("64".to_string()),
        classes: vec![(format!("v_{tag}"), format!("(L, {tag}, 1)"))],
        invariants: vec![format!("2*s_{tag} - i^2 + i = 0")],
    }]))
}

#[test]
fn every_truncation_point_reopens_to_the_consistent_prefix() {
    let opts = StoreOptions::default();
    let build_dir = tmp_dir("build");

    // Build a store of 5 records, noting the log length after each
    // append — those are the record boundaries.
    let mut boundaries = Vec::new();
    {
        let mut store = Store::open(&build_dir, &opts).expect("open");
        boundaries.push(fs::metadata(build_dir.join(LOG_FILE)).expect("meta").len());
        for i in 0..5u64 {
            assert!(store.put(i, &summary(&i.to_string())).expect("put"));
            boundaries.push(fs::metadata(build_dir.join(LOG_FILE)).expect("meta").len());
        }
        // Deliberately no flush: the sweep must not depend on one.
    }
    let full = fs::read(build_dir.join(LOG_FILE)).expect("read log");
    let header_len = boundaries[0] as usize;
    assert_eq!(*boundaries.last().expect("nonempty") as usize, full.len());

    let sweep_dir = tmp_dir("sweep");
    for cut in header_len..=full.len() {
        fs::create_dir_all(&sweep_dir).expect("mkdir");
        fs::write(sweep_dir.join(LOG_FILE), &full[..cut]).expect("write cut log");

        let mut store = Store::open(&sweep_dir, &opts).expect("reopen never fails");
        // Records whose end fits inside the cut must all survive…
        let survivors = boundaries[1..]
            .iter()
            .filter(|&&end| end <= cut as u64)
            .count();
        assert_eq!(
            store.len(),
            survivors,
            "cut at {cut}: exactly the fully-written records survive"
        );
        for i in 0..survivors as u64 {
            let got = store.get(i).expect("survivor serves");
            assert_eq!(got.loops[0].name, format!("L_{i}"), "cut at {cut}");
        }
        // …and nothing past the cut is ever visible.
        for i in survivors as u64..5 {
            assert!(
                store.get(i).is_none(),
                "cut at {cut}: record {i} must be gone"
            );
        }
        let gauges = store.stats();
        let mid_record = !boundaries.contains(&(cut as u64));
        assert_eq!(
            gauges.corrupt_records_skipped,
            u64::from(mid_record),
            "cut at {cut}: a partial tail counts as exactly one corrupt record"
        );
        // The reopened store accepts new work from the repaired state.
        assert!(store.put(100, &summary("new")).expect("put after repair"));
        assert!(store.get(100).is_some());

        fs::remove_dir_all(&sweep_dir).expect("rm sweep dir");
    }
    fs::remove_dir_all(&build_dir).ok();
}

#[test]
fn truncation_with_a_stale_snapshot_still_recovers() {
    // Same sweep idea, but the directory also carries a snapshot taken
    // at full length — every shorter cut makes it stale, and the store
    // must fall back to the scan instead of trusting it.
    let opts = StoreOptions::default();
    let build_dir = tmp_dir("snapbuild");
    {
        let mut store = Store::open(&build_dir, &opts).expect("open");
        for i in 0..3u64 {
            store.put(i, &summary(&i.to_string())).expect("put");
        }
        store.flush().expect("flush");
    }
    let full = fs::read(build_dir.join(LOG_FILE)).expect("read log");
    let snap = fs::read(build_dir.join(SNAP_FILE)).expect("read snap");

    let sweep_dir = tmp_dir("snapsweep");
    // Cut off the last record's final byte — snapshot log_len mismatch.
    fs::create_dir_all(&sweep_dir).expect("mkdir");
    fs::write(sweep_dir.join(LOG_FILE), &full[..full.len() - 1]).expect("cut log");
    fs::write(sweep_dir.join(SNAP_FILE), &snap).expect("copy snap");

    let mut store = Store::open(&sweep_dir, &opts).expect("reopen");
    assert_eq!(
        store.len(),
        2,
        "stale snapshot must not resurrect the torn record"
    );
    assert!(store.get(2).is_none());
    assert_eq!(store.stats().corrupt_records_skipped, 1);
    fs::remove_dir_all(&sweep_dir).ok();
    fs::remove_dir_all(&build_dir).ok();
}

#[test]
fn kill_dash_nine_equivalent_append_then_reopen() {
    // A process that appended without flushing and then died (the page
    // cache retained the bytes): reopen sees everything, plus a torn
    // half-record by hand to stand in for the interrupted final write.
    let opts = StoreOptions::default();
    let dir = tmp_dir("kill9");
    {
        let mut store = Store::open(&dir, &opts).expect("open");
        for i in 0..4u64 {
            store.put(i, &summary(&i.to_string())).expect("put");
        }
        // No flush, no drop-order ceremony: the handle just goes away.
    }
    {
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(LOG_FILE))
            .expect("open log");
        use std::io::Write;
        f.write_all(b"BIVR\x40\x00\x00\x00partial")
            .expect("torn bytes");
    }
    let mut store = Store::open(&dir, &opts).expect("reopen");
    assert_eq!(store.len(), 4);
    for i in 0..4u64 {
        assert!(store.get(i).is_some());
    }
    assert_eq!(store.stats().corrupt_records_skipped, 1);
    fs::remove_dir_all(&dir).ok();
}
