//! The paper's §6 dependence-testing examples: L21 (induction
//! expressions), L22 (periodic ⇒ ≠), Figure 10 (monotonic directions),
//! and the L23/L24 loop-normalization comparison.

use biv_core::analyze_source;
use biv_depend::{DepKind, DepTestResult, DependenceTester, DirSet};

/// L21: `A(i) = A(j-1)` with `i = (L21, 1, 1)` and the right-hand
/// subscript `(L21, 2, 2)`; the dependence equation reads the
/// coefficients straight off the tuples.
#[test]
fn l21_dependence_equation_from_tuples() {
    let analysis = analyze_source(
        r#"
        func l21(n) {
            i = 0
            j = 3
            L21: loop {
                i = i + 1
                A[i] = A[j - 1]
                j = j + 2
                if i > n { break }
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    assert_eq!(accesses.len(), 2);
    let l21 = analysis.loop_by_label("L21").unwrap();
    let store = accesses.iter().position(|a| a.is_write).unwrap();
    let load = accesses.iter().position(|a| !a.is_write).unwrap();
    // Subscript tuples: store side (L21, 1, 1); load side j−1 = (L21, 2, 2).
    let s = biv_depend::affine_subscript(&analysis, &accesses[store].index[0], &[l21]).unwrap();
    assert_eq!(s.coeffs, vec![biv_algebra::Rational::ONE]);
    assert_eq!(
        s.consts.constant_value().unwrap(),
        biv_algebra::Rational::ONE
    );
    let r = biv_depend::affine_subscript(&analysis, &accesses[load].index[0], &[l21]).unwrap();
    assert_eq!(r.coeffs, vec![biv_algebra::Rational::from_integer(2)]);
    assert_eq!(
        r.consts.constant_value().unwrap(),
        biv_algebra::Rational::from_integer(2)
    );
    // The equation 1 + h = 2 + 2h' solves only with h = 2h' + 1 > h':
    // the *write* always happens after the read of the same location, so
    // the forward flow pair is disproved and the anti dependence (read
    // then write, direction <) survives.
    assert_eq!(tester.test(store, load), DepTestResult::Independent);
    match tester.test(load, store) {
        DepTestResult::Dependent(d) => {
            assert_eq!(d.kind, DepKind::Anti);
            let dir = d.directions.0[0];
            assert!(dir.lt && !dir.eq, "anti dependence strictly forward: {dir}");
        }
        DepTestResult::Independent => panic!("L21 has an anti dependence"),
    }
}

/// L22: `A(2*j) = A(2*k)` with `(j, k, l)` a periodic family — the `=`
/// solution in family space translates to `≠` in iteration space.
#[test]
fn l22_periodic_gives_not_equal_direction() {
    let analysis = analyze_source(
        r#"
        func l22(n, j0, k0, l0) {
            j = 1
            k = 2
            l = 3
            L22: loop {
                A[2 * j] = A[2 * k]
                temp = j
                j = k
                k = l
                l = temp
                if n > 0 { break }
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    let store = accesses.iter().position(|a| a.is_write).unwrap();
    let load = accesses.iter().position(|a| !a.is_write).unwrap();
    match tester.test(store, load) {
        DepTestResult::Dependent(d) => {
            // Innermost (only) loop direction must exclude `=`.
            let dir = d.directions.0.last().copied().unwrap();
            assert!(!dir.eq, "periodic phases differ: = impossible, got {dir}");
            assert!(dir.lt || dir.gt);
            let pc = d.periodic.expect("periodic constraint recorded");
            assert_eq!(pc.period, 3);
            assert_ne!(pc.residue, 0);
        }
        DepTestResult::Independent => {
            panic!("values rotate: dependence exists across iterations")
        }
    }
}

/// The same-name periodic subscript keeps the `=` direction (residue 0).
#[test]
fn periodic_same_name_keeps_equal() {
    let analysis = analyze_source(
        r#"
        func f(n) {
            j = 1
            k = 2
            L1: loop {
                A[j] = A[j] + 1
                temp = j
                j = k
                k = temp
                if n > 0 { break }
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    let store = accesses.iter().position(|a| a.is_write).unwrap();
    let load = accesses.iter().position(|a| !a.is_write).unwrap();
    match tester.test(store, load) {
        DepTestResult::Dependent(d) => {
            let pc = d.periodic.expect("constraint");
            assert_eq!(pc.period, 2);
            assert_eq!(pc.residue, 0, "same value: equal iterations mod 2");
        }
        DepTestResult::Independent => panic!("same subscript must depend"),
    }
}

/// Figure 10: mixed monotonic and strictly monotonic variables.
#[test]
fn fig10_monotonic_directions() {
    let analysis = analyze_source(
        r#"
        func fig10(n) {
            k = 0
            L15: for i = 1 to n {
                F[k] = A[i]
                t = A[i]
                if t > 0 {
                    C[k] = D[i]
                    k = k + 1
                    B[k] = A[i]
                    E[i] = B[k]
                }
                G[i] = F[k]
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    // Array B: store B[k3] then load B[k3] — same strictly monotonic
    // value: direction (=).
    let b_store = accesses
        .iter()
        .position(|a| a.is_write && analysis.ssa().func().array_name(a.array) == "B")
        .unwrap();
    let b_load = accesses
        .iter()
        .position(|a| !a.is_write && analysis.ssa().func().array_name(a.array) == "B")
        .unwrap();
    match tester.test(b_store, b_load) {
        DepTestResult::Dependent(d) => {
            let dir = d.directions.0.last().copied().unwrap();
            assert_eq!(dir, DirSet::EQ, "strict monotonic same value: (=)");
        }
        DepTestResult::Independent => panic!("B depends on itself"),
    }
    // Array F: store F[k2] (non-strict) then load F[k4]: flow direction
    // (≤).
    let f_store = accesses
        .iter()
        .position(|a| a.is_write && analysis.ssa().func().array_name(a.array) == "F")
        .unwrap();
    let f_load = accesses
        .iter()
        .position(|a| !a.is_write && analysis.ssa().func().array_name(a.array) == "F")
        .unwrap();
    match tester.test(f_store, f_load) {
        DepTestResult::Dependent(d) => {
            let dir = d.directions.0.last().copied().unwrap();
            assert_eq!(dir, DirSet::LE, "non-strict monotonic: (<=)");
            assert_eq!(d.kind, DepKind::Flow);
        }
        DepTestResult::Independent => panic!("F flow dependence exists"),
    }
    // The anti dependence (load F[k4] before the next store F[k2]):
    // direction (<) — the (=) refinement dies on execution order.
    match tester.test(f_load, f_store) {
        DepTestResult::Dependent(d) => {
            assert_eq!(d.kind, DepKind::Anti);
            let dir = d.directions.0.last().copied().unwrap();
            assert!(dir.lt, "anti dependence possible at (<)");
        }
        DepTestResult::Independent => panic!("F anti dependence exists"),
    }
}

/// L23/L24: the loop-normalization example. Both the original and the
/// manually normalized forms produce the same dependence results in this
/// framework, because induction expressions implicitly normalize (§6.1).
#[test]
fn l23_l24_normalization_invariance() {
    let original = analyze_source(
        r#"
        func orig(n) {
            L23: for i = 1 to n {
                L24: for j = i + 1 to n {
                    A[i, j] = A[i - 1, j]
                }
            }
        }
        "#,
    )
    .unwrap();
    let normalized = analyze_source(
        r#"
        func norm(n) {
            L23: for i = 1 to n {
                L24: for j = 1 to n - i {
                    A[i, j + i] = A[i - 1, j + i]
                }
            }
        }
        "#,
    )
    .unwrap();
    let collect = |analysis: &biv_core::Analysis| {
        let tester = DependenceTester::new(analysis);
        let accesses = tester.accesses();
        let store = accesses.iter().position(|a| a.is_write).unwrap();
        let load = accesses.iter().position(|a| !a.is_write).unwrap();
        match tester.test(store, load) {
            DepTestResult::Dependent(d) => (d.directions.to_string(), d.distances),
            DepTestResult::Independent => panic!("dependence exists"),
        }
    };
    let (dir_a, dist_a) = collect(&original);
    let (dir_b, dist_b) = collect(&normalized);
    assert_eq!(dir_a, dir_b, "directions identical across normalization");
    assert_eq!(dist_a, dist_b, "distances identical across normalization");
    // Outer-loop distance is exactly 1.
    assert_eq!(dist_a[0], Some(1));
}

/// Wrap-around subscripts: dependence flagged as holding after the first
/// iteration (L9 of §4.1).
#[test]
fn l9_wraparound_flagged() {
    let analysis = analyze_source(
        r#"
        func l9(n) {
            iml = n
            L9: for i = 1 to n {
                A[i] = A[iml] + 1
                iml = i
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    let store = accesses.iter().position(|a| a.is_write).unwrap();
    let load = accesses.iter().position(|a| !a.is_write).unwrap();
    match tester.test(store, load) {
        DepTestResult::Dependent(d) => {
            assert_eq!(d.wraparound_after, 1, "holds only after iteration 1");
            // In steady state iml = i − 1: distance 1.
            assert_eq!(d.distances[0], Some(1));
        }
        DepTestResult::Independent => panic!("wrap-around dependence exists"),
    }
}

/// Independence: disjoint even/odd strides.
#[test]
fn gcd_disproves_interleaved() {
    let analysis = analyze_source(
        r#"
        func f(n) {
            L1: for i = 1 to n {
                A[2 * i] = A[2 * i + 1]
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    let store = accesses.iter().position(|a| a.is_write).unwrap();
    let load = accesses.iter().position(|a| !a.is_write).unwrap();
    assert_eq!(tester.test(store, load), DepTestResult::Independent);
    assert_eq!(tester.test(load, store), DepTestResult::Independent);
}

/// Independence by bounds: distance exceeds the (constant) trip count.
#[test]
fn banerjee_disproves_far_offset() {
    let analysis = analyze_source(
        r#"
        func f() {
            L1: for i = 1 to 10 {
                A[i] = A[i + 100]
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    let store = accesses.iter().position(|a| a.is_write).unwrap();
    let load = accesses.iter().position(|a| !a.is_write).unwrap();
    assert_eq!(tester.test(store, load), DepTestResult::Independent);
}

/// Multi-dimensional subscripts constrain independently.
#[test]
fn two_dim_distance_vector() {
    let analysis = analyze_source(
        r#"
        func f(n) {
            L1: for i = 2 to n {
                L2: for j = 2 to n {
                    A[i, j] = A[i - 1, j - 2]
                }
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    let store = accesses.iter().position(|a| a.is_write).unwrap();
    let load = accesses.iter().position(|a| !a.is_write).unwrap();
    match tester.test(store, load) {
        DepTestResult::Dependent(d) => {
            assert_eq!(d.distances, vec![Some(1), Some(2)]);
            assert_eq!(d.directions.to_string(), "(<, <)");
        }
        DepTestResult::Independent => panic!("dependence exists"),
    }
}
