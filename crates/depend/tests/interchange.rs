//! Loop-interchange legality on the paper's §6.1 examples: our
//! representation gives the same verdict for the original and the
//! hand-normalized forms of L23/L24.

use biv_core::analyze_source;
use biv_depend::{interchange_legal, parallelizable, summarize, DependenceTester};

/// The paper's §6.1 observation, made executable: because induction
/// expressions implicitly normalize every loop to a counter starting at
/// zero, the triangular L23/L24 example gives the *same* direction vector
/// — (<, >) in normalized space — whether or not the source was
/// normalized. A compiler using these vectors naively must treat
/// interchange as illegal in both forms (where a lower-bound-aware
/// analyzer sees the unnormalized distance (1, 0)); the paper argues this
/// pushes implementations toward unimodular loop transformations.
#[test]
fn l23_l24_same_verdict_in_both_forms() {
    let mut verdicts = Vec::new();
    for src in [
        r#"
        func orig(n) {
            L23: for i = 1 to n {
                L24: for j = i + 1 to n {
                    A[i, j] = A[i - 1, j]
                }
            }
        }
        "#,
        r#"
        func norm(n) {
            L23: for i = 1 to n {
                L24: for j = 1 to n - i {
                    A[i, j + i] = A[i - 1, j + i]
                }
            }
        }
        "#,
    ] {
        let analysis = analyze_source(src).unwrap();
        let tester = DependenceTester::new(&analysis);
        let deps = tester.all_dependences();
        assert!(!deps.is_empty());
        verdicts.push((
            summarize(&deps, 2).to_string(),
            interchange_legal(&deps, 0, 1),
            parallelizable(&deps, 1),
        ));
    }
    assert_eq!(
        verdicts[0], verdicts[1],
        "normalization cannot change the answer"
    );
    // In normalized space the second component is (>): naive interchange
    // is rejected, exactly the sensitivity the paper discusses.
    assert!(!verdicts[0].1);
}

#[test]
fn skewed_dependence_blocks_interchange() {
    // A[i, j] = A[i-1, j+1]: distance (1, -1) → direction (<, >):
    // interchange illegal.
    let analysis = analyze_source(
        r#"
        func f(n) {
            L1: for i = 2 to n {
                L2: for j = 1 to n {
                    A[i, j] = A[i - 1, j + 1]
                }
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let deps = tester.all_dependences();
    assert!(!deps.is_empty());
    assert!(!interchange_legal(&deps, 0, 1));
}

#[test]
fn summary_over_multiple_dependences() {
    let analysis = analyze_source(
        r#"
        func f(n) {
            L1: for i = 2 to n {
                L2: for j = 2 to n {
                    A[i, j] = A[i - 1, j] + A[i, j - 1]
                }
            }
        }
        "#,
    )
    .unwrap();
    let tester = DependenceTester::new(&analysis);
    let deps = tester.all_dependences();
    let s = summarize(&deps, 2);
    // Both a (<, =) and a (=, <) dependence exist.
    assert_eq!(s.to_string(), "(<=, <=)");
    assert!(
        interchange_legal(&deps, 0, 1),
        "classic stencil interchanges"
    );
    assert!(!parallelizable(&deps, 0));
    assert!(!parallelizable(&deps, 1));
}
