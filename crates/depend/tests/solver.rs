//! Solver-level coverage: SIV variants, outputs, symbolic bounds, and
//! multi-dimensional interactions beyond the paper's worked examples.

use biv_core::analyze_source;
use biv_depend::{DepKind, DepTestResult, DependenceTester, DirSet};

fn tester_src(src: &str) -> (biv_core::Analysis, Vec<usize>, Vec<usize>) {
    let analysis = analyze_source(src).unwrap();
    let tester = DependenceTester::new(&analysis);
    let writes: Vec<usize> = tester
        .accesses()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.is_write)
        .map(|(i, _)| i)
        .collect();
    let reads: Vec<usize> = tester
        .accesses()
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.is_write)
        .map(|(i, _)| i)
        .collect();
    (analysis, writes, reads)
}

#[test]
fn weak_zero_siv_within_bounds() {
    // A[5] read, A[i] written for i in 1..=10: dependence at i = 5.
    let (analysis, writes, reads) =
        tester_src("func f() { L1: for i = 1 to 10 { A[i] = A[5] + 1 } }");
    let tester = DependenceTester::new(&analysis);
    match tester.test(writes[0], reads[0]) {
        DepTestResult::Dependent(d) => assert_eq!(d.kind, DepKind::Flow),
        DepTestResult::Independent => panic!("A[5] is written at i=5"),
    }
}

#[test]
fn weak_zero_siv_outside_bounds() {
    // A[50] is never written when i only reaches 10.
    let (analysis, writes, reads) =
        tester_src("func f() { L1: for i = 1 to 10 { A[i] = A[50] + 1 } }");
    let tester = DependenceTester::new(&analysis);
    assert_eq!(tester.test(writes[0], reads[0]), DepTestResult::Independent);
    assert_eq!(tester.test(reads[0], writes[0]), DepTestResult::Independent);
}

#[test]
fn output_dependence_on_same_subscript() {
    let (analysis, writes, _) =
        tester_src("func f(n) { L1: for i = 1 to n { A[i] = 1 A[i] = 2 } }");
    let tester = DependenceTester::new(&analysis);
    match tester.test(writes[0], writes[1]) {
        DepTestResult::Dependent(d) => {
            assert_eq!(d.kind, DepKind::Output);
            assert_eq!(d.distances, vec![Some(0)]);
            assert_eq!(d.directions.0[0], DirSet::EQ);
        }
        DepTestResult::Independent => panic!("same subscript: output dep"),
    }
}

#[test]
fn symbolic_offset_assumed_dependent() {
    // A[i] vs A[i + n]: n symbolic — cannot disprove.
    let (analysis, writes, reads) =
        tester_src("func f(n) { L1: for i = 1 to 10 { A[i] = A[i + n] } }");
    let tester = DependenceTester::new(&analysis);
    match tester.test(writes[0], reads[0]) {
        DepTestResult::Dependent(_) => {}
        DepTestResult::Independent => panic!("symbolic offset cannot be disproved"),
    }
}

#[test]
fn crossing_siv() {
    // A[i] = A[20 - i]: crossing dependence around i = 10.
    let (analysis, writes, reads) =
        tester_src("func f() { L1: for i = 1 to 19 { A[i] = A[20 - i] } }");
    let tester = DependenceTester::new(&analysis);
    match tester.test(writes[0], reads[0]) {
        DepTestResult::Dependent(_) => {}
        DepTestResult::Independent => panic!("crossing dependence exists"),
    }
}

#[test]
fn crossing_siv_disproved_when_parity_excludes() {
    // A[2i] = A[2i + 11]: 2h ≡ 2h' + 11 has no integer solution (parity).
    let (analysis, writes, reads) =
        tester_src("func f(n) { L1: for i = 1 to n { A[2 * i] = A[2 * i + 11] } }");
    let tester = DependenceTester::new(&analysis);
    assert_eq!(tester.test(writes[0], reads[0]), DepTestResult::Independent);
    assert_eq!(tester.test(reads[0], writes[0]), DepTestResult::Independent);
}

#[test]
fn outer_invariant_dim_constrains_to_equal() {
    // A[i, j] = A[i, j-1]: first dim forces =, second gives distance 1.
    let (analysis, writes, reads) = tester_src(
        r#"
        func f(n) {
            L1: for i = 1 to n {
                L2: for j = 2 to n {
                    A[i, j] = A[i, j - 1]
                }
            }
        }
        "#,
    );
    let tester = DependenceTester::new(&analysis);
    match tester.test(writes[0], reads[0]) {
        DepTestResult::Dependent(d) => {
            assert_eq!(d.directions.to_string(), "(=, <)");
            assert_eq!(d.distances, vec![Some(0), Some(1)]);
        }
        DepTestResult::Independent => panic!("row dependence exists"),
    }
}

#[test]
fn anti_parallel_diagonal() {
    // A[i + j] touched by every (i, j) with the same sum: dependence with
    // many directions, but GCD/Banerjee keep it (no disproof).
    let (analysis, writes, reads) = tester_src(
        r#"
        func f(n) {
            L1: for i = 1 to 10 {
                L2: for j = 1 to 10 {
                    A[i + j] = A[i + j] + 1
                }
            }
        }
        "#,
    );
    let tester = DependenceTester::new(&analysis);
    match tester.test(writes[0], reads[0]) {
        DepTestResult::Dependent(_) => {}
        DepTestResult::Independent => panic!("diagonal reuse exists"),
    }
}

#[test]
fn loads_only_are_not_tested() {
    let analysis =
        analyze_source("func f(n) { L1: for i = 1 to n { x = A[i] + A[i - 1] } }").unwrap();
    let tester = DependenceTester::new(&analysis);
    assert!(tester.all_dependences().is_empty(), "no writes, no deps");
}

#[test]
fn different_arrays_are_independent() {
    let analysis = analyze_source("func f(n) { L1: for i = 1 to n { A[i] = B[i] } }").unwrap();
    let tester = DependenceTester::new(&analysis);
    assert!(tester.all_dependences().is_empty());
}

#[test]
fn unknown_subscripts_conservatively_depend() {
    // Subscript loaded from memory: untestable, reported as dependence
    // with exact = false.
    let (analysis, writes, _) =
        tester_src("func f(n) { L1: for i = 1 to n { t = IDX[i] A[t] = i A[t + 1] = i } }");
    let tester = DependenceTester::new(&analysis);
    match tester.test(writes[0], writes[1]) {
        DepTestResult::Dependent(d) => assert!(!d.exact),
        DepTestResult::Independent => panic!("cannot disprove unknown subscripts"),
    }
}

#[test]
fn scalar_trip_count_bounds_distance() {
    // distance 3 in a 3-iteration loop (trips 1..=3): just out of range.
    let (analysis, writes, reads) =
        tester_src("func f() { L1: for i = 1 to 3 { A[i] = A[i + 3] } }");
    let tester = DependenceTester::new(&analysis);
    assert_eq!(tester.test(writes[0], reads[0]), DepTestResult::Independent);
    assert_eq!(tester.test(reads[0], writes[0]), DepTestResult::Independent);
    // distance 2 in the same loop: in range.
    let (analysis, writes, reads) =
        tester_src("func f() { L1: for i = 1 to 3 { A[i] = A[i + 2] } }");
    let tester = DependenceTester::new(&analysis);
    assert!(matches!(
        tester.test(reads[0], writes[0]),
        DepTestResult::Dependent(_)
    ));
}
