//! Linear dependence equations and the classical decision tests: GCD and
//! Banerjee's inequalities under direction constraints.

use biv_algebra::{Rational, SymPoly};

use crate::direction::DirSet;

/// One dimension's dependence equation:
///
/// ```text
/// Σ_i a[i]·h_i − Σ_i b[i]·h'_i = c
/// ```
///
/// where `h` is the source iteration vector, `h'` the sink iteration
/// vector (both 0-based, per-loop), and `c = sink_consts − src_consts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimEquation {
    /// Source subscript coefficients, outermost loop first.
    pub a: Vec<Rational>,
    /// Sink subscript coefficients.
    pub b: Vec<Rational>,
    /// Constant difference (may be symbolic).
    pub c: SymPoly,
    /// Per-loop iteration upper bounds `U_i` (inclusive, `h ∈ [0, U_i]`);
    /// `None` when unknown.
    pub bounds: Vec<Option<i128>>,
}

impl DimEquation {
    /// Whether both sides ignore every loop.
    pub fn is_ziv(&self) -> bool {
        self.a.iter().all(Rational::is_zero) && self.b.iter().all(Rational::is_zero)
    }

    /// The strong-SIV distance when applicable: exactly one loop has
    /// nonzero coefficients, they are equal on both sides, and `c` is a
    /// constant multiple. Returns `(loop index, distance)` where the
    /// dependence requires `h' − h = distance`.
    pub fn strong_siv_distance(&self) -> Option<(usize, i128)> {
        let mut active: Option<usize> = None;
        for i in 0..self.a.len() {
            if !self.a[i].is_zero() || !self.b[i].is_zero() {
                if active.is_some() {
                    return None;
                }
                active = Some(i);
            }
        }
        let i = active?;
        if self.a[i] != self.b[i] || self.a[i].is_zero() {
            return None;
        }
        // a·h − a·h' = c  ⇒  h' − h = −c/a.
        let c = self.c.constant_value()?;
        let d = (-c).checked_div(&self.a[i]).ok()?;
        if d.is_integer() {
            Some((i, d.as_integer()?))
        } else {
            None
        }
    }
}

/// The GCD test: an integer solution requires
/// `gcd(all coefficients) | c`. Returns `false` when the test *disproves*
/// the dependence (and `true` when a dependence remains possible or the
/// equation is not decidable by GCD).
pub fn gcd_test(eq: &DimEquation) -> bool {
    let Some(c) = eq.c.constant_value() else {
        return true; // symbolic difference: cannot disprove
    };
    // Scale everything to integers.
    let mut denom: i128 = 1;
    for r in eq.a.iter().chain(eq.b.iter()).chain(std::iter::once(&c)) {
        denom = lcm(denom, r.denominator());
    }
    let scale = Rational::from_integer(denom);
    let mut g: i128 = 0;
    for r in eq.a.iter().chain(eq.b.iter()) {
        let v = (*r * scale).numerator();
        g = gcd(g, v);
    }
    let c_scaled = (c * scale).numerator();
    if g == 0 {
        // No induction terms at all: solvable iff c == 0.
        return c_scaled == 0;
    }
    c_scaled % g == 0
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).saturating_mul(b)
}

/// An extended-rational bound: `None` denotes the corresponding infinity.
type Bound = Option<Rational>;

fn add_bound(x: Bound, y: Bound) -> Bound {
    match (x, y) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    }
}

/// Banerjee's inequalities: the range `[min, max]` of
/// `Σ a_i·h_i − b_i·h'_i` subject to the bounds and per-loop direction
/// constraints. `None` endpoints denote ±∞.
pub fn banerjee_range(eq: &DimEquation, dirs: &[DirSet]) -> (Bound, Bound) {
    let mut lo: Bound = Some(Rational::ZERO);
    let mut hi: Bound = Some(Rational::ZERO);
    for (i, &dir) in dirs.iter().enumerate() {
        let (l, h) = loop_contribution(eq.a[i], eq.b[i], eq.bounds[i], dir);
        lo = add_bound(lo, l);
        hi = add_bound(hi, h);
    }
    (lo, hi)
}

/// Whether Banerjee's test proves independence under the direction
/// constraint: `c` constant and outside `[min, max]`.
pub fn banerjee_test(eq: &DimEquation, dirs: &[DirSet]) -> bool {
    let Some(c) = eq.c.constant_value() else {
        return true; // cannot disprove
    };
    let (lo, hi) = banerjee_range(eq, dirs);
    let below = matches!(lo, Some(l) if c < l);
    let above = matches!(hi, Some(h) if c > h);
    !(below || above)
}

/// Range of `a·h − b·h'` for `h, h' ∈ [0, U]` under a direction
/// constraint. Regions are convex polyhedra; linear extrema lie at the
/// vertices (or escape along recession rays when `U` is unknown).
fn loop_contribution(a: Rational, b: Rational, upper: Option<i128>, dir: DirSet) -> (Bound, Bound) {
    // Evaluate over the union of the selected elementary regions.
    let mut lo: Bound = None;
    let mut hi: Bound = None;
    let include = |l: Bound, h: Bound, lo: &mut Bound, hi: &mut Bound, any: &mut bool| {
        if !*any {
            *lo = l;
            *hi = h;
            *any = true;
            return;
        }
        *lo = match (lo.take(), l) {
            (Some(x), Some(y)) => Some(x.min(y)),
            _ => None,
        };
        *hi = match (hi.take(), h) {
            (Some(x), Some(y)) => Some(x.max(y)),
            _ => None,
        };
    };
    let mut any = false;
    let f = |h: Rational, hp: Rational| a * h - b * hp;
    let u = upper.map(Rational::from_integer);
    if dir.eq {
        // h = h' = t ∈ [0, U]: g·t with g = a − b.
        let g = a - b;
        match u {
            Some(u) => {
                let v = g * u;
                include(
                    Some(Rational::ZERO.min(v)),
                    Some(Rational::ZERO.max(v)),
                    &mut lo,
                    &mut hi,
                    &mut any,
                );
            }
            None => {
                let l = if g >= Rational::ZERO {
                    Some(Rational::ZERO)
                } else {
                    None
                };
                let h = if g <= Rational::ZERO {
                    Some(Rational::ZERO)
                } else {
                    None
                };
                include(l, h, &mut lo, &mut hi, &mut any);
            }
        }
    }
    if dir.lt {
        // 0 ≤ h, h + 1 ≤ h' ≤ U: triangle with vertices (0,1), (0,U),
        // (U−1,U); rays (0,1) and (1,1) when unbounded.
        match u {
            Some(u) if u >= Rational::ONE => {
                let vs = [
                    f(Rational::ZERO, Rational::ONE),
                    f(Rational::ZERO, u),
                    f(u - Rational::ONE, u),
                ];
                let vmin = vs.iter().copied().reduce(Rational::min).expect("nonempty");
                let vmax = vs.iter().copied().reduce(Rational::max).expect("nonempty");
                include(Some(vmin), Some(vmax), &mut lo, &mut hi, &mut any);
            }
            Some(_) => {} // U < 1: region empty
            None => {
                let vertex = f(Rational::ZERO, Rational::ONE);
                // Rays: increasing h' only (0,1) → −b; diagonal (1,1) → a−b.
                let ray1 = -b;
                let ray2 = a - b;
                let l = if ray1 >= Rational::ZERO && ray2 >= Rational::ZERO {
                    Some(vertex)
                } else {
                    None
                };
                let h = if ray1 <= Rational::ZERO && ray2 <= Rational::ZERO {
                    Some(vertex)
                } else {
                    None
                };
                include(l, h, &mut lo, &mut hi, &mut any);
            }
        }
    }
    if dir.gt {
        // Mirror of lt: h ≥ h' + 1.
        match u {
            Some(u) if u >= Rational::ONE => {
                let vs = [
                    f(Rational::ONE, Rational::ZERO),
                    f(u, Rational::ZERO),
                    f(u, u - Rational::ONE),
                ];
                let vmin = vs.iter().copied().reduce(Rational::min).expect("nonempty");
                let vmax = vs.iter().copied().reduce(Rational::max).expect("nonempty");
                include(Some(vmin), Some(vmax), &mut lo, &mut hi, &mut any);
            }
            Some(_) => {}
            None => {
                let vertex = f(Rational::ONE, Rational::ZERO);
                let ray1 = a; // (1,0)
                let ray2 = a - b; // (1,1)
                let l = if ray1 >= Rational::ZERO && ray2 >= Rational::ZERO {
                    Some(vertex)
                } else {
                    None
                };
                let h = if ray1 <= Rational::ZERO && ray2 <= Rational::ZERO {
                    Some(vertex)
                } else {
                    None
                };
                include(l, h, &mut lo, &mut hi, &mut any);
            }
        }
    }
    if !any {
        // Empty region: contribute an empty range. Encode as [0 > all]
        // via an impossible pair; callers treat (Some(1), Some(-1))-style
        // inverted ranges as empty, so return an inverted zero range.
        return (Some(Rational::ONE), Some(Rational::MINUS_ONE));
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::from_integer(v)
    }

    fn eq1(a: i128, b: i128, c: i128, u: Option<i128>) -> DimEquation {
        DimEquation {
            a: vec![int(a)],
            b: vec![int(b)],
            c: SymPoly::from_integer(c),
            bounds: vec![u],
        }
    }

    #[test]
    fn gcd_disproves() {
        // 2h − 2h' = 1 has no integer solution.
        assert!(!gcd_test(&eq1(2, 2, 1, None)));
        // 2h − 2h' = 4 may.
        assert!(gcd_test(&eq1(2, 2, 4, None)));
        // 3h − 6h' = 4: gcd 3 does not divide 4.
        assert!(!gcd_test(&eq1(3, 6, 4, None)));
    }

    #[test]
    fn gcd_ziv() {
        assert!(!gcd_test(&eq1(0, 0, 5, None)));
        assert!(gcd_test(&eq1(0, 0, 0, None)));
    }

    #[test]
    fn strong_siv_distance() {
        // c = −1 means h − h' = −1, i.e. the sink runs one iteration
        // later: distance h' − h = −c/a = +1.
        let eq = eq1(1, 1, -1, Some(9));
        assert_eq!(eq.strong_siv_distance(), Some((0, 1)));
        let eq = eq1(1, 1, 1, Some(9));
        assert_eq!(eq.strong_siv_distance(), Some((0, -1)));
        // Fractional distance: no integer solution.
        let eq = eq1(2, 2, 1, Some(9));
        assert_eq!(eq.strong_siv_distance(), None);
        // Different coefficients: not strong SIV.
        let eq = eq1(1, 2, 0, Some(9));
        assert_eq!(eq.strong_siv_distance(), None);
    }

    #[test]
    fn banerjee_bounded_range() {
        // h − h' over [0,9]² with * direction: range [−9, 9].
        let eq = eq1(1, 1, 0, Some(9));
        let (lo, hi) = banerjee_range(&eq, &[DirSet::STAR]);
        assert_eq!(lo, Some(int(-9)));
        assert_eq!(hi, Some(int(9)));
        // Under '<' (h < h'): range [−9, −1].
        let (lo, hi) = banerjee_range(&eq, &[DirSet::LT]);
        assert_eq!(lo, Some(int(-9)));
        assert_eq!(hi, Some(int(-1)));
        // Under '=': exactly 0.
        let (lo, hi) = banerjee_range(&eq, &[DirSet::EQ]);
        assert_eq!(lo, Some(int(0)));
        assert_eq!(hi, Some(int(0)));
    }

    #[test]
    fn banerjee_disproves_direction() {
        // A[h] = A[h+5]: equation h − h' = 5 (c = 5)... under '<'
        // (h < h'), h − h' < 0 < 5 → independent in that direction.
        let eq = eq1(1, 1, 5, Some(100));
        assert!(!banerjee_test(&eq, &[DirSet::LT]));
        assert!(banerjee_test(&eq, &[DirSet::GT]));
    }

    #[test]
    fn banerjee_unbounded() {
        let eq = eq1(1, 1, 5, None);
        // Unbounded loop: '>' keeps it possible, '<' disproves.
        assert!(banerjee_test(&eq, &[DirSet::GT]));
        assert!(!banerjee_test(&eq, &[DirSet::LT]));
    }

    #[test]
    fn banerjee_symbolic_cannot_disprove() {
        let eq = DimEquation {
            a: vec![int(1)],
            b: vec![int(1)],
            c: SymPoly::symbol(biv_algebra::SymId(3)),
            bounds: vec![Some(10)],
        };
        assert!(banerjee_test(&eq, &[DirSet::STAR]));
    }

    #[test]
    fn empty_region_disproves() {
        // U = 0 (single iteration) with '<' direction: region empty.
        let eq = eq1(1, 1, 0, Some(0));
        assert!(!banerjee_test(&eq, &[DirSet::LT]));
        assert!(banerjee_test(&eq, &[DirSet::EQ]));
    }
}
