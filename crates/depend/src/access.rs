//! Array access collection from SSA form.

use biv_ir::{Array, Block};
use biv_ssa::{Operand, SsaFunction, SsaInst, Value, ValueDef};

/// One array reference (a load or a store) with its position in the
/// function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRef {
    /// The array accessed.
    pub array: Array,
    /// The block containing the access.
    pub block: Block,
    /// Position of the access within the block body.
    pub position: usize,
    /// One subscript operand per dimension.
    pub index: Vec<Operand>,
    /// Whether this is a store.
    pub is_write: bool,
    /// For loads, the value produced.
    pub value: Option<Value>,
}

/// Collects every array load and store in the function, in block order.
pub fn collect_accesses(ssa: &SsaFunction) -> Vec<AccessRef> {
    let mut out = Vec::new();
    for block in ssa.block_ids() {
        let data = ssa.block(block);
        for (position, inst) in data.body.iter().enumerate() {
            match inst {
                SsaInst::Def(v) => {
                    if let ValueDef::Load { array, index } = ssa.def(*v) {
                        out.push(AccessRef {
                            array: *array,
                            block,
                            position,
                            index: index.clone(),
                            is_write: false,
                            value: Some(*v),
                        });
                    }
                }
                SsaInst::Store { array, index, .. } => {
                    out.push(AccessRef {
                        array: *array,
                        block,
                        position,
                        index: index.clone(),
                        is_write: true,
                        value: None,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::parser::parse_program;
    use biv_ssa::SsaFunction;

    #[test]
    fn finds_loads_and_stores() {
        let program =
            parse_program("func f(n) { for i = 1 to n { A[i] = A[i - 1] + B[i, 2] } }").unwrap();
        let ssa = SsaFunction::build(&program.functions[0]);
        let accesses = collect_accesses(&ssa);
        assert_eq!(accesses.len(), 3);
        let writes: Vec<_> = accesses.iter().filter(|a| a.is_write).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].index.len(), 1);
        let two_dim: Vec<_> = accesses.iter().filter(|a| a.index.len() == 2).collect();
        assert_eq!(two_dim.len(), 1);
        assert!(!two_dim[0].is_write);
    }
}
