//! Loop-transformation legality from direction vectors.
//!
//! The paper's §6.1 example: normalizing L23/L24 turns the distance
//! vector (1, 0) into (1, −1), and "some important transformations (such
//! as loop interchanging) are prevented by this case". These helpers
//! implement the classical legality rules over the tester's direction
//! vectors.

use crate::direction::{DirSet, DirectionVector};
use crate::tester::Dependence;

/// Whether interchanging the loops at `outer` and `inner` (positions in
/// the common nest) preserves every dependence.
///
/// Interchange is illegal when some dependence has direction `(<, >)` in
/// those positions — swapping would reverse its source and sink.
pub fn interchange_legal(deps: &[Dependence], outer: usize, inner: usize) -> bool {
    deps.iter().all(|d| {
        let dirs = &d.directions.0;
        let (Some(&o), Some(&i)) = (dirs.get(outer), dirs.get(inner)) else {
            return true; // dependence not carried by both loops
        };
        // Illegal iff a (<, >) component is possible.
        !(o.lt && i.gt)
    })
}

/// [`interchange_legal`] restricted to the dependences of one nest: only
/// dependences whose source *and* sink accesses satisfy `in_nest` vote.
///
/// The tester computes one global access list per function, so a
/// transformation pass interrogating a single loop nest must ignore
/// dependences between accesses elsewhere — their direction-vector
/// positions describe *their* common nest, not this one.
pub fn interchange_legal_in_nest(
    deps: &[Dependence],
    outer: usize,
    inner: usize,
    mut in_nest: impl FnMut(usize) -> bool,
) -> bool {
    let relevant: Vec<Dependence> = deps
        .iter()
        .filter(|d| in_nest(d.src) && in_nest(d.dst))
        .cloned()
        .collect();
    interchange_legal(&relevant, outer, inner)
}

/// Whether a loop at position `pos` carries no dependence (every
/// dependence is `=` there, or enforced by an outer `<`): such a loop can
/// run in parallel.
pub fn parallelizable(deps: &[Dependence], pos: usize) -> bool {
    deps.iter().all(|d| {
        let dirs = &d.directions.0;
        // Carried by an outer loop: some earlier position is strictly <
        // and cannot be =.
        let satisfied_outside = dirs[..pos.min(dirs.len())]
            .iter()
            .any(|s| s.lt && !s.eq && !s.gt);
        if satisfied_outside {
            return true;
        }
        match dirs.get(pos) {
            Some(&s) => s == DirSet::EQ,
            None => true,
        }
    })
}

/// Merges the direction vectors of many dependences into one summary
/// vector (elementwise union) — the coarse form compilers print.
pub fn summarize(deps: &[Dependence], nest_len: usize) -> DirectionVector {
    let mut out = vec![
        DirSet {
            lt: false,
            eq: false,
            gt: false
        };
        nest_len
    ];
    for d in deps {
        for (i, s) in d.directions.0.iter().enumerate() {
            if i < nest_len {
                out[i] = out[i].union(*s);
            }
        }
    }
    DirectionVector(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direction::DepKind;

    fn dep(dirs: Vec<DirSet>) -> Dependence {
        Dependence {
            src: 0,
            dst: 1,
            kind: DepKind::Flow,
            directions: DirectionVector(dirs),
            distances: vec![],
            wraparound_after: 0,
            periodic: None,
            exact: true,
        }
    }

    #[test]
    fn lt_gt_blocks_interchange() {
        let deps = vec![dep(vec![DirSet::LT, DirSet::GT])];
        assert!(!interchange_legal(&deps, 0, 1));
        let deps = vec![dep(vec![DirSet::LT, DirSet::EQ])];
        assert!(interchange_legal(&deps, 0, 1));
        let deps = vec![dep(vec![DirSet::LT, DirSet::LT])];
        assert!(interchange_legal(&deps, 0, 1));
    }

    #[test]
    fn parallel_inner_loop() {
        // (<, =): the outer loop carries it; inner is parallel.
        let deps = vec![dep(vec![DirSet::LT, DirSet::EQ])];
        assert!(parallelizable(&deps, 1));
        assert!(!parallelizable(&deps, 0));
        // (=, <): inner carries.
        let deps = vec![dep(vec![DirSet::EQ, DirSet::LT])];
        assert!(!parallelizable(&deps, 1));
        assert!(parallelizable(&deps, 0));
    }

    #[test]
    fn summary_unions() {
        let deps = vec![
            dep(vec![DirSet::LT, DirSet::EQ]),
            dep(vec![DirSet::EQ, DirSet::GT]),
        ];
        let s = summarize(&deps, 2);
        assert_eq!(s.to_string(), "(<=, >=)");
    }
}
