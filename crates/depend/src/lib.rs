//! Data dependence testing on top of the *Beyond Induction Variables*
//! classification (§6 of the paper).
//!
//! The classifier labels every subscript expression as an induction
//! expression, a periodic expression, a monotonic expression, etc.; this
//! crate turns pairs of array references into **dependence equations** and
//! decides them:
//!
//! - linear induction subscripts go through the classical machinery —
//!   ZIV, strong/weak SIV, the GCD test, and Banerjee's inequalities with
//!   hierarchical direction-vector refinement;
//! - **periodic** subscripts translate an `=` solution in family space
//!   into a `≠` (or congruence-constrained) direction in iteration space —
//!   exactly what the relaxation codes of §4.2 need;
//! - **monotonic** subscripts translate into `=` (strict, same value) or
//!   `≤` directions (Figure 10);
//! - **wrap-around** subscripts are solved through their steady-state
//!   induction variable with the dependence flagged as holding only after
//!   the first `k` iterations.
//!
//! # Example
//!
//! ```
//! use biv_core::analyze_source;
//! use biv_depend::{DependenceTester, DepKind};
//!
//! let analysis = analyze_source(
//!     r#"
//!     func f(n) {
//!         L1: for i = 1 to n {
//!             A[i] = A[i - 1] + 1
//!         }
//!     }
//!     "#,
//! )?;
//! let tester = DependenceTester::new(&analysis);
//! let deps = tester.all_dependences();
//! // One flow dependence with distance 1.
//! let flow: Vec<_> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
//! assert_eq!(flow.len(), 1);
//! assert_eq!(flow[0].distances, vec![Some(1)]);
//! # Ok::<(), biv_core::AnalyzeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod affine;
mod direction;
mod equation;
mod interchange;
mod tester;

pub use access::{collect_accesses, AccessRef};
pub use affine::{affine_subscript, AffineSubscript};
pub use direction::{DepKind, DirSet, DirectionVector};
pub use equation::{banerjee_range, gcd_test, DimEquation};
pub use interchange::{interchange_legal, interchange_legal_in_nest, parallelizable, summarize};
pub use tester::{DepTestResult, Dependence, DependenceTester, PeriodicConstraint};
