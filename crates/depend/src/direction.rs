//! Direction vectors and dependence kinds.

use std::fmt;

/// The kind of a dependence between two references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write then read (true dependence).
    Flow,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
    /// Read then read.
    Input,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Flow => write!(f, "flow"),
            DepKind::Anti => write!(f, "anti"),
            DepKind::Output => write!(f, "output"),
            DepKind::Input => write!(f, "input"),
        }
    }
}

/// A set of possible direction relations `{<, =, >}` between the source
/// and sink iterations of one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirSet {
    /// Source iteration strictly before sink (`<`).
    pub lt: bool,
    /// Same iteration (`=`).
    pub eq: bool,
    /// Source iteration strictly after sink (`>`).
    pub gt: bool,
}

impl DirSet {
    /// All three directions possible (`*`).
    pub const STAR: DirSet = DirSet {
        lt: true,
        eq: true,
        gt: true,
    };
    /// Only `<`.
    pub const LT: DirSet = DirSet {
        lt: true,
        eq: false,
        gt: false,
    };
    /// Only `=`.
    pub const EQ: DirSet = DirSet {
        lt: false,
        eq: true,
        gt: false,
    };
    /// Only `>`.
    pub const GT: DirSet = DirSet {
        lt: false,
        eq: false,
        gt: true,
    };
    /// `≤`.
    pub const LE: DirSet = DirSet {
        lt: true,
        eq: true,
        gt: false,
    };
    /// `≠`.
    pub const NE: DirSet = DirSet {
        lt: true,
        eq: false,
        gt: true,
    };

    /// Whether no direction remains (the dependence is disproved).
    pub fn is_empty(&self) -> bool {
        !self.lt && !self.eq && !self.gt
    }

    /// Set union.
    pub fn union(self, other: DirSet) -> DirSet {
        DirSet {
            lt: self.lt || other.lt,
            eq: self.eq || other.eq,
            gt: self.gt || other.gt,
        }
    }

    /// Set intersection.
    pub fn intersect(self, other: DirSet) -> DirSet {
        DirSet {
            lt: self.lt && other.lt,
            eq: self.eq && other.eq,
            gt: self.gt && other.gt,
        }
    }
}

impl fmt::Display for DirSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.lt, self.eq, self.gt) {
            (true, true, true) => write!(f, "*"),
            (true, false, false) => write!(f, "<"),
            (false, true, false) => write!(f, "="),
            (false, false, true) => write!(f, ">"),
            (true, true, false) => write!(f, "<="),
            (false, true, true) => write!(f, ">="),
            (true, false, true) => write!(f, "!="),
            (false, false, false) => write!(f, "empty"),
        }
    }
}

/// A direction vector: one [`DirSet`] per common loop, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectionVector(pub Vec<DirSet>);

impl DirectionVector {
    /// The all-`*` vector over `n` loops.
    pub fn star(n: usize) -> DirectionVector {
        DirectionVector(vec![DirSet::STAR; n])
    }

    /// Whether every element admits at least one direction.
    pub fn is_feasible(&self) -> bool {
        self.0.iter().all(|d| !d.is_empty())
    }

    /// Whether some refinement of this vector is lexicographically
    /// non-negative (the source does not execute after the sink), with
    /// `eq_ok` controlling whether the all-`=` refinement counts.
    pub fn has_forward_refinement(&self, eq_ok: bool) -> bool {
        // A vector is forward iff its first non-`=` component can be `<`,
        // or all components can be `=` (and eq_ok).
        fn helper(dirs: &[DirSet], eq_ok: bool) -> bool {
            match dirs.split_first() {
                None => eq_ok,
                Some((d, rest)) => {
                    if d.lt {
                        return true;
                    }
                    d.eq && helper(rest, eq_ok)
                }
            }
        }
        helper(&self.0, eq_ok)
    }
}

impl fmt::Display for DirectionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(DirSet::STAR.to_string(), "*");
        assert_eq!(DirSet::LE.to_string(), "<=");
        assert_eq!(DirSet::NE.to_string(), "!=");
        assert_eq!(
            DirectionVector(vec![DirSet::LT, DirSet::EQ]).to_string(),
            "(<, =)"
        );
    }

    #[test]
    fn set_algebra() {
        assert!(DirSet::LT.intersect(DirSet::GT).is_empty());
        assert_eq!(DirSet::LT.union(DirSet::EQ), DirSet::LE);
        assert_eq!(DirSet::STAR.intersect(DirSet::NE), DirSet::NE);
    }

    #[test]
    fn forward_refinement() {
        // (<, anything) is forward.
        assert!(DirectionVector(vec![DirSet::LT, DirSet::GT]).has_forward_refinement(false));
        // (=, >) has no forward refinement without an all-eq escape.
        assert!(!DirectionVector(vec![DirSet::EQ, DirSet::GT]).has_forward_refinement(true));
        // (=, =) is forward only when eq_ok.
        assert!(DirectionVector(vec![DirSet::EQ, DirSet::EQ]).has_forward_refinement(true));
        assert!(!DirectionVector(vec![DirSet::EQ, DirSet::EQ]).has_forward_refinement(false));
    }
}
