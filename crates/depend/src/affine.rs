//! Affine subscript extraction: rewrite a subscript operand as
//! `consts + Σ coeff_i · h_i` over the counters of a loop nest, using the
//! classifier's closed forms. This is where the implicit normalization of
//! §6.1 happens — every loop counter starts at 0 with step 1.

use biv_algebra::{Rational, SymId, SymPoly};
use biv_core::{sym_of_value, Analysis, Class};
use biv_ir::loops::Loop;
use biv_ssa::Operand;

/// Reserved symbol space for loop counters during extraction.
const COUNTER_BASE: u32 = u32::MAX - 64;

fn counter_sym(pos: usize) -> SymId {
    SymId(COUNTER_BASE + u32::try_from(pos).expect("nest depth fits"))
}

fn is_counter(sym: SymId) -> Option<usize> {
    if sym.0 >= COUNTER_BASE {
        Some((sym.0 - COUNTER_BASE) as usize)
    } else {
        None
    }
}

/// An affine subscript over a loop nest (outermost first):
/// `value = consts + Σ coeffs[i] · h_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineSubscript {
    /// Nest-invariant symbolic part.
    pub consts: SymPoly,
    /// Rational coefficient per nest loop (outermost first).
    pub coeffs: Vec<Rational>,
    /// When nonzero, the affine form only holds from iteration
    /// `wraparound_after` of the innermost classified loop onward (§4.1).
    pub wraparound_after: u32,
}

impl AffineSubscript {
    /// Whether the subscript ignores every nest loop (ZIV).
    pub fn is_ziv(&self) -> bool {
        self.coeffs.iter().all(Rational::is_zero)
    }
}

/// Extracts the affine form of `op` over `nest` (outermost first).
/// Returns `None` when any contributing variable is not a linear induction
/// expression of the nest (periodic, monotonic, nonlinear, or unknown).
pub fn affine_subscript(
    analysis: &Analysis,
    op: &Operand,
    nest: &[Loop],
) -> Option<AffineSubscript> {
    let ssa = analysis.ssa();
    let resolved = biv_core::resolve_copies(ssa, *op);
    let mut poly = match resolved {
        Operand::Const(c) => SymPoly::from_integer(i128::from(c)),
        Operand::Value(v) => SymPoly::symbol(sym_of_value(v)),
    };
    let mut wraparound_after = 0u32;
    // Substitute inner classifications first; their initial values refer
    // to outer-loop values which later rounds expand.
    for (pos, &l) in nest.iter().enumerate().rev() {
        // Iterate until no symbol classified in `l` remains (initial
        // values can chain within one loop level, but substitution always
        // replaces a symbol with strictly-older symbols, so this
        // terminates).
        for _ in 0..16 {
            let mut changed = false;
            for sym in poly.symbols() {
                if is_counter(sym).is_some() {
                    continue;
                }
                let v = biv_core::value_of_sym(sym);
                let Some(class) = analysis.class_in(l, v) else {
                    continue;
                };
                let replacement = match class {
                    Class::Invariant(p) => p.clone(),
                    Class::Induction(cf) if cf.is_linear() => {
                        let step = cf.coeffs[1].clone();
                        let counter = SymPoly::symbol(counter_sym(pos));
                        cf.coeffs[0]
                            .checked_add(&step.checked_mul(&counter).ok()?)
                            .ok()?
                    }
                    Class::WrapAround { order, steady, .. } => match steady.as_ref() {
                        // Steady state: value(h) = steady(h - order).
                        Class::Induction(cf) if cf.is_linear() => {
                            wraparound_after = wraparound_after.max(*order);
                            let step = cf.coeffs[1].clone();
                            let counter = SymPoly::symbol(counter_sym(pos));
                            let shift = step
                                .checked_scale(&Rational::from_integer(i128::from(*order)))
                                .ok()?;
                            cf.coeffs[0]
                                .checked_sub(&shift)
                                .ok()?
                                .checked_add(&step.checked_mul(&counter).ok()?)
                                .ok()?
                        }
                        _ => return None,
                    },
                    _ => return None,
                };
                // Skip identity substitutions (an invariant symbol maps to
                // itself when it has no better expression).
                if replacement == SymPoly::symbol(sym) {
                    continue;
                }
                poly = poly
                    .substitute(|s| {
                        if s == sym {
                            Some(replacement.clone())
                        } else {
                            None
                        }
                    })
                    .ok()?;
                changed = true;
            }
            if !changed {
                break;
            }
        }
    }
    // Extract coefficients: monomials must be counter-free or exactly
    // `coeff · counter_i`.
    let mut coeffs = vec![Rational::ZERO; nest.len()];
    let mut consts = SymPoly::zero();
    for (monomial, coeff) in poly.iter() {
        let counters: Vec<(usize, u32)> = monomial
            .factors()
            .iter()
            .filter_map(|&(s, p)| is_counter(s).map(|i| (i, p)))
            .collect();
        match counters.as_slice() {
            [] => {
                let term = SymPoly::constant(*coeff);
                let mut term = term;
                for &(s, p) in monomial.factors() {
                    for _ in 0..p {
                        term = term.checked_mul(&SymPoly::symbol(s)).ok()?;
                    }
                }
                consts = consts.checked_add(&term).ok()?;
            }
            [(i, 1)] if monomial.factors().len() == 1 => {
                coeffs[*i] = coeffs[*i].checked_add(coeff).ok()?;
            }
            _ => return None, // nonlinear in counters or symbolic coeff
        }
    }
    // Every residual symbol must be invariant with respect to the whole
    // nest (defined outside the outermost loop).
    if let Some(&outermost) = nest.first() {
        let forest = analysis.forest();
        for sym in consts.symbols() {
            if is_counter(sym).is_some() {
                return None;
            }
            let v = biv_core::value_of_sym(sym);
            if forest.contains(outermost, ssa.def_block(v)) {
                return None;
            }
        }
    }
    Some(AffineSubscript {
        consts,
        coeffs,
        wraparound_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_core::analyze_source;

    #[test]
    fn simple_loop_index() {
        let analysis =
            analyze_source("func f(n) { L1: for i = 1 to n { A[i] = A[i - 1] } }").unwrap();
        let tester_accesses = crate::access::collect_accesses(analysis.ssa());
        let l1 = analysis.loop_by_label("L1").unwrap();
        let store = tester_accesses.iter().find(|a| a.is_write).unwrap();
        let load = tester_accesses.iter().find(|a| !a.is_write).unwrap();
        let s = affine_subscript(&analysis, &store.index[0], &[l1]).unwrap();
        let l = affine_subscript(&analysis, &load.index[0], &[l1]).unwrap();
        // store: 1 + h; load: h.
        assert_eq!(s.coeffs, vec![Rational::ONE]);
        assert_eq!(s.consts.constant_value().unwrap(), Rational::ONE);
        assert_eq!(l.coeffs, vec![Rational::ONE]);
        assert_eq!(l.consts.constant_value().unwrap(), Rational::ZERO);
    }

    #[test]
    fn two_level_nest() {
        let analysis = analyze_source(
            r#"
            func f(n) {
                L1: for i = 1 to n {
                    L2: for j = 1 to n {
                        A[i, j] = A[i - 1, j] + 1
                    }
                }
            }
            "#,
        )
        .unwrap();
        let accesses = crate::access::collect_accesses(analysis.ssa());
        let l1 = analysis.loop_by_label("L1").unwrap();
        let l2 = analysis.loop_by_label("L2").unwrap();
        let store = accesses.iter().find(|a| a.is_write).unwrap();
        let s0 = affine_subscript(&analysis, &store.index[0], &[l1, l2]).unwrap();
        // First subscript is i = 1 + h1 (outer counter only).
        assert_eq!(s0.coeffs, vec![Rational::ONE, Rational::ZERO]);
        let s1 = affine_subscript(&analysis, &store.index[1], &[l1, l2]).unwrap();
        assert_eq!(s1.coeffs, vec![Rational::ZERO, Rational::ONE]);
    }

    #[test]
    fn scaled_subscript() {
        let analysis =
            analyze_source("func f(n) { L1: for i = 1 to n { A[2 * i + 3] = i } }").unwrap();
        let accesses = crate::access::collect_accesses(analysis.ssa());
        let l1 = analysis.loop_by_label("L1").unwrap();
        let store = accesses.iter().find(|a| a.is_write).unwrap();
        let s = affine_subscript(&analysis, &store.index[0], &[l1]).unwrap();
        assert_eq!(s.coeffs, vec![Rational::from_integer(2)]);
        // 2·(1 + h) + 3 = 5 + 2h
        assert_eq!(
            s.consts.constant_value().unwrap(),
            Rational::from_integer(5)
        );
    }

    #[test]
    fn monotonic_subscript_rejected() {
        let analysis = analyze_source(
            r#"
            func f(n) {
                k = 0
                L1: for i = 1 to n {
                    t = A[i]
                    if t > 0 { k = k + 1 B[k] = t }
                }
            }
            "#,
        )
        .unwrap();
        let accesses = crate::access::collect_accesses(analysis.ssa());
        let l1 = analysis.loop_by_label("L1").unwrap();
        let store = accesses.iter().find(|a| a.is_write).unwrap();
        assert!(affine_subscript(&analysis, &store.index[0], &[l1]).is_none());
    }
}
