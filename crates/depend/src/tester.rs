//! The high-level dependence tester: special-cases the new variable
//! classes (§6), falls back to the affine machinery.

use biv_algebra::{Rational, SymPoly};
use biv_core::{Analysis, Class, TripCount};
use biv_ir::loops::Loop;
use biv_ir::Block;
use biv_ssa::Operand;

use crate::access::{collect_accesses, AccessRef};
use crate::affine::affine_subscript;
use crate::direction::{DepKind, DirSet, DirectionVector};
use crate::equation::{banerjee_test, gcd_test, DimEquation};

/// A congruence constraint from periodic subscripts: the sink iteration
/// minus the source iteration must be ≡ `residue` (mod `period`) in the
/// innermost common loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicConstraint {
    /// The family period.
    pub period: usize,
    /// Required `(h_sink − h_src) mod period`.
    pub residue: usize,
}

/// A dependence that could not be disproved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Index of the source access (executes first).
    pub src: usize,
    /// Index of the sink access.
    pub dst: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// Per-common-loop direction summary, outermost first.
    pub directions: DirectionVector,
    /// Per-loop distances when exactly known.
    pub distances: Vec<Option<i128>>,
    /// Nonzero when the relation only holds after the first `k`
    /// iterations (wrap-around subscripts, §4.1/§6).
    pub wraparound_after: u32,
    /// Congruence constraint from periodic subscripts (§4.2/§6).
    pub periodic: Option<PeriodicConstraint>,
    /// `false` when the tester gave up and conservatively assumed a
    /// dependence.
    pub exact: bool,
}

/// Result of testing one ordered pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepTestResult {
    /// Dependence disproved.
    Independent,
    /// Dependence possible (or proved).
    Dependent(Dependence),
}

/// Tests array reference pairs using the classification in an
/// [`Analysis`].
#[derive(Debug)]
pub struct DependenceTester<'a> {
    analysis: &'a Analysis,
    accesses: Vec<AccessRef>,
    dom: biv_ir::dom::DomTree,
}

impl<'a> DependenceTester<'a> {
    /// Collects the accesses of the analyzed function.
    pub fn new(analysis: &'a Analysis) -> DependenceTester<'a> {
        let accesses = collect_accesses(analysis.ssa());
        let dom = biv_ir::dom::DomTree::compute(analysis.ssa().func());
        DependenceTester {
            analysis,
            accesses,
            dom,
        }
    }

    /// The collected accesses.
    pub fn accesses(&self) -> &[AccessRef] {
        &self.accesses
    }

    /// Tests every ordered pair touching the same array with at least one
    /// write, returning the dependences that survive.
    pub fn all_dependences(&self) -> Vec<Dependence> {
        let mut out = Vec::new();
        for src in 0..self.accesses.len() {
            for dst in 0..self.accesses.len() {
                let a = &self.accesses[src];
                let b = &self.accesses[dst];
                if a.array != b.array || (!a.is_write && !b.is_write) {
                    continue;
                }
                if src == dst && !a.is_write {
                    continue;
                }
                if let DepTestResult::Dependent(d) = self.test(src, dst) {
                    out.push(d);
                }
            }
        }
        out
    }

    /// Tests the ordered pair `src → dst` (source executing first).
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn test(&self, src: usize, dst: usize) -> DepTestResult {
        let a = &self.accesses[src];
        let b = &self.accesses[dst];
        assert_eq!(a.array, b.array, "accesses must touch the same array");
        let kind = match (a.is_write, b.is_write) {
            (true, false) => DepKind::Flow,
            (false, true) => DepKind::Anti,
            (true, true) => DepKind::Output,
            (false, false) => DepKind::Input,
        };
        let nest = self.common_nest(a.block, b.block);
        // Same-iteration ordering: can the dependence hold with all-`=`
        // directions? Only if src executes before dst within an iteration.
        let eq_ok = self.executes_before(a, b);
        let m = nest.len();
        let mut dirs = vec![DirSet::STAR; m];
        let mut distances: Vec<Option<i128>> = vec![None; m];
        let mut wraparound_after = 0u32;
        let mut periodic: Option<PeriodicConstraint> = None;
        let mut exact = true;
        for dim in 0..a.index.len().min(b.index.len()) {
            match self.test_dimension(a, b, dim, &nest) {
                DimOutcome::Independent => return DepTestResult::Independent,
                DimOutcome::Constrain {
                    loop_dirs,
                    distance,
                    wrap,
                    periodic: p,
                } => {
                    for (i, d) in loop_dirs.into_iter().enumerate() {
                        dirs[i] = dirs[i].intersect(d);
                        if dirs[i].is_empty() {
                            return DepTestResult::Independent;
                        }
                    }
                    if let Some((idx, dist)) = distance {
                        match distances[idx] {
                            None => distances[idx] = Some(dist),
                            Some(prev) if prev != dist => return DepTestResult::Independent,
                            Some(_) => {}
                        }
                    }
                    wraparound_after = wraparound_after.max(wrap);
                    if let Some(p) = p {
                        periodic = Some(p);
                    }
                }
                DimOutcome::Unknown => exact = false,
            }
        }
        // Direction-vector refinement with Banerjee under each candidate
        // leaf is folded into test_dimension; here apply the execution
        // order filter.
        let vector = DirectionVector(dirs);
        if !vector.has_forward_refinement(eq_ok) {
            return DepTestResult::Independent;
        }
        DepTestResult::Dependent(Dependence {
            src,
            dst,
            kind,
            directions: vector,
            distances,
            wraparound_after,
            periodic,
            exact,
        })
    }

    /// The loops containing both blocks, outermost first.
    fn common_nest(&self, a: Block, b: Block) -> Vec<Loop> {
        let forest = self.analysis.forest();
        let mut nest: Vec<Loop> = Vec::new();
        let mut cur = forest.innermost(a);
        while let Some(l) = cur {
            if forest.contains(l, b) {
                nest.push(l);
            }
            cur = forest.data(l).parent;
        }
        nest.reverse();
        nest
    }

    /// Whether `a` executes before `b` within one iteration of their
    /// innermost common context (conservatively by block order).
    fn executes_before(&self, a: &AccessRef, b: &AccessRef) -> bool {
        if a.block == b.block {
            return a.position < b.position;
        }
        if self.dom.dominates(a.block, b.block) {
            return true;
        }
        if self.dom.dominates(b.block, a.block) {
            return false;
        }
        // Different branches: conservatively allow.
        true
    }

    fn trip_bound(&self, l: Loop) -> Option<i128> {
        match &self.analysis.info(l).trip_count {
            TripCount::Finite(p) => {
                let c = p.constant_value()?;
                let tc = c.as_integer()?;
                if tc <= 0 {
                    Some(0)
                } else {
                    Some(tc - 1)
                }
            }
            TripCount::Zero => Some(0),
            _ => None,
        }
    }

    fn test_dimension(
        &self,
        a: &AccessRef,
        b: &AccessRef,
        dim: usize,
        nest: &[Loop],
    ) -> DimOutcome {
        // Special classes first: periodic, then monotonic (checked on the
        // raw subscript values in the innermost common loop).
        if let Some(out) = self.periodic_case(a, b, dim, nest) {
            return out;
        }
        if let Some(out) = self.monotonic_case(a, b, dim, nest) {
            return out;
        }
        let (Some(sa), Some(sb)) = (
            affine_subscript(self.analysis, &a.index[dim], nest),
            affine_subscript(self.analysis, &b.index[dim], nest),
        ) else {
            return DimOutcome::Unknown;
        };
        let c = match sb.consts.checked_sub(&sa.consts) {
            Ok(c) => c,
            Err(_) => return DimOutcome::Unknown,
        };
        let eq = DimEquation {
            a: sa.coeffs.clone(),
            b: sb.coeffs.clone(),
            c,
            bounds: nest.iter().map(|&l| self.trip_bound(l)).collect(),
        };
        // ZIV.
        if eq.is_ziv() {
            return match eq.c.constant_value() {
                Some(c) if !c.is_zero() => DimOutcome::Independent,
                Some(_) => DimOutcome::Constrain {
                    loop_dirs: vec![DirSet::STAR; nest.len()],
                    distance: None,
                    wrap: sa.wraparound_after.max(sb.wraparound_after),
                    periodic: None,
                },
                None => DimOutcome::Unknown,
            };
        }
        // GCD.
        if !gcd_test(&eq) {
            return DimOutcome::Independent;
        }
        // Direction refinement: per loop, find which of {<,=,>} survive
        // Banerjee with the other loops unconstrained.
        let m = nest.len();
        let mut loop_dirs = Vec::with_capacity(m);
        for i in 0..m {
            let survives = |single: DirSet| {
                let mut dirs = vec![DirSet::STAR; m];
                dirs[i] = single;
                banerjee_test(&eq, &dirs)
            };
            let set = DirSet {
                lt: survives(DirSet::LT),
                eq: survives(DirSet::EQ),
                gt: survives(DirSet::GT),
            };
            if set.is_empty() {
                return DimOutcome::Independent;
            }
            loop_dirs.push(set);
        }
        // Whole-vector check with the refined sets.
        if !banerjee_test(&eq, &loop_dirs) {
            return DimOutcome::Independent;
        }
        // The equation is a·h − b·h' = c with a == b, so the helper's
        // −c/a is exactly the src-to-sink distance h' − h.
        let distance = eq.strong_siv_distance();
        // Distance implies exact direction in that loop.
        if let Some((i, d)) = distance {
            let dir = match d.cmp(&0) {
                std::cmp::Ordering::Greater => DirSet::LT,
                std::cmp::Ordering::Equal => DirSet::EQ,
                std::cmp::Ordering::Less => DirSet::GT,
            };
            loop_dirs[i] = loop_dirs[i].intersect(dir);
            if loop_dirs[i].is_empty() {
                return DimOutcome::Independent;
            }
        }
        DimOutcome::Constrain {
            loop_dirs,
            distance,
            wrap: sa.wraparound_after.max(sb.wraparound_after),
            periodic: None,
        }
    }

    /// Subscripts in the same periodic family (§6, loop L22): an `=` in
    /// family space becomes a congruence on iterations; distinct phases
    /// exclude the `=` direction entirely.
    fn periodic_case(
        &self,
        a: &AccessRef,
        b: &AccessRef,
        dim: usize,
        nest: &[Loop],
    ) -> Option<DimOutcome> {
        let innermost = *nest.last()?;
        let pa = self.subscript_class(&a.index[dim], innermost)?;
        let pb = self.subscript_class(&b.index[dim], innermost)?;
        let (Class::Periodic(pa), Class::Periodic(pb)) = (pa, pb) else {
            return None;
        };
        if pa.loop_id != pb.loop_id || pa.values != pb.values {
            return None; // different families: cannot conclude
        }
        let period = pa.period();
        // Equality requires (phase_a + h_src) ≡ (phase_b + h_sink) mod P,
        // assuming the family's initial values are pairwise distinct. When
        // initials are constants, verify distinctness; symbolic initials
        // are assumed distinct (the paper makes the same assumption
        // explicit).
        let consts: Vec<Option<Rational>> = pa.values.iter().map(SymPoly::constant_value).collect();
        if consts.iter().all(Option::is_some) {
            let mut seen = std::collections::HashSet::new();
            for c in consts.into_iter().flatten() {
                if !seen.insert(c) {
                    return None; // repeated values: family degenerate
                }
            }
        }
        // The constraint binds the iterations of the loop the family
        // rotates in (which may be an outer loop of the innermost common
        // one).
        let rotating_idx = nest.iter().position(|&l| l == pa.loop_id)?;
        let mut loop_dirs = vec![DirSet::STAR; nest.len()];
        // Equality needs phase_a + h_src ≡ phase_b + h_sink (mod P), i.e.
        // h_sink − h_src ≡ phase_a − phase_b (mod P).
        let need = (pa.phase + period - pb.phase) % period;
        if need != 0 {
            loop_dirs[rotating_idx] = DirSet::NE; // the paper's ≠
        }
        Some(DimOutcome::Constrain {
            loop_dirs,
            distance: None,
            wrap: 0,
            periodic: Some(PeriodicConstraint {
                period,
                residue: need,
            }),
        })
    }

    /// Monotonic subscripts (§6, Figure 10).
    fn monotonic_case(
        &self,
        a: &AccessRef,
        b: &AccessRef,
        dim: usize,
        nest: &[Loop],
    ) -> Option<DimOutcome> {
        let innermost = *nest.last()?;
        let ca = self.subscript_class(&a.index[dim], innermost)?;
        let cb = self.subscript_class(&b.index[dim], innermost)?;
        let (Class::Monotonic(ma), Class::Monotonic(mb)) = (ca, cb) else {
            return None;
        };
        if ma.family.is_none() || ma.family != mb.family || ma.loop_id != mb.loop_id {
            return None;
        }
        let same_value = {
            let ra = biv_core::resolve_copies(self.analysis.ssa(), a.index[dim]);
            let rb = biv_core::resolve_copies(self.analysis.ssa(), b.index[dim]);
            ra == rb
        };
        let mut loop_dirs = vec![DirSet::STAR; nest.len()];
        // Constrain the loop the monotonic family advances in.
        let idx = nest.iter().position(|&l| l == ma.loop_id)?;
        loop_dirs[idx] = if same_value && ma.strict && mb.strict {
            // Strictly monotonic value equal to itself only in the same
            // iteration: direction (=) — the paper's array B case.
            DirSet::EQ
        } else {
            // Equal values may recur while the variable is not
            // incremented: (≤) for the forward pair — array F's flow
            // dependence (≤) and anti dependence (<) both refine from
            // this set by the execution-order filter.
            DirSet::LE
        };
        Some(DimOutcome::Constrain {
            loop_dirs,
            distance: None,
            wrap: 0,
            periodic: None,
        })
    }

    /// Classification of a subscript operand in `l` (through copies).
    fn subscript_class(&self, op: &Operand, l: Loop) -> Option<Class> {
        let resolved = biv_core::resolve_copies(self.analysis.ssa(), *op);
        let v = resolved.as_value()?;
        // Find the class in `l` or any enclosing loop of `l`.
        let forest = self.analysis.forest();
        let mut cur = Some(l);
        while let Some(c) = cur {
            if let Some(cls) = self.analysis.class_in(c, v) {
                return Some(cls.clone());
            }
            cur = forest.data(c).parent;
        }
        None
    }
}

/// Outcome of testing one subscript dimension.
#[derive(Debug)]
enum DimOutcome {
    Independent,
    Constrain {
        loop_dirs: Vec<DirSet>,
        distance: Option<(usize, i128)>,
        wrap: u32,
        periodic: Option<PeriodicConstraint>,
    },
    Unknown,
}
