//! JSON emission for benchmark results — the `BENCH_*.json` perf
//! trajectory.
//!
//! Each bench binary that participates in the trajectory calls
//! [`emit_json`] after its groups finish. The emitted file records, per
//! measurement, the median and mean ns/op, the declared element count,
//! the derived throughput, and — when the binary carries a recorded
//! baseline from before an optimization landed — the baseline median and
//! the speedup against it. The format is hand-rolled (the workspace
//! builds offline, so no serde), flat, and stable so later PRs can diff
//! trajectories mechanically.

use std::io::Write as _;
use std::path::Path;

use crate::harness::Measurement;

/// A recorded pre-change median for one benchmark id, in nanoseconds.
/// Bench binaries bake these in as constants when an optimization PR
/// wants the emitted JSON to carry its own before/after comparison.
#[derive(Debug, Clone, Copy)]
pub struct Baseline {
    /// The `group/name` measurement id this baseline belongs to.
    pub id: &'static str,
    /// Median ns/op measured before the change.
    pub median_ns: f64,
}

/// Whether quick mode is on (`BIV_BENCH_QUICK=1`): CI smoke runs use it
/// to shrink measurement times and shape sweeps while still exercising
/// the full emit path.
pub fn quick_mode() -> bool {
    std::env::var_os("BIV_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Writes `measurements` as a JSON report to `path`.
///
/// `bench` names the bench binary; `baselines` carries recorded
/// pre-change medians (empty slice when there is nothing to compare
/// against). Returns an I/O error if the file cannot be written.
pub fn emit_json(
    path: &Path,
    bench: &str,
    measurements: &[Measurement],
    baselines: &[Baseline],
) -> std::io::Result<()> {
    emit_json_with_extras(path, bench, measurements, baselines, &[])
}

/// Like [`emit_json`], with extra top-level numeric fields — for bench
/// binaries whose trajectory carries more than timings (e.g. the store
/// bench's warm hit rate).
pub fn emit_json_with_extras(
    path: &Path,
    bench: &str,
    measurements: &[Measurement],
    baselines: &[Baseline],
    extras: &[(&str, f64)],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": {},\n", json_string(bench)));
    out.push_str(&format!(
        "  \"quick\": {},\n",
        if quick_mode() { "true" } else { "false" }
    ));
    for (key, value) in extras {
        out.push_str(&format!("  {}: {},\n", json_string(key), json_f64(*value)));
    }
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let median_ns = m.median.as_nanos() as f64;
        let mean_ns = m.mean.as_nanos() as f64;
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": {},\n", json_string(&m.id)));
        out.push_str(&format!("      \"median_ns\": {},\n", json_f64(median_ns)));
        out.push_str(&format!("      \"mean_ns\": {},\n", json_f64(mean_ns)));
        out.push_str(&format!("      \"samples\": {},\n", m.samples.len()));
        match m.elements {
            Some(n) => {
                out.push_str(&format!("      \"elements\": {n},\n"));
                let eps = if median_ns > 0.0 {
                    n as f64 * 1e9 / median_ns
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "      \"throughput_elems_per_sec\": {},\n",
                    json_f64(eps)
                ));
            }
            None => {
                out.push_str("      \"elements\": null,\n");
                out.push_str("      \"throughput_elems_per_sec\": null,\n");
            }
        }
        match baselines.iter().find(|b| b.id == m.id) {
            Some(b) => {
                out.push_str(&format!(
                    "      \"baseline_median_ns\": {},\n",
                    json_f64(b.median_ns)
                ));
                let speedup = if median_ns > 0.0 {
                    b.median_ns / median_ns
                } else {
                    0.0
                };
                out.push_str(&format!("      \"speedup\": {}\n", json_f64(speedup)));
            }
            None => {
                out.push_str("      \"baseline_median_ns\": null,\n");
                out.push_str("      \"speedup\": null\n");
            }
        }
        out.push_str(if i + 1 == measurements.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// The workspace root, derived from the bench crate's manifest directory
/// so `BENCH_*.json` lands at the repo root regardless of the cwd cargo
/// hands the bench binary.
pub fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.1}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn measurement(id: &str, median_ns: u64) -> Measurement {
        Measurement {
            id: id.to_string(),
            mean: Duration::from_nanos(median_ns + 5),
            median: Duration::from_nanos(median_ns),
            samples: vec![Duration::from_nanos(median_ns); 3],
            elements: Some(100),
        }
    }

    #[test]
    fn emits_valid_shape_with_baseline() {
        let dir = std::env::temp_dir().join("biv_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let ms = [measurement("g/a", 2_000), measurement("g/b", 500)];
        let baselines = [Baseline {
            id: "g/a",
            median_ns: 4_000.0,
        }];
        emit_json(&path, "kernel", &ms, &baselines).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"kernel\""));
        assert!(text.contains("\"id\": \"g/a\""));
        assert!(text.contains("\"median_ns\": 2000.0"));
        assert!(text.contains("\"baseline_median_ns\": 4000.0"));
        assert!(text.contains("\"speedup\": 2.0"));
        // The entry without a baseline reports nulls.
        assert!(text.contains("\"baseline_median_ns\": null"));
        // Balanced braces as a cheap well-formedness check.
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced JSON"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
