//! Shared helpers for the Criterion benchmark binaries in `benches/`.
//!
//! The benchmarks reproduce the paper's performance claims:
//!
//! - `scaling` (P1): "this algorithm is linear in the size of the SSA
//!   graph, not iterative";
//! - `vs_classic` (P2): "giving a unified approach improves the speed of
//!   compilers";
//! - `dependence` (P3): dependence testing throughput with classified
//!   variables;
//! - `ablation` (A1/A2): the incremental cost of each extension beyond
//!   linear induction variables, and of pruned vs minimal SSA;
//! - `paper_figures` (E1–E9): classification latency on each worked
//!   example from the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod latency;
pub mod report;

/// The paper-figure sources benchmarked by `benches/paper_figures.rs`, as
/// `(experiment id, source)` pairs.
pub fn paper_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "fig1_linear",
            "func fig1(n, c, k) { j = n L7: loop { i = j + c j = i + k if j > 1000 { break } } }",
        ),
        (
            "fig3_branch",
            "func fig3(e, n) { i = 1 L8: loop { if e > 0 { i = i + 2 } else { i = i + 2 } if i > n { break } } }",
        ),
        (
            "fig4_wraparound",
            "func fig4(n, k0, j0) { k = k0 j = j0 i = 1 L10: loop { A[k] = i A[j] = i k = j j = i i = i + 1 if i > n { break } } }",
        ),
        (
            "fig5_periodic",
            "func fig5(n, j0, k0, l0, t0) { t = t0 j = j0 k = k0 l = l0 L13: loop { A[t] = j t = j j = k k = l l = t if j > n { break } } }",
        ),
        (
            "l14_polynomial",
            "func l14(n) { j = 1 k = 1 l = 1 L14: for i = 1 to n { j = j + i k = k + j + 1 l = l * 2 + 1 A[j] = k } }",
        ),
        (
            "fig6_monotonic",
            "func fig6(n, e) { k = 0 L16: loop { if e > 0 { k = k + 1 } else { k = k + 2 } if k > n { break } } }",
        ),
        (
            "fig7_nested",
            "func fig7(n) { k = 0 L17: loop { i = 1 L18: loop { k = k + 2 if i > 100 { break } i = i + 1 } k = k + 2 if k > n { break } } }",
        ),
        (
            "fig9_triangular",
            "func fig9(n) { j = 0 L19: for i = 1 to n { j = j + i L20: for k = 1 to i { j = j + 1 } } }",
        ),
        (
            "fig10_mixed",
            "func fig10(n) { k = 0 L15: for i = 1 to n { F[k] = A[i] t = A[i] if t > 0 { C[k] = D[i] k = k + 1 B[k] = A[i] E[i] = B[k] } G[i] = F[k] } }",
        ),
    ]
}

/// Counts three-address instructions in a function (benchmark size
/// metric).
pub fn instruction_count(func: &biv_ir::Function) -> usize {
    func.blocks.iter().map(|(_, b)| b.insts.len()).sum()
}
