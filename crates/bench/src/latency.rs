//! Bounded-window latency recording with percentile snapshots.
//!
//! The bench harness measures closed-world workloads; a serving process
//! measures an open-ended stream of requests. [`LatencyWindow`] bridges
//! the two: it keeps the most recent `window` samples in a ring (so a
//! long-lived daemon's percentiles track *current* behavior, not its
//! boot-time warmup) plus lifetime count/total/max, and renders a
//! [`LatencySnapshot`] through the same nearest-rank percentile
//! machinery the harness uses ([`crate::harness::sorted_percentile`]).

use std::time::Duration;

use crate::harness::sorted_percentile;

/// A ring of recent duration samples plus lifetime aggregates.
#[derive(Debug, Clone)]
pub struct LatencyWindow {
    ring: Vec<Duration>,
    next: usize,
    window: usize,
    count: u64,
    total: Duration,
    max: Duration,
}

/// Point-in-time percentile summary of a [`LatencyWindow`].
///
/// Percentiles are computed over the retained window; `count`, `mean`,
/// and `max` are lifetime aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded over the window's lifetime.
    pub count: u64,
    /// Lifetime mean.
    pub mean: Duration,
    /// 50th percentile of the retained window.
    pub p50: Duration,
    /// 90th percentile of the retained window.
    pub p90: Duration,
    /// 99th percentile of the retained window.
    pub p99: Duration,
    /// Lifetime maximum.
    pub max: Duration,
}

impl LatencySnapshot {
    /// The all-zero snapshot reported before any sample arrives.
    pub fn empty() -> LatencySnapshot {
        LatencySnapshot {
            count: 0,
            mean: Duration::ZERO,
            p50: Duration::ZERO,
            p90: Duration::ZERO,
            p99: Duration::ZERO,
            max: Duration::ZERO,
        }
    }
}

impl LatencyWindow {
    /// Creates a window retaining the most recent `window` samples
    /// (minimum 1).
    pub fn new(window: usize) -> LatencyWindow {
        LatencyWindow {
            ring: Vec::with_capacity(window.clamp(1, 4096)),
            next: 0,
            window: window.max(1),
            count: 0,
            total: Duration::ZERO,
            max: Duration::ZERO,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.count += 1;
        self.total += sample;
        self.max = self.max.max(sample);
        if self.ring.len() < self.window {
            self.ring.push(sample);
        } else {
            self.ring[self.next] = sample;
        }
        self.next = (self.next + 1) % self.window;
    }

    /// Samples recorded over the window's lifetime.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Computes the current percentile summary.
    pub fn snapshot(&self) -> LatencySnapshot {
        if self.ring.is_empty() {
            return LatencySnapshot::empty();
        }
        let mut sorted = self.ring.clone();
        sorted.sort();
        LatencySnapshot {
            count: self.count,
            mean: self.total.div_f64(self.count as f64),
            p50: sorted_percentile(&sorted, 50.0),
            p90: sorted_percentile(&sorted, 90.0),
            p99: sorted_percentile(&sorted, 99.0),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reports_zeroes() {
        let w = LatencyWindow::new(8);
        assert_eq!(w.snapshot(), LatencySnapshot::empty());
    }

    #[test]
    fn percentiles_track_recorded_samples() {
        let mut w = LatencyWindow::new(128);
        for ms in 1..=100 {
            w.record(Duration::from_millis(ms));
        }
        let s = w.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50.as_millis(), 50);
        assert_eq!(s.p90.as_millis(), 90);
        assert_eq!(s.p99.as_millis(), 99);
        assert_eq!(s.max.as_millis(), 100);
        assert_eq!(s.mean.as_micros(), 50_500);
    }

    #[test]
    fn ring_retains_only_recent_samples_but_lifetime_max() {
        let mut w = LatencyWindow::new(4);
        w.record(Duration::from_secs(10)); // will be overwritten
        for _ in 0..4 {
            w.record(Duration::from_millis(1));
        }
        let s = w.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.p99.as_millis(), 1, "old spike left the window");
        assert_eq!(s.max.as_secs(), 10, "lifetime max survives");
    }
}
