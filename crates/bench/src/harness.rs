//! A minimal, dependency-free benchmark harness with a Criterion-style
//! API.
//!
//! The workspace builds in fully offline environments, so the benches
//! cannot pull in the `criterion` crate. This module provides the small
//! subset of its surface the `benches/` binaries use — benchmark groups,
//! per-input benchmarks, batched iteration, throughput reporting — with
//! wall-clock timing from `std::time::Instant`. Numbers are printed to
//! stdout in a stable `group/name  time: [..]` format.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state, threaded through every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Median per-iteration time across samples. Robust against a stray
    /// slow sample (page faults, scheduler noise) and therefore the
    /// number recorded in `BENCH_*.json`.
    pub median: Duration,
    /// Per-sample per-iteration times, in measurement order.
    pub samples: Vec<Duration>,
    /// Throughput elements per iteration, when declared.
    pub elements: Option<u64>,
}

impl Criterion {
    /// Creates a fresh harness.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints a one-line closing summary.
    pub fn final_summary(&self) {
        println!("{} benchmarks measured", self.results.len());
    }
}

/// Declared throughput for a group, à la Criterion.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched iteration amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A `name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target total measurement time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time before sampling.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the throughput of subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, name: impl BenchName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = self.qualified(&name.bench_name());
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            mean: Duration::ZERO,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let samples = std::mem::take(&mut bencher.samples);
        self.record(id, bencher.mean, samples);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (measurements are already recorded).
    pub fn finish(&mut self) {}

    fn qualified(&self, name: &str) -> String {
        if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.name)
        }
    }

    fn record(&mut self, id: String, mean: Duration, samples: Vec<Duration>) {
        let elements = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => Some(n),
            None => None,
        };
        let median = median_duration(&samples).unwrap_or(mean);
        let thrpt = match elements {
            Some(n) if median > Duration::ZERO => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  thrpt: [{} elem/s]", human_count(per_sec))
            }
            _ => String::new(),
        };
        println!(
            "{id:<40} time: [{} median {} mean]{thrpt}",
            human_duration(median),
            human_duration(mean)
        );
        self.criterion.results.push(Measurement {
            id,
            mean,
            median,
            samples,
            elements,
        });
    }
}

/// Things accepted as a benchmark name: `&str` or [`BenchmarkId`].
pub trait BenchName {
    /// The rendered name.
    fn bench_name(&self) -> String;
}

impl BenchName for &str {
    fn bench_name(&self) -> String {
        (*self).to_string()
    }
}

impl BenchName for BenchmarkId {
    fn bench_name(&self) -> String {
        self.id.clone()
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` in a loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let sample = t0.elapsed();
            self.samples.push(sample.div_f64(iters_per_sample as f64));
            total += sample;
            iters += iters_per_sample;
        }
        self.mean = total.div_f64(iters as f64);
    }

    /// Times `routine` with a fresh `setup` product per call; only the
    /// routine is timed. The routine's output is dropped *outside* the
    /// timed window (matching criterion semantics), so a routine that
    /// wants its input's teardown excluded too can simply return the
    /// input alongside its result.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut timed = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t0 = Instant::now();
            let out = black_box(routine(input));
            timed += t0.elapsed();
            drop(out);
            warm_iters += 1;
        }
        let per_iter = (timed.as_secs_f64() / warm_iters as f64).max(1e-9);
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter) as u64).max(1);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                let out = black_box(routine(input));
                sample += t0.elapsed();
                drop(out);
            }
            self.samples.push(sample.div_f64(iters_per_sample as f64));
            total += sample;
            iters += iters_per_sample;
        }
        self.mean = total.div_f64(iters as f64);
    }
}

/// The median of a set of per-sample durations (average of the middle
/// pair for even counts); `None` when empty.
pub fn median_duration(samples: &[Duration]) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    })
}

/// The `p`-th percentile (0–100) of a set of durations, nearest-rank
/// method over a sorted copy; `None` when empty. `p` is clamped to
/// [0, 100], so `percentile_duration(s, 100.0)` is the maximum.
pub fn percentile_duration(samples: &[Duration], p: f64) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    Some(sorted_percentile(&sorted, p))
}

/// Nearest-rank percentile over an already **sorted** slice, for callers
/// (latency windows) that take several percentiles from one sort.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn sorted_percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let p = p.clamp(0.0, 100.0);
    // Nearest rank: ceil(p/100 · n), 1-based; p = 0 maps to rank 1.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

fn human_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_count(n: f64) -> String {
    if n < 1_000.0 {
        format!("{n:.1}")
    } else if n < 1_000_000.0 {
        format!("{:.2} K", n / 1_000.0)
    } else if n < 1_000_000_000.0 {
        format!("{:.2} M", n / 1_000_000.0)
    } else {
        format!("{:.2} G", n / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a bench binary, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::harness::Criterion::new();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("t");
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(5));
        group.sample_size(3);
        // black_box keeps the sum from being const-folded in release mode,
        // where a 0ns body would defeat the mean > 0 assertion below.
        group.bench_function("spin", |b| {
            b.iter(|| (0..std::hint::black_box(10_000u64)).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].mean > Duration::ZERO);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(percentile_duration(&samples, 50.0).unwrap().as_millis(), 5);
        assert_eq!(percentile_duration(&samples, 90.0).unwrap().as_millis(), 9);
        assert_eq!(percentile_duration(&samples, 99.0).unwrap().as_millis(), 10);
        assert_eq!(
            percentile_duration(&samples, 100.0).unwrap().as_millis(),
            10
        );
        assert_eq!(percentile_duration(&samples, 0.0).unwrap().as_millis(), 1);
        assert_eq!(percentile_duration(&[], 50.0), None);
        // Order of the input must not matter.
        let mut shuffled = samples.clone();
        shuffled.reverse();
        assert_eq!(
            percentile_duration(&shuffled, 90.0),
            percentile_duration(&samples, 90.0)
        );
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("t");
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(5));
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(c.measurements().len(), 1);
        assert_eq!(c.measurements()[0].id, "t/sum/64");
    }
}
