//! Phase-level profiler for the incremental re-analysis path.
//!
//! ```text
//! cargo run -p biv-bench --release --example profile_incremental -- [ITERS]
//! ```
//!
//! Prints best-of-N wall times for each phase of a warm single-nest
//! update on the 15k-instruction linear workload (the acceptance
//! shape): dominator/loop construction, `RegionMap::compute`, slice
//! construction, the full warm update, and the no-edit floor. Use this
//! to attribute a regression in `incremental_update` to a phase before
//! reaching for the full bench harness — best-of-N on a quiet machine
//! is stable to a few percent.
use std::time::Instant;

use biv_core::incremental::{
    analyze_incremental, perturb_nest_constant, IncrementalState, RegionMap,
};
use biv_core::AnalysisConfig;
use biv_workload::{generate, WorkloadSpec};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let w = generate(&WorkloadSpec::sized_linear(1 << 14, 0xBEEF + 14));
    let config = AnalysisConfig::default();

    let mut best_dom = f64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        let dom = biv_ir::dom::DomTree::compute(&w.func);
        let forest = biv_ir::loops::LoopForest::compute(&w.func, &dom);
        let dt = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&forest);
        best_dom = best_dom.min(dt);
    }
    println!("DomTree+LoopForest: best {best_dom:.3} ms");

    let mut best_rm = f64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        let rm = RegionMap::compute(&w.func);
        let dt = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&rm);
        best_rm = best_rm.min(dt);
    }
    println!("RegionMap::compute: best {best_rm:.3} ms");

    let rm = RegionMap::compute(&w.func);
    println!("nests: {}", rm.nests.len());

    let mut best_slice = f64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        let s = rm.slice(&w.func, 3);
        let dt = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&s);
        best_slice = best_slice.min(dt);
    }
    println!("slice(): best {best_slice:.3} ms");

    // Full warm update: one nest miss.
    let mut state = IncrementalState::new(config);
    analyze_incremental(&w.func, &mut state);
    let mut current = w.func.clone();
    let mut best_upd = f64::MAX;
    for i in 0..n as u64 {
        let regions = RegionMap::compute(&current);
        let mutated =
            perturb_nest_constant(&current, &regions, (i as usize) % regions.nests.len(), i)
                .unwrap();
        let t = Instant::now();
        let r = analyze_incremental(&mutated, &mut state);
        let dt = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.stats.analyzed, 1);
        std::hint::black_box(&r);
        best_upd = best_upd.min(dt);
        current = mutated;
    }
    println!("warm single-nest update: best {best_upd:.3} ms");

    // Noop re-analysis.
    let mut best_noop = f64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        let r = analyze_incremental(&current, &mut state);
        let dt = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.stats.analyzed, 0);
        std::hint::black_box(&r);
        best_noop = best_noop.min(dt);
    }
    println!("noop re-analysis: best {best_noop:.3} ms");
}
