//! Profiling helper: runs the classification kernel over the largest
//! `scaling.rs` shape in a flat loop so a sampling profiler (gprofng,
//! perf) sees only the hot path. Not a benchmark — no timing, no JSON.
//!
//! ```text
//! cargo build --release -p biv-bench --example profile_kernel
//! gprofng collect app target/release/examples/profile_kernel
//! ```

use biv_core::{classify_loop, AnalysisConfig};
use biv_ir::dom::DomTree;
use biv_ir::loops::LoopForest;
use biv_ssa::SsaFunction;
use biv_workload::{generate, WorkloadSpec};

fn main() {
    let target = 1usize << 14;
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let w = generate(&WorkloadSpec::sized_linear(target, 0xBEEF + 14));
    let ssa = SsaFunction::build(&w.func);
    let dom = DomTree::compute(ssa.func());
    let forest = LoopForest::compute(ssa.func(), &dom);
    let order = forest.inner_to_outer();
    let config = AnalysisConfig::default();
    let empty = biv_ir::EntityMap::new();
    let mut total = 0usize;
    let start = std::time::Instant::now();
    for _ in 0..reps {
        for &l in &order {
            total += classify_loop(&ssa, &forest, l, &empty, &config).len();
        }
    }
    let elapsed = start.elapsed();
    println!(
        "{total} classifications, {reps} reps, {:.3} ms/rep",
        elapsed.as_secs_f64() * 1e3 / reps as f64,
    );
}
