//! `bench_gate` — the CI bench regression gate.
//!
//! ```text
//! cargo run -p biv-bench --release --example bench_gate -- CURRENT BASELINE [THRESHOLD]
//! ```
//!
//! Compares two bench JSON files (the `BENCH_*.json` format emitted by
//! the bench harness) id by id and fails — nonzero exit — when any
//! shared id's current median regresses past `THRESHOLD` (a fraction,
//! default `0.25` = 25%) over the committed baseline. Ids present in
//! only one file are reported but never fail the gate, so adding or
//! retiring benchmarks doesn't break CI.
//!
//! The threshold is deliberately loose: shared CI runners are noisy, and
//! the gate exists to catch step-function regressions (an accidental
//! `clone` on the hot path, a lost cache), not single-digit drift. Local
//! full-mode runs on quiet hardware remain the arbiter for performance
//! claims.
//!
//! Parsing is a std-only line scan for `"id"` / `"median_ns"` pairs —
//! no JSON dependency, matching the hand-rolled emitter.

use std::process::ExitCode;

/// Extracts `(id, median_ns)` pairs from bench-report JSON. Relies only
/// on the emitter's layout: each result object lists `"id"` first and
/// `"median_ns"` on a following line.
fn parse_medians(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut current_id: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"id\":") {
            let rest = rest.trim().trim_end_matches(',');
            current_id = rest
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"median_ns\":") {
            if let Some(id) = current_id.take() {
                if let Ok(v) = rest.trim().trim_end_matches(',').parse::<f64>() {
                    out.push((id, v));
                }
            }
        }
    }
    out
}

fn read_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let medians = parse_medians(&text);
    if medians.is_empty() {
        return Err(format!("`{path}` contains no (id, median_ns) pairs"));
    }
    Ok(medians)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, baseline_path, threshold) = match args.as_slice() {
        [c, b] => (c.as_str(), b.as_str(), 0.25),
        [c, b, t] => match t.parse::<f64>() {
            Ok(t) if t > 0.0 => (c.as_str(), b.as_str(), t),
            _ => {
                eprintln!("bench_gate: invalid threshold `{t}` (want a positive fraction)");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: bench_gate CURRENT.json BASELINE.json [THRESHOLD]");
            return ExitCode::FAILURE;
        }
    };
    let (current, baseline) = match (read_medians(current_path), read_medians(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0usize;
    let mut compared = 0usize;
    for (id, cur) in &current {
        let Some((_, base)) = baseline.iter().find(|(bid, _)| bid == id) else {
            println!("  new      {id}: {:.0} ns (no baseline)", cur);
            continue;
        };
        compared += 1;
        let ratio = cur / base;
        let verdict = if ratio > 1.0 + threshold {
            failures += 1;
            "REGRESSED"
        } else if ratio < 1.0 {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {verdict:<9} {id}: {cur:.0} ns vs {base:.0} ns ({:+.1}%)",
            (ratio - 1.0) * 100.0
        );
    }
    for (id, base) in &baseline {
        if !current.iter().any(|(cid, _)| cid == id) {
            println!("  retired  {id}: baseline {base:.0} ns, not in current run");
        }
    }
    println!(
        "bench_gate: {compared} compared, {failures} regressed past {:.0}% \
         ({current_path} vs {baseline_path})",
        threshold * 100.0
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::parse_medians;

    #[test]
    fn parses_emitter_layout() {
        let text = r#"{
  "results": [
    {
      "id": "g/b/1",
      "median_ns": 1500.0,
      "mean_ns": 1600.0
    },
    {
      "id": "g/b/2",
      "median_ns": 2500.5
    }
  ]
}"#;
        let m = parse_medians(text);
        assert_eq!(
            m,
            vec![("g/b/1".to_string(), 1500.0), ("g/b/2".to_string(), 2500.5)]
        );
    }
}
