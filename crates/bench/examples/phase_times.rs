//! Phase-time probe for the whole-function pipeline on the largest
//! `kernel.rs` shape.
//!
//! ```text
//! cargo run -p biv-bench --release --example phase_times
//! ```
//!
//! Prints `analyze_with_times` phase splits (SSA, loop forest,
//! classification, closed forms) for three consecutive runs, so a
//! regression in `full_reanalysis` or `batch` can be attributed to a
//! phase without a sampling profiler. The first run includes cold-cache
//! effects; read the later lines for steady state.
use biv_core::{analyze_with_times, AnalysisConfig};
use biv_workload::{generate, WorkloadSpec};

fn main() {
    let w = generate(&WorkloadSpec::sized_linear(1 << 14, 0xBEEF + 14));
    let config = AnalysisConfig::default();
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let (_, times) = analyze_with_times(&w.func, config);
        println!(
            "total {:.3} ms | {}",
            t.elapsed().as_secs_f64() * 1e3,
            times
        );
    }
}
