//! E1–E9: full-pipeline classification latency on each worked example
//! from the paper (parse excluded; SSA construction + classification
//! included).

use biv_bench::harness::{BatchSize, Criterion};
use biv_bench::{criterion_group, criterion_main};
use std::time::Duration;

use biv_core::analyze;
use biv_ir::parser::parse_program;

fn bench_paper(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    for (name, src) in biv_bench::paper_sources() {
        let program = parse_program(src).expect("paper source parses");
        let func = program.functions[0].clone();
        group.bench_function(name, |b| {
            b.iter_batched(|| func.clone(), |f| analyze(&f), BatchSize::SmallInput)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paper);
criterion_main!(benches);
