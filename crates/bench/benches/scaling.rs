//! P1: "this algorithm is linear in the size of the SSA graph, not
//! iterative." Classification time across exponentially growing programs;
//! Criterion's throughput report shows time **per instruction** staying
//! flat as programs grow 64×.

use biv_bench::harness::{BenchmarkId, Criterion, Throughput};
use biv_bench::{criterion_group, criterion_main};
use std::time::Duration;

use biv_bench::instruction_count;
use biv_core::analyze;
use biv_workload::{generate, WorkloadSpec};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    for exp in [8usize, 10, 12, 14] {
        let target = 1usize << exp;
        let w = generate(&WorkloadSpec::sized_linear(target, 0xBEEF + exp as u64));
        let insts = instruction_count(&w.func);
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::new("classify", insts), &w.func, |b, func| {
            b.iter(|| analyze(func))
        });
    }
    group.finish();
}

/// The classifier alone (SSA prebuilt): the paper's claim is about this
/// pass — "linear in the size of the SSA graph, not iterative".
fn bench_scaling_classify_only(c: &mut Criterion) {
    use biv_core::{classify_loop, AnalysisConfig};
    use biv_ir::dom::DomTree;
    use biv_ir::loops::LoopForest;
    use biv_ssa::SsaFunction;

    let mut group = c.benchmark_group("scaling_classify_only");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    for exp in [8usize, 10, 12, 14] {
        let target = 1usize << exp;
        let w = generate(&WorkloadSpec::sized_linear(target, 0xBEEF + exp as u64));
        let insts = instruction_count(&w.func);
        let ssa = SsaFunction::build(&w.func);
        let dom = DomTree::compute(ssa.func());
        let forest = LoopForest::compute(ssa.func(), &dom);
        let order = forest.inner_to_outer();
        let config = AnalysisConfig::default();
        let empty = biv_ir::EntityMap::new();
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::new("classify", insts), &ssa, |b, ssa| {
            b.iter(|| {
                let mut total = 0usize;
                for &l in &order {
                    total += classify_loop(ssa, &forest, l, &empty, &config).len();
                }
                total
            })
        });
    }
    group.finish();
}

/// The same sweep on the mixed workload (every variable class present).
fn bench_scaling_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_mixed");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    for scale in [1usize, 4, 16, 64] {
        let w = generate(&WorkloadSpec::mixed(scale, 0xCAFE + scale as u64));
        let insts = instruction_count(&w.func);
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::new("classify", insts), &w.func, |b, func| {
            b.iter(|| analyze(func))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_scaling_classify_only,
    bench_scaling_mixed
);
criterion_main!(benches);
