//! P3: dependence-testing throughput with classified variables — the
//! point of the whole exercise (§6). Measures all-pairs testing over
//! programs with linear, periodic, monotonic, and wrap-around subscripts.

use biv_bench::harness::Criterion;
use biv_bench::{criterion_group, criterion_main};
use std::time::Duration;

use biv_core::analyze_source;
use biv_depend::DependenceTester;

fn sources() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "linear_pairs",
            r#"
            func f(n) {
                L1: for i = 1 to n {
                    A[i] = A[i - 1] + A[i + 1]
                    B[2 * i] = B[2 * i + 1]
                    C[i] = C[i]
                }
            }
            "#,
        ),
        (
            "relaxation_periodic",
            r#"
            func f(n) {
                new = 1
                old = 2
                L1: for it = 1 to n {
                    L2: for i = 2 to 99 {
                        A[new, i] = A[old, i - 1] + A[old, i + 1]
                    }
                    t = new
                    new = old
                    old = t
                }
            }
            "#,
        ),
        (
            "monotonic_pack",
            r#"
            func f(n) {
                k = 0
                L15: for i = 1 to n {
                    t = A[i]
                    if t > 0 {
                        k = k + 1
                        B[k] = t
                        E[i] = B[k]
                    }
                }
            }
            "#,
        ),
        (
            "nested_mdim",
            r#"
            func f(n) {
                L1: for i = 2 to n {
                    L2: for j = 2 to n {
                        A[i, j] = A[i - 1, j] + A[i, j - 1]
                    }
                }
            }
            "#,
        ),
    ]
}

fn bench_dependence(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    for (name, src) in sources() {
        let analysis = analyze_source(src).expect("source analyzes");
        group.bench_function(name, |b| {
            b.iter(|| {
                let tester = DependenceTester::new(&analysis);
                tester.all_dependences().len()
            })
        });
    }
    group.finish();
}

/// End-to-end: parse + SSA + classify + test, the full compiler-pass cost.
fn bench_dependence_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence_end_to_end");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    for (name, src) in sources() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let analysis = analyze_source(src).expect("source analyzes");
                let tester = DependenceTester::new(&analysis);
                tester.all_dependences().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dependence, bench_dependence_end_to_end);
criterion_main!(benches);
