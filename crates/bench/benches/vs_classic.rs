//! P2: "giving a unified approach improves the speed of compilers and
//! allows a more general classification scheme."
//!
//! Head-to-head: the unified SSA classifier against the classical
//! detector plus its ad-hoc pattern matchers. Two workloads:
//!
//! - `linear_only`: programs the classical approach fully handles — the
//!   fair speed comparison;
//! - `mixed`: programs with wrap-around, periodic, polynomial, geometric,
//!   and monotonic variables — where the classical detector runs its
//!   matchers *and still* classifies strictly less (the coverage gap is
//!   reported by the `coverage` "benchmark", which prints counts once).

use biv_bench::harness::Criterion;
use biv_bench::{criterion_group, criterion_main};
use std::time::Duration;

use biv_core::{analyze, analyze_with, AnalysisConfig};
use biv_workload::{count_classes, generate, WorkloadSpec};

fn bench_vs_classic(c: &mut Criterion) {
    let linear = generate(&WorkloadSpec {
        loops: 8,
        linear: 8,
        polynomial: 0,
        geometric: 0,
        wraparound: 0,
        periodic: 0,
        monotonic: 0,
        diamonds: 0,
        invariants: 2,
        trip: 100,
        seed: 11,
        ..WorkloadSpec::default()
    });
    let mixed = generate(&WorkloadSpec {
        loops: 8,
        ..WorkloadSpec::default()
    });

    let mut group = c.benchmark_group("vs_classic/linear_only");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    group.bench_function("unified_ssa", |b| b.iter(|| analyze(&linear.func)));
    group.bench_function("unified_ssa_linear_cfg", |b| {
        b.iter(|| analyze_with(&linear.func, AnalysisConfig::linear_only()))
    });
    group.bench_function("classical", |b| {
        b.iter(|| biv_classic::detect(&linear.func))
    });
    group.finish();

    let mut group = c.benchmark_group("vs_classic/mixed");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    group.bench_function("unified_ssa", |b| b.iter(|| analyze(&mixed.func)));
    group.bench_function("classical_plus_matchers", |b| {
        b.iter(|| biv_classic::detect(&mixed.func))
    });
    group.finish();

    // Coverage report (printed once; not a timing).
    let unified = count_classes(&analyze(&mixed.func));
    let classical = biv_classic::detect(&mixed.func);
    println!(
        "\n[coverage] mixed workload: unified classifies {} values \
         (linear {}, poly {}, geo {}, wrap {}, periodic {}, monotonic {}); \
         classical detector + ad-hoc matchers classify {} variables",
        unified.linear
            + unified.polynomial
            + unified.geometric
            + unified.wraparound
            + unified.periodic
            + unified.monotonic,
        unified.linear,
        unified.polynomial,
        unified.geometric,
        unified.wraparound,
        unified.periodic,
        unified.monotonic,
        classical.total(),
    );
}

criterion_group!(benches, bench_vs_classic);
criterion_main!(benches);
