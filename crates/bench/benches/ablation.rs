//! A1/A2: ablations called out in DESIGN.md.
//!
//! - A1: the incremental cost of each classification extension on the
//!   mixed workload — the generality beyond linear IVs is nearly free,
//!   which is the engineering argument for the unified algorithm;
//! - A2: pruned vs minimal SSA construction.

use biv_bench::harness::Criterion;
use biv_bench::{criterion_group, criterion_main};
use std::time::Duration;

use biv_core::{analyze_with, AnalysisConfig};
use biv_ssa::{BuildConfig, SsaFunction};
use biv_workload::{generate, WorkloadSpec};

fn bench_config_ablation(c: &mut Criterion) {
    let w = generate(&WorkloadSpec {
        loops: 8,
        ..WorkloadSpec::default()
    });
    let configs: Vec<(&str, AnalysisConfig)> = vec![
        ("full", AnalysisConfig::full()),
        ("linear_only", AnalysisConfig::linear_only()),
        (
            "no_nonlinear",
            AnalysisConfig {
                nonlinear: false,
                ..AnalysisConfig::full()
            },
        ),
        (
            "no_periodic",
            AnalysisConfig {
                periodic: false,
                ..AnalysisConfig::full()
            },
        ),
        (
            "no_monotonic",
            AnalysisConfig {
                monotonic: false,
                ..AnalysisConfig::full()
            },
        ),
        (
            "no_wraparound",
            AnalysisConfig {
                wraparound: false,
                ..AnalysisConfig::full()
            },
        ),
        (
            "no_exit_values",
            AnalysisConfig {
                nested_exit_values: false,
                ..AnalysisConfig::full()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_config");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    for (name, config) in configs {
        group.bench_function(name, |b| b.iter(|| analyze_with(&w.func, config)));
    }
    group.finish();
}

fn bench_ssa_ablation(c: &mut Criterion) {
    let w = generate(&WorkloadSpec {
        loops: 8,
        diamonds: 4,
        ..WorkloadSpec::default()
    });
    let mut group = c.benchmark_group("ablation_ssa");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
    group.bench_function("pruned", |b| {
        b.iter(|| {
            SsaFunction::build_with(
                &w.func,
                BuildConfig {
                    pruned: true,
                    simplify_loops: true,
                },
            )
        })
    });
    group.bench_function("minimal", |b| {
        b.iter(|| {
            SsaFunction::build_with(
                &w.func,
                BuildConfig {
                    pruned: false,
                    simplify_loops: true,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_config_ablation, bench_ssa_ablation);
criterion_main!(benches);
