//! Invariant-engine benchmark: what the `--invariants` path costs on top
//! of classification. Three figures go to `BENCH_invariant.json`:
//! the exact null-space derivation over the canonical running-sum IV
//! pair, the interpreter-trace checking predicate over realistic
//! histories, and the end-to-end batch analysis of an invariant-bearing
//! corpus (derivation + machine-checking included, as served).

use std::time::Duration;

use biv_algebra::{Rational, SymPoly};
use biv_bench::criterion_group;
use biv_bench::harness::{BenchmarkId, Criterion, Throughput};
use biv_bench::report::{self, Baseline};
use biv_core::{analyze_batch, BatchOptions};
use biv_invariant::check::SeedHistories;
use biv_invariant::{check_candidate, derive_candidates, Candidate, InvariantConfig, IvClosedForm};
use biv_workload::{generate, WorkloadSpec};

/// A new subsystem has no pre-change medians to compare against.
const BASELINES: &[Baseline] = &[];

const CORPUS_FUNCTIONS: usize = 24;
const CHECK_SEEDS: usize = 4;
const CHECK_ITERATIONS: i64 = 64;

fn timing(group: &mut biv_bench::harness::BenchmarkGroup<'_>) {
    if report::quick_mode() {
        group.measurement_time(Duration::from_millis(300));
        group.warm_up_time(Duration::from_millis(50));
        group.sample_size(5);
    } else {
        group.measurement_time(Duration::from_secs(2));
        group.warm_up_time(Duration::from_millis(400));
        group.sample_size(10);
    }
}

fn rat(n: i128, d: i128) -> Rational {
    Rational::new(n, d).expect("nonzero denominator")
}

/// The running-sum IV pair: `i = 1 + h`, `s = h/2 + h²/2`.
fn running_sum_ivs() -> Vec<IvClosedForm> {
    vec![
        IvClosedForm {
            name: "i".into(),
            coeffs: vec![
                SymPoly::constant(Rational::from_integer(1)),
                SymPoly::constant(Rational::from_integer(1)),
            ],
            geo: Vec::new(),
        },
        IvClosedForm {
            name: "s".into(),
            coeffs: vec![
                SymPoly::zero(),
                SymPoly::constant(rat(1, 2)),
                SymPoly::constant(rat(1, 2)),
            ],
            geo: Vec::new(),
        },
    ]
}

/// Derivation alone: basis construction, exact evaluation matrix, and
/// rational null-space solve for the degree-2 basis over two IVs.
fn bench_derive(c: &mut Criterion) {
    let ivs = running_sum_ivs();
    let config = InvariantConfig::default();
    let sanity = derive_candidates(&ivs, &config);
    assert!(!sanity.is_empty(), "running-sum pair must yield relations");
    let mut group = c.benchmark_group("invariant");
    timing(&mut group);
    group.bench_with_input(BenchmarkId::new("derive", "2iv"), &ivs, |b, ivs| {
        b.iter(|| derive_candidates(ivs, &config))
    });
    group.finish();
}

/// Checking alone: the exact-i128 evaluation of one candidate over
/// realistic seeded histories (4 seeds × 64 observed iterations).
fn bench_check(c: &mut Criterion) {
    let cand = Candidate {
        coeffs: vec![0, 1, 2, -1, 0, 0],
        exps: vec![
            vec![0, 0],
            vec![1, 0],
            vec![0, 1],
            vec![2, 0],
            vec![1, 1],
            vec![0, 2],
        ],
    };
    let seeds: Vec<SeedHistories> = (0..CHECK_SEEDS)
        .map(|_| {
            let index: Vec<i64> = (1..=CHECK_ITERATIONS).collect();
            let sum: Vec<i64> = (1..=CHECK_ITERATIONS).map(|h| h * (h - 1) / 2).collect();
            vec![index, sum]
        })
        .collect();
    assert!(
        check_candidate(&cand, &seeds, 4),
        "bench candidate must verify"
    );
    let mut group = c.benchmark_group("invariant");
    timing(&mut group);
    group.throughput(Throughput::Elements(
        (CHECK_SEEDS as u64) * (CHECK_ITERATIONS as u64),
    ));
    group.bench_with_input(
        BenchmarkId::new("check", CHECK_SEEDS * CHECK_ITERATIONS as usize),
        &seeds,
        |b, seeds| b.iter(|| check_candidate(&cand, seeds, 4)),
    );
    group.finish();
}

/// End to end: batch analysis of an invariant-bearing corpus, exactly as
/// `bivc --invariants` serves it — classification, derivation, and
/// interpreter checking per function.
fn bench_batch(c: &mut Criterion) {
    let funcs: Vec<_> = (0..CORPUS_FUNCTIONS)
        .map(|i| generate(&WorkloadSpec::invariants(2, 0xBEEF + i as u64)).func)
        .collect();
    let opts = BatchOptions {
        jobs: 1,
        ..BatchOptions::default()
    };
    let sanity = analyze_batch(&funcs, &opts);
    let with_invariants = sanity
        .functions
        .iter()
        .flat_map(|f| f.summary.loops.iter())
        .filter(|l| !l.invariants.is_empty())
        .count();
    assert!(with_invariants > 0, "corpus must carry verified invariants");
    let mut group = c.benchmark_group("invariant");
    timing(&mut group);
    group.throughput(Throughput::Elements(CORPUS_FUNCTIONS as u64));
    group.bench_with_input(
        BenchmarkId::new("batch", CORPUS_FUNCTIONS),
        &funcs,
        |b, funcs| b.iter(|| analyze_batch(funcs, &opts)),
    );
    group.finish();
}

criterion_group!(benches, bench_derive, bench_check, bench_batch);

fn main() {
    let mut criterion = Criterion::new();
    benches(&mut criterion);
    criterion.final_summary();
    let path = report::workspace_root().join("BENCH_invariant.json");
    match report::emit_json(&path, "invariant", criterion.measurements(), BASELINES) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
