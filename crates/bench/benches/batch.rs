//! Batch-analysis throughput: the sharded, cached driver against the
//! serial baseline on a 64-function workload corpus. On a machine with
//! ≥ 4 cores the parallel configuration should clear 2× the serial
//! throughput, and the duplicate-heavy corpus shows the structural cache
//! collapsing repeated functions to a single classification.

use std::time::Duration;

use biv_bench::criterion_group;
use biv_bench::harness::{BenchmarkId, Criterion, Throughput};
use biv_bench::report::{self, Baseline};
use biv_core::{analyze_batch, resolve_jobs, BatchOptions};
use biv_workload::{generate_corpus, CorpusSpec};

/// Medians recorded before the PR 2 kernel optimizations (ns/op).
const BASELINES: &[Baseline] = &[
    Baseline {
        id: "batch/jobs/1",
        median_ns: 18_552_961.0,
    },
    Baseline {
        id: "batch_cache/distinct/64",
        median_ns: 18_188_728.0,
    },
    Baseline {
        id: "batch_cache/duplicated/64",
        median_ns: 10_461_620.0,
    },
];

fn timing(group: &mut biv_bench::harness::BenchmarkGroup<'_>) {
    if report::quick_mode() {
        group.measurement_time(Duration::from_millis(300));
        group.warm_up_time(Duration::from_millis(50));
        group.sample_size(5);
    } else {
        group.measurement_time(Duration::from_secs(2));
        group.warm_up_time(Duration::from_millis(400));
        group.sample_size(10);
    }
}

const CORPUS_FUNCTIONS: usize = 64;

fn corpus_spec(duplicate_every: usize) -> CorpusSpec {
    CorpusSpec {
        functions: CORPUS_FUNCTIONS,
        duplicate_every,
        loops: 2,
        trip: 100,
        seed: 0xC0FFEE,
    }
}

/// Serial vs parallel on a corpus of 64 distinct functions.
fn bench_batch_scaling(c: &mut Criterion) {
    let corpus = generate_corpus(&corpus_spec(0));
    let available = resolve_jobs(0);
    let mut group = c.benchmark_group("batch");
    timing(&mut group);
    group.throughput(Throughput::Elements(CORPUS_FUNCTIONS as u64));
    let mut job_counts = vec![1usize];
    if available > 1 {
        job_counts.push(available);
    }
    for jobs in job_counts {
        let opts = BatchOptions {
            jobs,
            ..BatchOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &corpus.funcs, |b, funcs| {
            b.iter(|| analyze_batch(funcs, &opts))
        });
    }
    group.finish();

    // Report the speedup explicitly so the perf trajectory captures it.
    let get = |suffix: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id == format!("batch/jobs/{suffix}"))
            .map(|m| m.mean)
    };
    if let (Some(serial), Some(parallel)) = (get("1"), get(&available.to_string())) {
        if parallel > Duration::ZERO && available > 1 {
            println!(
                "batch speedup on {available} workers: {:.2}x",
                serial.as_secs_f64() / parallel.as_secs_f64()
            );
        }
    }
}

/// The structural cache on a duplicate-heavy corpus (every 2nd function
/// is a structural twin): half the classifications disappear.
fn bench_batch_cache(c: &mut Criterion) {
    let distinct = generate_corpus(&corpus_spec(0));
    let duplicated = generate_corpus(&corpus_spec(2));
    let mut group = c.benchmark_group("batch_cache");
    timing(&mut group);
    group.throughput(Throughput::Elements(CORPUS_FUNCTIONS as u64));
    let opts = BatchOptions {
        jobs: 1,
        ..BatchOptions::default()
    };
    group.bench_with_input(
        BenchmarkId::new("distinct", CORPUS_FUNCTIONS),
        &distinct.funcs,
        |b, funcs| b.iter(|| analyze_batch(funcs, &opts)),
    );
    group.bench_with_input(
        BenchmarkId::new("duplicated", CORPUS_FUNCTIONS),
        &duplicated.funcs,
        |b, funcs| b.iter(|| analyze_batch(funcs, &opts)),
    );
    group.finish();
}

criterion_group!(benches, bench_batch_scaling, bench_batch_cache);

fn main() {
    let mut criterion = Criterion::new();
    benches(&mut criterion);
    criterion.final_summary();
    let path = report::workspace_root().join("BENCH_batch.json");
    match report::emit_json(&path, "batch", criterion.measurements(), BASELINES) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
