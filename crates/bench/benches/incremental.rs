//! Incremental per-nest re-analysis vs whole-function re-analysis under
//! an editing workload.
//!
//! Three measurements per function shape (generated multi-nest linear
//! workloads, same shapes as `kernel.rs`):
//!
//! - `incremental_update` — the headline: one nest's constant is edited
//!   (outside the timed region, chained so every edit produces a region
//!   hash the warm cache has never seen) and `analyze_incremental`
//!   re-analyzes against the warm per-nest cache. Exactly one nest
//!   misses; every other nest splices its cached summary. The routine
//!   returns the mutant so the harness drops it outside the timed
//!   window — input teardown is editor-loop bookkeeping, not analysis
//!   cost.
//! - `full_reanalysis` — the same mutant stream through `analyze_with`,
//!   the whole-function SSA + classification pipeline an editor loop
//!   would otherwise pay per keystroke.
//! - `incremental_noop` — re-analysis of an unchanged function on a warm
//!   cache: pure region-hashing + lookup overhead, the floor of the
//!   incremental path.
//!
//! Emits `BENCH_incremental.json` at the workspace root.
//! `BIV_BENCH_QUICK=1` shrinks times and shapes for CI smoke runs.

use std::cell::RefCell;
use std::time::Duration;

use biv_bench::criterion_group;
use biv_bench::harness::{BatchSize, BenchmarkId, Criterion, Throughput};
use biv_bench::instruction_count;
use biv_bench::report;
use biv_core::incremental::{
    analyze_incremental, perturb_nest_constant, IncrementalState, RegionMap,
};
use biv_core::{analyze_with, AnalysisConfig};
use biv_ir::Function;
use biv_workload::{generate, WorkloadSpec};

fn shape_exps() -> Vec<usize> {
    if report::quick_mode() {
        vec![8, 10]
    } else {
        vec![8, 10, 12, 14]
    }
}

fn timing(group: &mut biv_bench::harness::BenchmarkGroup<'_>) {
    if report::quick_mode() {
        group.measurement_time(Duration::from_millis(200));
        group.warm_up_time(Duration::from_millis(50));
        group.sample_size(5);
    } else {
        group.measurement_time(Duration::from_secs(2));
        group.warm_up_time(Duration::from_millis(400));
        group.sample_size(10);
    }
}

/// A deterministic stream of single-nest edits: each call mutates one
/// constant in the next nest (round robin) of the current function
/// version and advances to it, so every produced version carries a
/// region hash no earlier version had.
struct EditStream {
    current: Function,
    counter: u64,
}

impl EditStream {
    fn new(func: &Function) -> EditStream {
        EditStream {
            current: func.clone(),
            counter: 0,
        }
    }

    fn next_mutant(&mut self) -> Function {
        let regions = RegionMap::compute(&self.current);
        let n = regions.nests.len().max(1);
        // A nest without constants skips its turn; every generated
        // linear workload has constants in every nest, so this loop is
        // one iteration in practice.
        for _ in 0..n {
            let k = (self.counter as usize) % n;
            let pick = self.counter;
            self.counter += 1;
            if let Some(mutated) = perturb_nest_constant(&self.current, &regions, k, pick) {
                self.current = mutated.clone();
                return mutated;
            }
        }
        self.current.clone()
    }
}

fn bench_incremental(c: &mut Criterion) {
    let config = AnalysisConfig::default();

    let mut group = c.benchmark_group("incremental_update");
    timing(&mut group);
    for exp in shape_exps() {
        let target = 1usize << exp;
        let w = generate(&WorkloadSpec::sized_linear(target, 0xBEEF + exp as u64));
        let insts = instruction_count(&w.func);
        let mut state = IncrementalState::new(config);
        analyze_incremental(&w.func, &mut state); // warm every nest
        let state = RefCell::new(state);
        let stream = RefCell::new(EditStream::new(&w.func));
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::new("edit", insts), &w.func, |b, _| {
            b.iter_batched(
                || stream.borrow_mut().next_mutant(),
                |mutant| {
                    let stats = analyze_incremental(&mutant, &mut state.borrow_mut()).stats;
                    // Return the mutant so its teardown (a 15k-inst
                    // function's worth of heap frees at the largest
                    // shape) lands outside the timed window.
                    (stats, mutant)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("full_reanalysis");
    timing(&mut group);
    for exp in shape_exps() {
        let target = 1usize << exp;
        let w = generate(&WorkloadSpec::sized_linear(target, 0xBEEF + exp as u64));
        let insts = instruction_count(&w.func);
        let stream = RefCell::new(EditStream::new(&w.func));
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::new("edit", insts), &w.func, |b, _| {
            b.iter_batched(
                || stream.borrow_mut().next_mutant(),
                |mutant| {
                    let n = analyze_with(&mutant, config).loops().count();
                    (n, mutant)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("incremental_noop");
    timing(&mut group);
    for exp in shape_exps() {
        let target = 1usize << exp;
        let w = generate(&WorkloadSpec::sized_linear(target, 0xBEEF + exp as u64));
        let insts = instruction_count(&w.func);
        let mut state = IncrementalState::new(config);
        analyze_incremental(&w.func, &mut state);
        let state = RefCell::new(state);
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::new("reanalyze", insts), &w.func, |b, func| {
            b.iter(|| analyze_incremental(func, &mut state.borrow_mut()).stats)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);

fn main() {
    let mut criterion = Criterion::new();
    benches(&mut criterion);
    criterion.final_summary();
    let path = report::workspace_root().join("BENCH_incremental.json");
    match report::emit_json(&path, "incremental", criterion.measurements(), &[]) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
