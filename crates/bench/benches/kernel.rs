//! The classification kernel in isolation: parse + SSA + loop forest are
//! built once per shape, and only `classify_loop` over the loop forest is
//! timed. This is the per-function hot path PR 2 optimizes (dense entity
//! maps + SymPoly interning), measured on the same `scaling.rs` shapes so
//! the trajectory is comparable across PRs.
//!
//! Emits `BENCH_kernel.json` at the workspace root (median ns/op,
//! throughput, and speedup against the recorded pre-optimization
//! baseline). `BIV_BENCH_QUICK=1` shrinks times and the shape sweep for
//! CI smoke runs.

use std::time::Duration;

use biv_bench::criterion_group;
use biv_bench::harness::{BenchmarkId, Criterion, Throughput};
use biv_bench::instruction_count;
use biv_bench::report::{self, Baseline};
use biv_core::{classify_loop, AnalysisConfig};
use biv_ir::dom::DomTree;
use biv_ir::loops::LoopForest;
use biv_ssa::SsaFunction;
use biv_workload::{generate, WorkloadSpec};

/// Medians measured at the commit before the dense-map + interning
/// sweep, on the same shapes (ns/op). Recorded so the emitted JSON
/// carries its own before/after comparison.
const BASELINES: &[Baseline] = &[
    Baseline {
        id: "kernel_linear/classify/196",
        median_ns: 158_821.0,
    },
    Baseline {
        id: "kernel_linear/classify/882",
        median_ns: 723_994.0,
    },
    Baseline {
        id: "kernel_linear/classify/3822",
        median_ns: 3_060_919.0,
    },
    Baseline {
        id: "kernel_linear/classify/15386",
        median_ns: 13_015_054.0,
    },
    Baseline {
        id: "kernel_mixed/classify/688",
        median_ns: 688_661.0,
    },
    Baseline {
        id: "kernel_mixed/classify/2752",
        median_ns: 3_015_621.0,
    },
];

fn shape_exps() -> Vec<usize> {
    if report::quick_mode() {
        vec![8, 10]
    } else {
        vec![8, 10, 12, 14]
    }
}

fn timing(group: &mut biv_bench::harness::BenchmarkGroup<'_>) {
    if report::quick_mode() {
        group.measurement_time(Duration::from_millis(200));
        group.warm_up_time(Duration::from_millis(50));
        group.sample_size(5);
    } else {
        group.measurement_time(Duration::from_secs(2));
        group.warm_up_time(Duration::from_millis(400));
        group.sample_size(10);
    }
}

/// `classify_loop` alone over the linear-chain shapes: one big loop of
/// linear inductions, the regime where per-value table overhead
/// dominates.
fn bench_kernel_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_linear");
    timing(&mut group);
    for exp in shape_exps() {
        let target = 1usize << exp;
        let w = generate(&WorkloadSpec::sized_linear(target, 0xBEEF + exp as u64));
        let insts = instruction_count(&w.func);
        let ssa = SsaFunction::build(&w.func);
        let dom = DomTree::compute(ssa.func());
        let forest = LoopForest::compute(ssa.func(), &dom);
        let order = forest.inner_to_outer();
        let config = AnalysisConfig::default();
        let empty = biv_ir::EntityMap::new();
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::new("classify", insts), &ssa, |b, ssa| {
            b.iter(|| {
                let mut total = 0usize;
                for &l in &order {
                    total += classify_loop(ssa, &forest, l, &empty, &config).len();
                }
                total
            })
        });
    }
    group.finish();
}

/// The mixed workload (every variable class present): exercises the
/// wrap-around / periodic / polynomial paths and their SymPoly traffic.
fn bench_kernel_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_mixed");
    timing(&mut group);
    let scales: &[usize] = if report::quick_mode() {
        &[4]
    } else {
        &[16, 64]
    };
    for &scale in scales {
        let w = generate(&WorkloadSpec::mixed(scale, 0xCAFE + scale as u64));
        let insts = instruction_count(&w.func);
        let ssa = SsaFunction::build(&w.func);
        let dom = DomTree::compute(ssa.func());
        let forest = LoopForest::compute(ssa.func(), &dom);
        let order = forest.inner_to_outer();
        let config = AnalysisConfig::default();
        let empty = biv_ir::EntityMap::new();
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::new("classify", insts), &ssa, |b, ssa| {
            b.iter(|| {
                let mut total = 0usize;
                for &l in &order {
                    total += classify_loop(ssa, &forest, l, &empty, &config).len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_linear, bench_kernel_mixed);

fn main() {
    let mut criterion = Criterion::new();
    benches(&mut criterion);
    criterion.final_summary();
    let path = report::workspace_root().join("BENCH_kernel.json");
    match report::emit_json(&path, "kernel", criterion.measurements(), BASELINES) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
