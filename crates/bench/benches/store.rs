//! Durable-store benchmark: cold analysis that writes every summary
//! through to disk, against a warm restart that serves the same corpus
//! from the persisted record log. The gap is the paper's analysis cost;
//! the warm number is what a `bivd --cache-dir` restart pays. The
//! emitted `BENCH_store.json` carries both timings plus the measured
//! warm disk-hit rate.

use std::cell::Cell;
use std::path::PathBuf;
use std::time::Duration;

use biv_bench::criterion_group;
use biv_bench::harness::{BenchmarkId, Criterion, Throughput};
use biv_bench::report::{self, Baseline};
use biv_core::{analyze_batch_with_backend, BatchOptions, Budget, CacheBackend};
use biv_store::{StoreOptions, TieredCache};
use biv_workload::{generate_corpus, CorpusSpec};

/// A new subsystem has no pre-change medians to compare against.
const BASELINES: &[Baseline] = &[];

const CORPUS_FUNCTIONS: usize = 64;

fn timing(group: &mut biv_bench::harness::BenchmarkGroup<'_>) {
    if report::quick_mode() {
        group.measurement_time(Duration::from_millis(300));
        group.warm_up_time(Duration::from_millis(50));
        group.sample_size(5);
    } else {
        group.measurement_time(Duration::from_secs(2));
        group.warm_up_time(Duration::from_millis(400));
        group.sample_size(10);
    }
}

fn corpus_spec() -> CorpusSpec {
    CorpusSpec {
        functions: CORPUS_FUNCTIONS,
        duplicate_every: 0,
        loops: 2,
        trip: 100,
        seed: 0xC0FFEE,
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("biv-bench-store-{tag}-{}", std::process::id()))
}

fn batch_opts() -> BatchOptions {
    BatchOptions {
        jobs: 1,
        ..BatchOptions::default()
    }
}

/// Cold: every iteration starts from an empty directory, analyzes the
/// whole corpus, and writes every summary through to a fresh log —
/// analysis cost plus full store-write overhead.
fn bench_store_cold(c: &mut Criterion) {
    let corpus = generate_corpus(&corpus_spec());
    let options = StoreOptions::for_budget(&Budget::UNLIMITED);
    let mut group = c.benchmark_group("store");
    timing(&mut group);
    group.throughput(Throughput::Elements(CORPUS_FUNCTIONS as u64));
    let iteration = Cell::new(0u64);
    group.bench_with_input(
        BenchmarkId::new("cold", CORPUS_FUNCTIONS),
        &corpus.funcs,
        |b, funcs| {
            b.iter(|| {
                let dir = bench_dir(&format!("cold-{}", iteration.get()));
                iteration.set(iteration.get() + 1);
                let mut tiered = TieredCache::open(&dir, 4096, &options).expect("open cold store");
                let report = analyze_batch_with_backend(funcs, &batch_opts(), &mut tiered);
                tiered.flush().expect("flush");
                std::fs::remove_dir_all(&dir).ok();
                report
            })
        },
    );
    group.finish();
}

/// Warm: the store is populated once; every iteration reopens it with
/// an empty memory tier and serves the whole corpus from disk. This is
/// the restart path — decode instead of analyze.
fn bench_store_warm(c: &mut Criterion) {
    let corpus = generate_corpus(&corpus_spec());
    let options = StoreOptions::for_budget(&Budget::UNLIMITED);
    let dir = bench_dir("warm");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut tiered = TieredCache::open(&dir, 4096, &options).expect("populate store");
        analyze_batch_with_backend(&corpus.funcs, &batch_opts(), &mut tiered);
        tiered.flush().expect("flush");
    }
    let mut group = c.benchmark_group("store");
    timing(&mut group);
    group.throughput(Throughput::Elements(CORPUS_FUNCTIONS as u64));
    group.bench_with_input(
        BenchmarkId::new("warm", CORPUS_FUNCTIONS),
        &corpus.funcs,
        |b, funcs| {
            b.iter(|| {
                let mut tiered = TieredCache::open(&dir, 4096, &options).expect("open warm store");
                analyze_batch_with_backend(funcs, &batch_opts(), &mut tiered)
            })
        },
    );
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_store_cold, bench_store_warm);

/// One uninstrumented warm pass to measure the disk-hit rate the bench
/// loop exercises: distinct corpus + empty memory tier means every
/// function should be served by the durable tier.
fn measured_hit_rate() -> f64 {
    let corpus = generate_corpus(&corpus_spec());
    let options = StoreOptions::for_budget(&Budget::UNLIMITED);
    let dir = bench_dir("hitrate");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut tiered = TieredCache::open(&dir, 4096, &options).expect("populate");
        analyze_batch_with_backend(&corpus.funcs, &batch_opts(), &mut tiered);
        tiered.flush().expect("flush");
    }
    let mut tiered = TieredCache::open(&dir, 4096, &options).expect("reopen");
    let report = analyze_batch_with_backend(&corpus.funcs, &batch_opts(), &mut tiered);
    let gauges = tiered.store_gauges().expect("store gauges");
    std::fs::remove_dir_all(&dir).ok();
    gauges.disk_hits as f64 / report.stats.functions.max(1) as f64
}

fn main() {
    let mut criterion = Criterion::new();
    benches(&mut criterion);
    criterion.final_summary();
    let hit_rate = measured_hit_rate();
    println!("warm disk hit rate: {:.3}", hit_rate);
    let path = report::workspace_root().join("BENCH_store.json");
    match report::emit_json_with_extras(
        &path,
        "store",
        criterion.measurements(),
        BASELINES,
        &[("warm_hit_rate", hit_rate)],
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
