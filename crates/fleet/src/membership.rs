//! Fleet membership: versioned views, gossip, incarnation refutation,
//! and the cluster agent that plugs them into a running `bivd`.
//!
//! Every shard runs a [`Membership`] state machine holding one *view*:
//! for each shard, its endpoint, an *incarnation* number, and a
//! liveness state ([`MemberState`]). Shards exchange views over the
//! existing frame protocol (`gossip` frames, see `biv_server::proto`):
//! each heartbeat a shard sends its view to every known peer plus any
//! configured seed it has not met yet, and merges the reply. Routers
//! bootstrap the same way — one `members` request to any live seed
//! yields the whole ring.
//!
//! Merge precedence, per member record:
//!
//! 1. the **higher incarnation** wins outright (endpoint included — a
//!    restarted shard may come back on a new port);
//! 2. at equal incarnation the **higher-rank state** wins, with rank
//!    `Alive < Draining < Suspect < Dead` — suspicion spreads without
//!    the suspect's cooperation, but can only be undone by…
//! 3. **refutation**: a shard that sees *itself* recorded as suspect or
//!    dead bumps its own incarnation past the accusation and re-asserts
//!    `Alive` (or `Draining` while shutting down). Incarnations are
//!    seeded from wall-clock milliseconds, so a restarted process
//!    naturally outranks every record of its previous life and reclaims
//!    its shard id without operator help.
//!
//! Failure detection is timeout-driven: a member not heard from within
//! `suspect_after` becomes `Suspect`, and within `dead_after` becomes
//! `Dead` — both are same-incarnation rank-ups, so they gossip through
//! the fleet without coordination. Rejoin (a record replaced by a
//! fresher `Alive`) triggers the automatic rebalance: every shard on
//! the rejoining shard's arc-successor set — exactly the shards that
//! absorbed its key ranges while it was away — hands its store snapshot
//! over with a `preload` frame. The snapshot is a superset of the moved
//! ranges, which is harmless: summaries are pure functions of the
//! structural hash, so preloading an unrelated entry can never change
//! output bytes, only warm a cache.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use biv_core::StructuralSummary;
use biv_server::{Client, ClusterHandle, ClusterHook, Endpoint, Json, Request, Response};

use crate::faults;
use crate::replicate::Replicator;
use crate::ring::{content_key, Ring};

/// Liveness of one fleet member, ordered by precedence rank: at equal
/// incarnation a higher-rank claim overrides a lower one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Heartbeating normally; routable.
    Alive,
    /// Announced shutdown; finish in-flight work, route new work away.
    Draining,
    /// Missed heartbeats; still counted while the fleet decides.
    Suspect,
    /// Timed out (or drained away); excluded from routing until a
    /// fresher incarnation refutes.
    Dead,
}

impl MemberState {
    fn rank(self) -> u8 {
        match self {
            MemberState::Alive => 0,
            MemberState::Draining => 1,
            MemberState::Suspect => 2,
            MemberState::Dead => 3,
        }
    }

    /// Wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            MemberState::Alive => "alive",
            MemberState::Draining => "draining",
            MemberState::Suspect => "suspect",
            MemberState::Dead => "dead",
        }
    }

    /// Parses a wire name.
    pub fn parse(text: &str) -> Option<MemberState> {
        match text {
            "alive" => Some(MemberState::Alive),
            "draining" => Some(MemberState::Draining),
            "suspect" => Some(MemberState::Suspect),
            "dead" => Some(MemberState::Dead),
            _ => None,
        }
    }
}

/// One shard's record in a membership view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Which ring position this record describes.
    pub shard_id: u32,
    /// Where the shard listens (`tcp:ADDR` or a Unix socket path).
    pub endpoint: String,
    /// Monotonic per-process-lifetime epoch; higher refutes lower.
    pub incarnation: u64,
    /// Current liveness claim.
    pub state: MemberState,
}

impl Member {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shard_id", Json::Int(i64::from(self.shard_id))),
            ("endpoint", Json::Str(self.endpoint.clone())),
            ("incarnation", Json::Int(self.incarnation as i64)),
            ("state", Json::Str(self.state.as_str().to_string())),
        ])
    }

    fn from_json(json: &Json) -> Result<Member, String> {
        let shard_id = json
            .get("shard_id")
            .and_then(Json::as_i64)
            .ok_or("member missing shard_id")?;
        let endpoint = json
            .get("endpoint")
            .and_then(Json::as_str)
            .ok_or("member missing endpoint")?;
        let incarnation = json
            .get("incarnation")
            .and_then(Json::as_i64)
            .ok_or("member missing incarnation")?;
        let state = json
            .get("state")
            .and_then(Json::as_str)
            .and_then(MemberState::parse)
            .ok_or("member missing state")?;
        Ok(Member {
            shard_id: u32::try_from(shard_id).map_err(|_| "shard_id out of range")?,
            endpoint: endpoint.to_string(),
            incarnation: incarnation as u64,
            state,
        })
    }
}

/// A versioned membership view: everything a router needs to build the
/// ring and route around dead shards, learnable from any one member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Bumped on every local change; merged views take the max plus one
    /// so versions stay quasi-monotonic across the fleet.
    pub version: u64,
    /// Ring size the fleet was launched with (fixed for its lifetime).
    pub shard_count: u32,
    /// Replication factor R: each key lives on its primary plus the
    /// next R−1 distinct ring successors.
    pub replication: u32,
    /// One record per shard met so far, sorted by shard id.
    pub members: Vec<Member>,
}

impl View {
    /// Encodes the view for a gossip/members frame.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::Int(self.version as i64)),
            ("shard_count", Json::Int(i64::from(self.shard_count))),
            ("replication", Json::Int(i64::from(self.replication))),
            (
                "members",
                Json::Arr(self.members.iter().map(Member::to_json).collect()),
            ),
        ])
    }

    /// Decodes a view from a gossip/members frame.
    pub fn from_json(json: &Json) -> Result<View, String> {
        let version = json
            .get("version")
            .and_then(Json::as_i64)
            .ok_or("view missing version")?;
        let shard_count = json
            .get("shard_count")
            .and_then(Json::as_i64)
            .ok_or("view missing shard_count")?;
        let replication = json.get("replication").and_then(Json::as_i64).unwrap_or(1);
        let members = json
            .get("members")
            .and_then(Json::as_arr)
            .ok_or("view missing members")?
            .iter()
            .map(Member::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(View {
            version: version as u64,
            shard_count: u32::try_from(shard_count).map_err(|_| "shard_count out of range")?,
            replication: u32::try_from(replication.max(1)).unwrap_or(1),
            members,
        })
    }

    /// The member record for one shard, if met.
    pub fn member(&self, shard_id: u32) -> Option<&Member> {
        self.members.iter().find(|m| m.shard_id == shard_id)
    }
}

/// Static parameters of one shard's membership state machine.
#[derive(Debug, Clone)]
pub struct MembershipConfig {
    /// This shard's ring position.
    pub shard_id: u32,
    /// Ring size.
    pub shard_count: u32,
    /// Replication factor carried in the view.
    pub replication: u32,
    /// This shard's advertised endpoint.
    pub endpoint: String,
    /// Silence before an `Alive` member becomes `Suspect`.
    pub suspect_after: Duration,
    /// Silence before a `Suspect`/`Draining` member becomes `Dead`.
    pub dead_after: Duration,
}

struct Inner {
    view: View,
    last_heard: HashMap<u32, Instant>,
    joins: Vec<u32>,
    draining: bool,
}

/// One shard's membership state machine. Pure state — all I/O lives in
/// the agent — so merge, refutation, and timeout behavior are directly
/// unit-testable with synthetic clocks.
pub struct Membership {
    config: MembershipConfig,
    inner: Mutex<Inner>,
}

impl Membership {
    /// Seeds the view with this shard alone, `Alive` at a wall-clock
    /// incarnation (so any future restart outranks this lifetime).
    pub fn new(config: MembershipConfig) -> Membership {
        let incarnation = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(1);
        let me = Member {
            shard_id: config.shard_id,
            endpoint: config.endpoint.clone(),
            incarnation,
            state: MemberState::Alive,
        };
        let inner = Mutex::new(Inner {
            view: View {
                version: 1,
                shard_count: config.shard_count,
                replication: config.replication,
                members: vec![me],
            },
            last_heard: HashMap::new(),
            joins: Vec::new(),
            draining: false,
        });
        Membership { config, inner }
    }

    /// A copy of the current view.
    pub fn snapshot(&self) -> View {
        self.inner.lock().unwrap().view.clone()
    }

    /// Merges a peer's view at time `now`. `from` names the shard we
    /// heard it from *directly* (refreshing its liveness clock);
    /// forwarded records refresh only when they carry fresher `Alive`
    /// information, so third-hand staleness cannot keep a dead shard
    /// looking alive. Returns whether anything changed.
    pub fn observe(&self, remote: &View, from: Option<u32>, now: Instant) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let mut changed = false;
        {
            let Inner {
                view,
                last_heard,
                joins,
                ..
            } = &mut *inner;
            for m in &remote.members {
                if m.shard_id >= self.config.shard_count {
                    continue; // a misconfigured peer cannot grow our ring
                }
                match view.members.iter_mut().find(|x| x.shard_id == m.shard_id) {
                    None => {
                        last_heard.insert(m.shard_id, now);
                        view.members.push(m.clone());
                        view.members.sort_by_key(|x| x.shard_id);
                        changed = true;
                    }
                    Some(ours) => {
                        let wins = m.incarnation > ours.incarnation
                            || (m.incarnation == ours.incarnation
                                && m.state.rank() > ours.state.rank());
                        if !wins {
                            continue;
                        }
                        // A record coming back `Alive` from any worse
                        // state is a (re)join — remember it so the agent
                        // can trigger the snapshot handoff.
                        let rejoined = m.state == MemberState::Alive
                            && ours.state != MemberState::Alive
                            && m.shard_id != self.config.shard_id;
                        *ours = m.clone();
                        if m.state == MemberState::Alive {
                            last_heard.insert(m.shard_id, now);
                        }
                        if rejoined && !joins.contains(&m.shard_id) {
                            joins.push(m.shard_id);
                        }
                        changed = true;
                    }
                }
            }
            if let Some(id) = from {
                last_heard.insert(id, now);
            }
        }
        changed |= Membership::assert_self(&self.config, &mut inner);
        if changed {
            inner.view.version = inner.view.version.max(remote.version) + 1;
        }
        changed
    }

    /// Re-asserts our own record after a merge: refute any outranking
    /// claim about us (suspect/dead, or a stale endpoint) by bumping the
    /// incarnation past it.
    fn assert_self(config: &MembershipConfig, inner: &mut Inner) -> bool {
        let desired = if inner.draining {
            MemberState::Draining
        } else {
            MemberState::Alive
        };
        let me = inner
            .view
            .members
            .iter_mut()
            .find(|m| m.shard_id == config.shard_id)
            .expect("own record is inserted at construction and never removed");
        if me.endpoint != config.endpoint || me.state.rank() > desired.rank() {
            // The merge kept the highest-precedence claim, so one past
            // its incarnation outranks everything the fleet has seen.
            me.incarnation += 1;
            me.endpoint = config.endpoint.clone();
            me.state = desired;
            true
        } else if me.state.rank() < desired.rank() {
            // Alive -> Draining is a rank-up: wins at the same
            // incarnation, no bump needed.
            me.state = desired;
            true
        } else {
            false
        }
    }

    /// Applies failure-detection timeouts at time `now`: silent `Alive`
    /// members become `Suspect` after `suspect_after`, and `Suspect`/
    /// `Draining` members become `Dead` after `dead_after`. Returns
    /// whether anything changed.
    pub fn tick(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Inner {
            view, last_heard, ..
        } = &mut *inner;
        let mut changed = false;
        for m in view.members.iter_mut() {
            if m.shard_id == self.config.shard_id {
                continue;
            }
            let heard = *last_heard.entry(m.shard_id).or_insert(now);
            let silent = now.saturating_duration_since(heard);
            let next = match m.state {
                MemberState::Alive if silent >= self.config.suspect_after => {
                    Some(MemberState::Suspect)
                }
                MemberState::Suspect | MemberState::Draining
                    if silent >= self.config.dead_after =>
                {
                    Some(MemberState::Dead)
                }
                _ => None,
            };
            if let Some(state) = next {
                m.state = state; // same incarnation: a rank-up, gossips through
                changed = true;
            }
        }
        if changed {
            view.version += 1;
        }
        changed
    }

    /// Marks this shard `Draining` (idempotent). Peers merge the
    /// rank-up; a later restart refutes it with a fresh incarnation.
    pub fn note_draining(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.draining {
            return;
        }
        inner.draining = true;
        if Membership::assert_self(&self.config, &mut inner) {
            inner.view.version += 1;
        }
    }

    /// Drains the pending (re)join transitions observed since the last
    /// call — the agent turns each into a snapshot handoff.
    pub fn take_joins(&self) -> Vec<u32> {
        std::mem::take(&mut self.inner.lock().unwrap().joins)
    }

    /// The endpoint of a shard currently believed `Alive`.
    pub fn endpoint_of(&self, shard_id: u32) -> Option<String> {
        let inner = self.inner.lock().unwrap();
        inner
            .view
            .member(shard_id)
            .filter(|m| m.state == MemberState::Alive)
            .map(|m| m.endpoint.clone())
    }

    /// Where to deliver a replica batch bound for `shard_id`, by the
    /// current view. The three-way answer matters: treating an unmet
    /// shard like a dead one would silently count an undelivered batch
    /// as replicated.
    pub fn delivery(&self, shard_id: u32) -> Delivery {
        let inner = self.inner.lock().unwrap();
        match inner.view.member(shard_id) {
            // A suspect or draining member may well still be alive:
            // send, and let a real failure surface as a retry.
            Some(m) if m.state != MemberState::Dead => Delivery::Send(m.endpoint.clone()),
            // Dead is a settled verdict — skip; the rejoin snapshot
            // handoff warms the shard when it comes back.
            Some(_) => Delivery::SkipDead,
            // Not in the view yet (membership still converging): the
            // batch is undeliverable *so far* and must be retried.
            None => Delivery::Unmet,
        }
    }

    /// Who to gossip to this round: every other member met so far (dead
    /// ones included — a wrongly-declared peer can only refute us if we
    /// keep talking to it, and a truly dead one refuses the connect
    /// cheaply) plus any configured seed not in the view yet.
    pub fn gossip_targets(&self, seeds: &[String]) -> Vec<(Option<u32>, String)> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<(Option<u32>, String)> = inner
            .view
            .members
            .iter()
            .filter(|m| m.shard_id != self.config.shard_id)
            .map(|m| (Some(m.shard_id), m.endpoint.clone()))
            .collect();
        for seed in seeds {
            let known = *seed == self.config.endpoint
                || inner.view.members.iter().any(|m| m.endpoint == *seed);
            if !known {
                out.push((None, seed.clone()));
            }
        }
        out
    }
}

/// [`Membership::delivery`]'s verdict for one replica target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver to this endpoint (member met and not known dead).
    Send(String),
    /// Member is `Dead`: skip it, the rejoin handoff covers it.
    SkipDead,
    /// Shard not met yet: the batch is undeliverable for now — retry.
    Unmet,
}

/// Everything needed to run a shard's cluster agent: identity, timing,
/// seed peers, and the replication/rebalance knobs.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// This shard's ring position.
    pub shard_id: u32,
    /// Ring size.
    pub shard_count: u32,
    /// Replication factor R (1 = primary only, no replica traffic).
    pub replication: u32,
    /// Advertised endpoint (what peers and routers dial).
    pub endpoint: String,
    /// Peer endpoints to bootstrap from; one live seed suffices.
    pub seeds: Vec<String>,
    /// Gossip period.
    pub heartbeat: Duration,
    /// Silence before `Suspect`.
    pub suspect_after: Duration,
    /// Silence before `Dead`.
    pub dead_after: Duration,
    /// This shard's store directory — the snapshot handed over on
    /// join/leave rebalance. `None` disables handoff.
    pub cache_dir: Option<PathBuf>,
    /// Whether membership transitions trigger snapshot handoffs.
    pub auto_rebalance: bool,
    /// Bound on queued replication batches (oldest dropped beyond it).
    pub replica_queue_cap: usize,
    /// Send attempts per replication batch before it is dropped.
    pub replica_max_retries: u32,
}

impl AgentConfig {
    /// Defaults: R=2, 250 ms heartbeat, suspect at 1 s, dead at 4 s,
    /// auto-rebalance on, no store directory. The retry budget is sized
    /// so a batch enqueued while membership is still converging (its
    /// replica unmet, so undeliverable) survives several heartbeat
    /// rounds of backoff instead of being dropped.
    pub fn new(shard_id: u32, shard_count: u32, endpoint: String) -> AgentConfig {
        AgentConfig {
            shard_id,
            shard_count,
            replication: 2,
            endpoint,
            seeds: Vec::new(),
            heartbeat: Duration::from_millis(250),
            suspect_after: Duration::from_millis(1_000),
            dead_after: Duration::from_millis(4_000),
            cache_dir: None,
            auto_rebalance: true,
            replica_queue_cap: 1024,
            replica_max_retries: 10,
        }
    }

    /// Rescales the timeout ladder off one heartbeat period: suspect at
    /// 4 beats, dead at 16.
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> AgentConfig {
        self.heartbeat = heartbeat;
        self.suspect_after = heartbeat * 4;
        self.dead_after = heartbeat * 16;
        self
    }
}

/// The running agent: owns the membership state machine and the
/// replicator, implements the server's [`ClusterHook`], and drives the
/// gossip loop.
pub struct ClusterAgent {
    membership: Arc<Membership>,
    replicator: Arc<Replicator>,
    ring: Ring,
    config: AgentConfig,
}

impl ClusterAgent {
    /// Builds the agent and starts its gossip and replication threads.
    /// Both exit shortly after `shutdown` flips. The returned handle
    /// goes into the server via `Server::install_cluster`.
    pub fn spawn(
        config: AgentConfig,
        shutdown: &'static AtomicBool,
    ) -> (ClusterHandle, Vec<JoinHandle<()>>) {
        let ring = Ring::new(config.shard_count);
        let membership = Arc::new(Membership::new(MembershipConfig {
            shard_id: config.shard_id,
            shard_count: config.shard_count,
            replication: config.replication,
            endpoint: config.endpoint.clone(),
            suspect_after: config.suspect_after,
            dead_after: config.dead_after,
        }));
        let replicator = Arc::new(Replicator::new(
            config.shard_id,
            config.replication,
            ring.clone(),
            Arc::clone(&membership),
            config.replica_queue_cap,
            config.replica_max_retries,
        ));
        let agent = Arc::new(ClusterAgent {
            membership,
            replicator: Arc::clone(&replicator),
            ring,
            config,
        });
        let mut handles = Vec::new();
        {
            let agent = Arc::clone(&agent);
            handles.push(
                std::thread::Builder::new()
                    .name("biv-gossip".to_string())
                    .spawn(move || agent.gossip_loop(shutdown))
                    .expect("spawn gossip thread"),
            );
        }
        handles.push(
            std::thread::Builder::new()
                .name("biv-replicate".to_string())
                .spawn(move || replicator.run(shutdown))
                .expect("spawn replication thread"),
        );
        (ClusterHandle::new(agent), handles)
    }

    /// The membership state machine (exposed for in-process tests).
    pub fn membership(&self) -> &Arc<Membership> {
        &self.membership
    }

    fn io_timeout(&self) -> Duration {
        self.config.heartbeat.max(Duration::from_millis(100))
    }

    fn gossip_loop(&self, shutdown: &AtomicBool) {
        loop {
            if shutdown.load(Ordering::SeqCst) {
                // Drain has begun. Broadcast `draining` now — before the
                // server finishes flushing — so routers stop handing us
                // new work; `on_drained` does the snapshot handoff later.
                self.membership.note_draining();
                self.push_view();
                return;
            }
            std::thread::sleep(self.config.heartbeat);
            self.membership.tick(Instant::now());
            for (id, endpoint) in self.membership.gossip_targets(&self.config.seeds) {
                // A lost heartbeat (or a partitioned pair) skips the
                // send; the timeout ladder tolerates several in a row.
                if faults::fire("fleet.heartbeat.lost") || faults::fire("fleet.partition") {
                    continue;
                }
                self.gossip_once(id, &endpoint);
            }
            self.handoff_joins();
        }
    }

    /// One gossip exchange: send our view, merge the peer's reply.
    fn gossip_once(&self, peer: Option<u32>, endpoint: &str) {
        let request = Request::Gossip {
            from: Some(self.config.shard_id),
            view: self.membership.snapshot().to_json(),
        };
        let Ok(mut client) = Client::connect_timeout(&Endpoint::parse(endpoint), self.io_timeout())
        else {
            return;
        };
        if let Ok(Response::Gossip { view } | Response::Members { view }) = client.request(&request)
        {
            if let Ok(view) = View::from_json(&view) {
                self.membership.observe(&view, peer, Instant::now());
            }
        }
    }

    /// Pushes our view to every target once (shutdown/departure path).
    fn push_view(&self) {
        for (id, endpoint) in self.membership.gossip_targets(&self.config.seeds) {
            self.gossip_once(id, &endpoint);
        }
    }

    /// Hands our store snapshot to every shard that just (re)joined on
    /// an arc we cover. Best-effort: the preload only sees what the
    /// donor has flushed to disk, and anything newer reaches the joiner
    /// through normal replication; a missed entry costs a recompute,
    /// never a byte of output.
    fn handoff_joins(&self) {
        let joins = self.membership.take_joins();
        if joins.is_empty() || !self.config.auto_rebalance {
            return;
        }
        let Some(dir) = &self.config.cache_dir else {
            return;
        };
        for joined in joins {
            if joined == self.config.shard_id
                || !self
                    .ring
                    .arc_successors(joined)
                    .contains(&self.config.shard_id)
            {
                continue;
            }
            let Some(endpoint) = self.membership.endpoint_of(joined) else {
                continue;
            };
            self.preload_into(&endpoint, dir, "join");
        }
    }

    /// Departure: announce `draining`, then hand our snapshot to the
    /// arc successors that absorb our ranges. Runs after the server has
    /// flushed the store, so the snapshot on disk is complete.
    fn depart(&self) {
        self.membership.note_draining();
        self.push_view();
        if !self.config.auto_rebalance {
            return;
        }
        let Some(dir) = &self.config.cache_dir else {
            return;
        };
        for successor in self.ring.arc_successors(self.config.shard_id) {
            let Some(endpoint) = self.membership.endpoint_of(successor) else {
                continue;
            };
            self.preload_into(&endpoint, dir, "leave");
        }
    }

    fn preload_into(&self, endpoint: &str, dir: &std::path::Path, why: &str) {
        let request = Request::Preload {
            dir: dir.display().to_string(),
        };
        match Client::connect_timeout(&Endpoint::parse(endpoint), Duration::from_secs(5))
            .and_then(|mut c| c.request(&request))
        {
            Ok(Response::PreloadAck { loaded }) => {
                eprintln!(
                    "bivd: shard {} rebalance ({why}): handed {loaded} entries to {endpoint}",
                    self.config.shard_id
                );
            }
            Ok(_) | Err(_) => {
                eprintln!(
                    "bivd: shard {} rebalance ({why}): handoff to {endpoint} failed (will warm via replication)",
                    self.config.shard_id
                );
            }
        }
    }
}

impl ClusterHook for ClusterAgent {
    fn on_gossip(&self, from: Option<u32>, view: &Json) -> Json {
        if let Ok(view) = View::from_json(view) {
            self.membership.observe(&view, from, Instant::now());
        }
        self.membership.snapshot().to_json()
    }

    fn view(&self) -> Json {
        self.membership.snapshot().to_json()
    }

    fn on_commit(&self, source: &str, entries: &[(u64, Arc<StructuralSummary>)]) {
        if self.config.replication <= 1 || entries.is_empty() {
            return;
        }
        self.replicator.enqueue(content_key(source), entries);
    }

    fn stats_sections(&self) -> Vec<(String, Json)> {
        vec![
            (
                "membership".to_string(),
                self.membership.snapshot().to_json(),
            ),
            ("replication".to_string(), self.replicator.stats_json()),
        ]
    }

    fn on_drained(&self) {
        self.depart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(shard_id: u32, endpoint: &str) -> MembershipConfig {
        MembershipConfig {
            shard_id,
            shard_count: 3,
            replication: 2,
            endpoint: endpoint.to_string(),
            suspect_after: Duration::from_millis(1_000),
            dead_after: Duration::from_millis(4_000),
        }
    }

    /// One bidirectional gossip exchange between two state machines,
    /// exactly as the wire does it: a sends its view, b merges and
    /// replies, a merges the reply.
    fn exchange(a: &Membership, b: &Membership, now: Instant) {
        let (a_id, b_id) = (a.config.shard_id, b.config.shard_id);
        b.observe(&a.snapshot(), Some(a_id), now);
        a.observe(&b.snapshot(), Some(b_id), now);
    }

    #[test]
    fn view_json_roundtrips() {
        let view = View {
            version: 7,
            shard_count: 3,
            replication: 2,
            members: vec![
                Member {
                    shard_id: 0,
                    endpoint: "tcp:127.0.0.1:4000".into(),
                    incarnation: 10,
                    state: MemberState::Alive,
                },
                Member {
                    shard_id: 2,
                    endpoint: "/tmp/s2.sock".into(),
                    incarnation: 11,
                    state: MemberState::Suspect,
                },
            ],
        };
        assert_eq!(View::from_json(&view.to_json()).unwrap(), view);
    }

    #[test]
    fn one_exchange_teaches_both_sides_the_other() {
        let a = Membership::new(config(0, "ep-a"));
        let b = Membership::new(config(1, "ep-b"));
        exchange(&a, &b, Instant::now());
        assert_eq!(a.snapshot().members.len(), 2);
        assert_eq!(b.snapshot().members.len(), 2);
        assert_eq!(a.endpoint_of(1).as_deref(), Some("ep-b"));
        assert_eq!(b.endpoint_of(0).as_deref(), Some("ep-a"));
    }

    #[test]
    fn one_seed_discovers_the_whole_ring() {
        // c knows only a; a already knows b. One exchange with the seed
        // hands c the full membership — the router bootstrap property.
        let a = Membership::new(config(0, "ep-a"));
        let b = Membership::new(config(1, "ep-b"));
        let c = Membership::new(config(2, "ep-c"));
        let now = Instant::now();
        exchange(&a, &b, now);
        exchange(&c, &a, now);
        let seen = c.snapshot();
        assert_eq!(seen.members.len(), 3);
        assert_eq!(c.endpoint_of(1).as_deref(), Some("ep-b"));
    }

    #[test]
    fn higher_incarnation_wins_and_takes_the_endpoint() {
        let a = Membership::new(config(0, "ep-a"));
        let now = Instant::now();
        let old = View {
            version: 1,
            shard_count: 3,
            replication: 2,
            members: vec![Member {
                shard_id: 1,
                endpoint: "old-ep".into(),
                incarnation: 5,
                state: MemberState::Dead,
            }],
        };
        a.observe(&old, None, now);
        let reborn = View {
            version: 1,
            shard_count: 3,
            replication: 2,
            members: vec![Member {
                shard_id: 1,
                endpoint: "new-ep".into(),
                incarnation: 6,
                state: MemberState::Alive,
            }],
        };
        a.observe(&reborn, None, now);
        let m = a.snapshot().member(1).cloned().unwrap();
        assert_eq!(m.endpoint, "new-ep");
        assert_eq!(m.state, MemberState::Alive);
        // …and the transition was recorded as a join.
        assert_eq!(a.take_joins(), vec![1]);
        assert!(a.take_joins().is_empty(), "joins drain once");
    }

    #[test]
    fn equal_incarnation_resolves_by_rank_not_order() {
        let a = Membership::new(config(0, "ep-a"));
        let now = Instant::now();
        let alive = Member {
            shard_id: 1,
            endpoint: "ep-b".into(),
            incarnation: 9,
            state: MemberState::Alive,
        };
        let suspect = Member {
            state: MemberState::Suspect,
            ..alive.clone()
        };
        let wrap = |m: Member| View {
            version: 1,
            shard_count: 3,
            replication: 2,
            members: vec![m],
        };
        // Suspect-then-alive: the alive claim at the same incarnation
        // does NOT undo suspicion — only a fresher incarnation can.
        a.observe(&wrap(suspect.clone()), None, now);
        a.observe(&wrap(alive.clone()), None, now);
        assert_eq!(a.snapshot().member(1).unwrap().state, MemberState::Suspect);
        // Alive-then-suspect converges to the same answer.
        let b = Membership::new(config(2, "ep-c"));
        b.observe(&wrap(alive), None, now);
        b.observe(&wrap(suspect), None, now);
        assert_eq!(b.snapshot().member(1).unwrap().state, MemberState::Suspect);
    }

    #[test]
    fn a_shard_refutes_reports_of_its_own_death() {
        let a = Membership::new(config(0, "ep-a"));
        let my_inc = a.snapshot().member(0).unwrap().incarnation;
        let slander = View {
            version: 1,
            shard_count: 3,
            replication: 2,
            members: vec![Member {
                shard_id: 0,
                endpoint: "ep-a".into(),
                incarnation: my_inc + 3,
                state: MemberState::Dead,
            }],
        };
        a.observe(&slander, None, Instant::now());
        let me = a.snapshot().member(0).cloned().unwrap();
        assert_eq!(me.state, MemberState::Alive);
        assert!(
            me.incarnation > my_inc + 3,
            "refutation must outrank the accusation"
        );
        // The refutation now wins any merge against the slander.
        let other = Membership::new(config(1, "ep-b"));
        other.observe(&slander, None, Instant::now());
        other.observe(&a.snapshot(), None, Instant::now());
        assert_eq!(
            other.snapshot().member(0).unwrap().state,
            MemberState::Alive
        );
    }

    #[test]
    fn silence_walks_alive_through_suspect_to_dead() {
        let a = Membership::new(config(0, "ep-a"));
        let b = Membership::new(config(1, "ep-b"));
        let t0 = Instant::now();
        exchange(&a, &b, t0);
        assert_eq!(a.snapshot().member(1).unwrap().state, MemberState::Alive);
        // Under the suspect timeout: still alive.
        assert!(!a.tick(t0 + Duration::from_millis(900)));
        // Past it: suspect, but still short of dead.
        assert!(a.tick(t0 + Duration::from_millis(1_100)));
        assert_eq!(a.snapshot().member(1).unwrap().state, MemberState::Suspect);
        // Past the dead timeout: dead.
        assert!(a.tick(t0 + Duration::from_millis(4_100)));
        assert_eq!(a.snapshot().member(1).unwrap().state, MemberState::Dead);
        // A later exchange resurrects it: b sees itself declared dead
        // in a's view, refutes with a bumped incarnation, and the very
        // same exchange carries the refutation back.
        let t1 = t0 + Duration::from_millis(5_000);
        exchange(&a, &b, t1);
        assert_eq!(a.snapshot().member(1).unwrap().state, MemberState::Alive);
        assert_eq!(a.take_joins(), vec![1]);
    }

    #[test]
    fn direct_contact_refreshes_the_liveness_clock() {
        let a = Membership::new(config(0, "ep-a"));
        let b = Membership::new(config(1, "ep-b"));
        let t0 = Instant::now();
        exchange(&a, &b, t0);
        // Keep hearing from b directly: never suspect, however long the
        // wall clock runs.
        for beat in 1..=20u64 {
            let now = t0 + Duration::from_millis(500 * beat);
            a.observe(&b.snapshot(), Some(1), now);
            assert!(!a.tick(now));
        }
        assert_eq!(a.snapshot().member(1).unwrap().state, MemberState::Alive);
    }

    #[test]
    fn draining_propagates_then_times_out_to_dead() {
        let a = Membership::new(config(0, "ep-a"));
        let b = Membership::new(config(1, "ep-b"));
        let t0 = Instant::now();
        exchange(&a, &b, t0);
        b.note_draining();
        assert!(b.snapshot().member(1).is_some());
        a.observe(&b.snapshot(), Some(1), t0);
        assert_eq!(a.snapshot().member(1).unwrap().state, MemberState::Draining);
        // Draining isn't routable but isn't dead yet; silence finishes
        // the job without passing through suspect.
        assert_eq!(a.endpoint_of(1), None);
        a.tick(t0 + Duration::from_millis(4_100));
        assert_eq!(a.snapshot().member(1).unwrap().state, MemberState::Dead);
    }

    #[test]
    fn convergence_within_one_heartbeat_round_after_join() {
        // Three shards, full exchange each round: every view agrees
        // after a single round — the basis for the "converges within the
        // heartbeat timeout" acceptance criterion.
        let shards = [
            Membership::new(config(0, "ep-a")),
            Membership::new(config(1, "ep-b")),
            Membership::new(config(2, "ep-c")),
        ];
        let now = Instant::now();
        for i in 0..shards.len() {
            for j in (i + 1)..shards.len() {
                exchange(&shards[i], &shards[j], now);
            }
        }
        for s in &shards {
            let view = s.snapshot();
            assert_eq!(view.members.len(), 3);
            assert!(view.members.iter().all(|m| m.state == MemberState::Alive));
        }
    }

    #[test]
    fn gossip_targets_cover_unmet_seeds_and_skip_self() {
        let a = Membership::new(config(0, "ep-a"));
        let b = Membership::new(config(1, "ep-b"));
        exchange(&a, &b, Instant::now());
        let seeds = vec!["ep-a".to_string(), "ep-b".to_string(), "ep-z".to_string()];
        let targets = a.gossip_targets(&seeds);
        assert_eq!(
            targets,
            vec![
                (Some(1), "ep-b".to_string()),
                (None, "ep-z".to_string()), // unmet seed still probed
            ]
        );
    }

    #[test]
    fn foreign_shard_ids_cannot_grow_the_ring() {
        let a = Membership::new(config(0, "ep-a"));
        let bogus = View {
            version: 1,
            shard_count: 9,
            replication: 2,
            members: vec![Member {
                shard_id: 7,
                endpoint: "ep-x".into(),
                incarnation: 1,
                state: MemberState::Alive,
            }],
        };
        a.observe(&bogus, None, Instant::now());
        let view = a.snapshot();
        assert_eq!(view.shard_count, 3);
        assert!(view.member(7).is_none());
    }
}
