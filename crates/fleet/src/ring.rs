//! The consistent-hash ring.
//!
//! Each shard owns `VNODES` points on a 64-bit ring; a key belongs to
//! the first point clockwise from it. Virtual nodes smooth the
//! per-shard share (with one point per shard, a lucky shard can own
//! almost the whole ring), and they make failover spread: when a shard
//! dies, its keyspace splits across *all* survivors — each of its
//! vnode arcs falls to a different successor — instead of doubling one
//! neighbor's load.
//!
//! The ring is a pure function of the shard count. Router and shards
//! never exchange it; both sides derive the same placement from `N`,
//! which is what lets a server reject a misrouted batch with a
//! redirect instead of silently serving it.

/// Virtual nodes per shard. 64 keeps the largest/smallest per-shard
/// share within a few percent for small fleets while the ring stays
/// tiny (N × 64 points).
const VNODES: u32 = 64;

/// SplitMix64 — the workspace's standard bit mixer (no external RNG).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The content key a file routes by: 64-bit FNV-1a over the source
/// bytes. Identical sources — therefore identical structural hashes —
/// always share a key, so routing respects the structural partition of
/// the summary keyspace without parsing anything client-side.
pub fn content_key(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in source.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A consistent-hash ring over `shard_count` shards.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, u32)>,
    shard_count: u32,
}

impl Ring {
    /// Builds the ring for a fleet of `shard_count` shards.
    ///
    /// # Panics
    /// With `shard_count == 0` — an empty fleet routes nothing.
    pub fn new(shard_count: u32) -> Ring {
        assert!(shard_count > 0, "a fleet needs at least one shard");
        let mut points = Vec::with_capacity(shard_count as usize * VNODES as usize);
        for shard in 0..shard_count {
            for vnode in 0..VNODES {
                // Mix a (shard, vnode) pair into a ring position. The
                // +1 keeps shard 0 / vnode 0 away from mix(0).
                let point = mix((u64::from(shard) + 1) << 32 | u64::from(vnode));
                points.push((point, shard));
            }
        }
        // Ties (astronomically unlikely) break by shard id so placement
        // stays deterministic.
        points.sort_unstable();
        Ring {
            points,
            shard_count,
        }
    }

    /// The fleet size this ring was built for.
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// The shard owning `key` with every shard alive.
    pub fn shard_of(&self, key: u64) -> u32 {
        self.route(key, &vec![true; self.shard_count as usize])
            .expect("a fully-alive ring always routes")
    }

    /// The first shard clockwise from `key` that is still alive —
    /// `shard_of` when everything is up, the failover successor when
    /// not. `None` when no shard is alive.
    pub fn route(&self, key: u64, alive: &[bool]) -> Option<u32> {
        let start = self.points.partition_point(|&(point, _)| point < key);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if alive.get(shard as usize).copied().unwrap_or(false) {
                return Some(shard);
            }
        }
        None
    }

    /// The key's replica set: the first `r` *distinct* shards clockwise
    /// from `key`. The first element is always [`shard_of`](Ring::shard_of)
    /// (the primary); the rest are the replicas that receive the
    /// primary's write-through. `r` is clamped to the fleet size.
    pub fn successors(&self, key: u64, r: u32) -> Vec<u32> {
        let want = r.clamp(1, self.shard_count) as usize;
        let start = self.points.partition_point(|&(point, _)| point < key);
        let mut out: Vec<u32> = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The first live member of `key`'s `r`-replica set, in ring order.
    /// Unlike [`route`](Ring::route), failover is *scoped*: when every
    /// replica of a key is dead the key is unroutable (`None`) even if
    /// other shards are alive — those shards never saw its writes.
    pub fn route_replica(&self, key: u64, alive: &[bool], r: u32) -> Option<u32> {
        self.successors(key, r)
            .into_iter()
            .find(|&s| alive.get(s as usize).copied().unwrap_or(false))
    }

    /// The distinct shards that absorb `shard`'s keyspace when it
    /// leaves: for each of its vnode arcs, the next distinct shard
    /// clockwise. These are exactly the donors/recipients of a scoped
    /// snapshot handoff when `shard` departs or (re)joins.
    pub fn arc_successors(&self, shard: u32) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for (i, &(_, s)) in self.points.iter().enumerate() {
            if s != shard {
                continue;
            }
            for j in 1..self.points.len() {
                let (_, next) = self.points[(i + j) % self.points.len()];
                if next != shard {
                    if !out.contains(&next) {
                        out.push(next);
                    }
                    break;
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = Ring::new(3);
        let b = Ring::new(3);
        for key in (0..10_000u64).map(mix) {
            let s = a.shard_of(key);
            assert_eq!(s, b.shard_of(key), "same ring, same placement");
            assert!(s < 3);
        }
    }

    #[test]
    fn vnodes_keep_shares_balanced() {
        let ring = Ring::new(3);
        let mut counts = [0usize; 3];
        for key in (0..30_000u64).map(mix) {
            counts[ring.shard_of(key) as usize] += 1;
        }
        for &c in &counts {
            // Each shard should own roughly a third; vnodes keep the
            // spread well inside 2x of fair share.
            assert!(c > 5_000 && c < 20_000, "unbalanced shares: {counts:?}");
        }
    }

    #[test]
    fn failover_reroutes_only_the_dead_shards_keys() {
        let ring = Ring::new(3);
        let alive = [true, false, true];
        let mut moved = 0usize;
        let total = 10_000usize;
        for key in (0..total as u64).map(mix) {
            let primary = ring.shard_of(key);
            let routed = ring.route(key, &alive).unwrap();
            assert_ne!(routed, 1, "dead shard never routed to");
            if primary != 1 {
                assert_eq!(routed, primary, "live shards keep their keys");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "the dead shard owned something");
        assert!(
            moved < total / 2,
            "only the dead shard's share moves ({moved}/{total})"
        );
    }

    #[test]
    fn no_live_shard_routes_nothing() {
        let ring = Ring::new(2);
        assert_eq!(ring.route(42, &[false, false]), None);
    }

    #[test]
    fn successors_are_distinct_and_primary_first() {
        let ring = Ring::new(5);
        for key in (0..2_000u64).map(mix) {
            let reps = ring.successors(key, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.shard_of(key), "primary leads the set");
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas are distinct: {reps:?}");
        }
    }

    #[test]
    fn successors_clamp_to_fleet_size() {
        let ring = Ring::new(3);
        let all = ring.successors(42, 99);
        assert_eq!(all.len(), 3, "r clamps to shard_count");
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "covers every shard");
        assert_eq!(
            ring.successors(42, 0).len(),
            1,
            "r=0 still yields the primary"
        );
    }

    #[test]
    fn route_replica_scopes_failover_to_the_replica_set() {
        let ring = Ring::new(4);
        for key in (0..2_000u64).map(mix) {
            let reps = ring.successors(key, 2);
            // Primary alive: routes to primary.
            let alive = vec![true; 4];
            assert_eq!(ring.route_replica(key, &alive, 2), Some(reps[0]));
            // Primary dead: routes to the replica.
            let mut alive = vec![true; 4];
            alive[reps[0] as usize] = false;
            assert_eq!(ring.route_replica(key, &alive, 2), Some(reps[1]));
            // Both replicas dead: unroutable even though others live.
            let mut alive = vec![true; 4];
            alive[reps[0] as usize] = false;
            alive[reps[1] as usize] = false;
            assert_eq!(ring.route_replica(key, &alive, 2), None);
        }
    }

    #[test]
    fn arc_successors_name_the_absorbing_shards() {
        let ring = Ring::new(3);
        let succ = ring.arc_successors(1);
        assert!(!succ.contains(&1), "a shard never absorbs itself");
        assert!(!succ.is_empty());
        // Every key owned by shard 1 must fail over to one of its arc
        // successors when it alone is dead.
        let alive = [true, false, true];
        for key in (0..5_000u64).map(mix) {
            if ring.shard_of(key) == 1 {
                let fallback = ring.route(key, &alive).unwrap();
                assert!(succ.contains(&fallback), "{fallback} not in {succ:?}");
            }
        }
    }

    #[test]
    fn content_key_is_fnv1a() {
        // Pin the constant so routing stays stable across releases —
        // a silent key change would cold every shard cache at once.
        assert_eq!(content_key(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_key("func f"), content_key("func g"));
        assert_eq!(content_key("same"), content_key("same"));
    }
}
