//! Fleet-wide observability and the drain/rebalance coordinator.
//!
//! [`fleet_stats`] polls every shard's `stats` endpoint and folds the
//! snapshots into one object: counter sections (`requests`, `queue`,
//! `cache`, `store`) are summed field-by-field, latency windows are
//! merged (exact for `count`/`mean`/`max`; percentiles are
//! count-weighted averages of the shard percentiles — the summaries do
//! not carry enough to merge them exactly, and the approximation is
//! what the raw per-shard snapshots, also included, let you check).
//!
//! [`drain_shard`] drives the warm-handoff half of a rebalance:
//!
//! ```text
//! departing shard                      successor shard
//!   shutdown ──▶ drain ──▶ flush store
//!                              │
//!                  (poll until the endpoint refuses)
//!                              │
//!                              └──▶ preload DIR ──▶ cache committed
//! ```
//!
//! The poll between shutdown and preload matters: the departing `bivd`
//! fsyncs its store *after* its drain completes, so preloading the
//! snapshot before the process is gone could read a half-flushed index.
//! Once the successor acks the preload, every summary the departing
//! shard had computed is served warm from its successor.

use std::time::{Duration, Instant};

use biv_server::net::Endpoint;
use biv_server::{Client, Json, Request, Response};

/// One phase's merged latency summary across shards.
#[derive(Debug, Default, Clone, Copy)]
struct MergedWindow {
    count: i64,
    /// `Σ count·mean`, divided out at render time.
    mean_weight: i64,
    p50_weight: i64,
    p90_weight: i64,
    p99_weight: i64,
    max_us: i64,
}

impl MergedWindow {
    fn absorb(&mut self, window: &Json) {
        let int = |key: &str| window.get(key).and_then(Json::as_i64).unwrap_or(0);
        let count = int("count");
        self.count += count;
        self.mean_weight += count.saturating_mul(int("mean_us"));
        self.p50_weight += count.saturating_mul(int("p50_us"));
        self.p90_weight += count.saturating_mul(int("p90_us"));
        self.p99_weight += count.saturating_mul(int("p99_us"));
        self.max_us = self.max_us.max(int("max_us"));
    }

    fn render(&self) -> Json {
        let avg = |weight: i64| {
            if self.count == 0 {
                Json::Int(0)
            } else {
                Json::Int(weight / self.count)
            }
        };
        Json::obj(vec![
            ("count", Json::Int(self.count)),
            ("mean_us", avg(self.mean_weight)),
            ("p50_us", avg(self.p50_weight)),
            ("p90_us", avg(self.p90_weight)),
            ("p99_us", avg(self.p99_weight)),
            ("max_us", Json::Int(self.max_us)),
        ])
    }
}

/// Sums the integer fields of `section` across shard snapshots,
/// preserving the field order of the first shard that has the section.
fn sum_section(snapshots: &[Json], section: &str) -> Option<Json> {
    let mut keys: Vec<String> = Vec::new();
    for snap in snapshots {
        if let Some(Json::Obj(pairs)) = snap.get(section) {
            for (k, _) in pairs {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
    }
    if keys.is_empty() {
        return None;
    }
    let pairs = keys
        .into_iter()
        .map(|k| {
            let sum: i64 = snapshots
                .iter()
                .filter_map(|s| s.get(section)?.get(&k)?.as_i64())
                .sum();
            (k, Json::Int(sum))
        })
        .collect();
    Some(Json::Obj(pairs))
}

/// Merges per-phase latency windows across shard snapshots.
fn merge_latency(snapshots: &[Json]) -> Json {
    let phases = ["queue_wait", "parse", "analyze", "render", "total"];
    Json::obj(
        phases
            .iter()
            .map(|&phase| {
                let mut merged = MergedWindow::default();
                for snap in snapshots {
                    if let Some(window) = snap.get("latency").and_then(|l| l.get(phase)) {
                        merged.absorb(window);
                    }
                }
                (phase, merged.render())
            })
            .collect(),
    )
}

/// Polls every shard's stats endpoint and aggregates the fleet view.
///
/// Unreachable shards are reported, not fatal — a fleet with one dead
/// member still has a meaningful aggregate. The result carries:
///
/// - `fleet`: shard count, how many answered, the unreachable
///   endpoints;
/// - `totals`: summed `requests`/`queue`/`cache`/`store` sections,
///   summed `workers`, the merged `latency` windows, and the maximum
///   shard `uptime_ms`;
/// - `shards`: each answering shard's raw snapshot, annotated with its
///   endpoint — ground truth for anything the aggregation approximates.
///
/// # Errors
/// Only when *no* shard answers.
pub fn fleet_stats(endpoints: &[String]) -> Result<Json, String> {
    fleet_stats_with_timeout(endpoints, DEFAULT_STATS_TIMEOUT)
}

/// How long one shard may take to connect *and* to answer before its
/// stats entry degrades to `unreachable`.
pub const DEFAULT_STATS_TIMEOUT: Duration = Duration::from_secs(2);

/// [`fleet_stats`] with an explicit per-endpoint deadline: each shard
/// gets `timeout` to connect and `timeout` to answer, so one
/// partitioned or wedged shard costs bounded time and degrades to an
/// `unreachable` entry instead of hanging the whole poll.
///
/// # Errors
/// Only when *no* shard answers.
pub fn fleet_stats_with_timeout(endpoints: &[String], timeout: Duration) -> Result<Json, String> {
    let mut snapshots: Vec<Json> = Vec::new();
    let mut per_shard: Vec<Json> = Vec::new();
    let mut unreachable: Vec<Json> = Vec::new();
    for endpoint in endpoints {
        match shard_stats(endpoint, timeout) {
            Ok(stats) => {
                per_shard.push(Json::obj(vec![
                    ("endpoint", Json::Str(endpoint.clone())),
                    ("stats", stats.clone()),
                ]));
                snapshots.push(stats);
            }
            Err(e) => unreachable.push(Json::obj(vec![
                ("endpoint", Json::Str(endpoint.clone())),
                ("error", Json::Str(e)),
            ])),
        }
    }
    if snapshots.is_empty() {
        return Err(format!(
            "no shard answered ({} endpoints tried)",
            endpoints.len()
        ));
    }

    let int_sum =
        |key: &str| -> i64 { snapshots.iter().filter_map(|s| s.get(key)?.as_i64()).sum() };
    let uptime_max: i64 = snapshots
        .iter()
        .filter_map(|s| s.get("uptime_ms")?.as_i64())
        .max()
        .unwrap_or(0);

    let mut totals = vec![("uptime_ms", Json::Int(uptime_max))];
    for section in ["requests", "queue", "cache"] {
        if let Some(sum) = sum_section(&snapshots, section) {
            totals.push((section, sum));
        }
    }
    totals.push(("workers", Json::Int(int_sum("workers"))));
    totals.push(("latency", merge_latency(&snapshots)));
    if let Some(store) = sum_section(&snapshots, "store") {
        totals.push(("store", store));
    }

    Ok(Json::obj(vec![
        (
            "fleet",
            Json::obj(vec![
                ("shards", Json::Int(endpoints.len() as i64)),
                ("reachable", Json::Int(snapshots.len() as i64)),
                ("unreachable", Json::Arr(unreachable)),
            ]),
        ),
        ("totals", Json::obj(totals)),
        ("shards", Json::Arr(per_shard)),
    ]))
}

/// One shard's raw stats snapshot, bounded by `timeout` on both the
/// connect and the read.
fn shard_stats(endpoint: &str, timeout: Duration) -> Result<Json, String> {
    let endpoint = Endpoint::parse(endpoint);
    let mut client =
        Client::connect_timeout(&endpoint, timeout).map_err(|e| format!("cannot connect: {e}"))?;
    match client.request(&Request::Stats) {
        Ok(Response::Stats(stats)) => Ok(stats),
        Ok(other) => Err(format!("unexpected stats response: {other:?}")),
        Err(e) => Err(format!("stats request failed: {e}")),
    }
}

/// What a completed drain/rebalance did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// The departing shard acknowledged shutdown.
    pub acknowledged: bool,
    /// The departing endpoint stopped answering within the wait budget
    /// (its store flush is complete once this is true).
    pub departed: bool,
    /// Summaries the successor committed from the snapshot.
    pub loaded: usize,
}

/// Drains the shard at `endpoints[shard]` and warm-hands its store
/// snapshot at `store_dir` to `endpoints[successor]`: shutdown, wait
/// (up to `wait`) for the endpoint to actually go away — which is when
/// the departing `bivd` has flushed its store — then preload the
/// successor from the snapshot directory.
///
/// # Errors
/// Bad indices, an unreachable departing shard (nothing to drain), a
/// refused shutdown, a still-listening endpoint after `wait`, or a
/// failed preload. A successful run always means the successor serves
/// the departed shard's summaries warm.
pub fn drain_shard(
    endpoints: &[String],
    shard: usize,
    store_dir: &str,
    successor: usize,
    wait: Duration,
) -> Result<DrainReport, String> {
    if shard >= endpoints.len() || successor >= endpoints.len() {
        return Err(format!(
            "shard indices out of range: {shard} and {successor} of {}",
            endpoints.len()
        ));
    }
    if shard == successor {
        return Err("a shard cannot hand off to itself".into());
    }

    // 1. Ask the departing shard to drain.
    let departing = Endpoint::parse(&endpoints[shard]);
    let mut client = Client::connect(&departing)
        .map_err(|e| format!("cannot reach departing shard {shard}: {e}"))?;
    match client.request(&Request::Shutdown) {
        Ok(Response::ShutdownAck) => {}
        Ok(other) => return Err(format!("shard {shard} refused shutdown: {other:?}")),
        Err(e) => return Err(format!("shutdown request to shard {shard} failed: {e}")),
    }
    drop(client);

    // 2. Wait for it to leave — connection refused means the process is
    // gone and its store flush (fsync + index snapshot) is durable.
    let deadline = Instant::now() + wait;
    let mut departed = false;
    loop {
        match Client::connect(&departing) {
            Err(_) => {
                departed = true;
                break;
            }
            Ok(_) => {
                if Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    if !departed {
        return Err(format!(
            "shard {shard} still listening after {wait:?}; not preloading a possibly \
             unflushed snapshot"
        ));
    }

    // 3. Warm the successor from the snapshot.
    let succ = Endpoint::parse(&endpoints[successor]);
    let mut client = Client::connect(&succ)
        .map_err(|e| format!("cannot reach successor shard {successor}: {e}"))?;
    match client.request(&Request::Preload {
        dir: store_dir.to_string(),
    }) {
        Ok(Response::PreloadAck { loaded }) => Ok(DrainReport {
            acknowledged: true,
            departed: true,
            loaded,
        }),
        Ok(Response::Error { kind, message }) => Err(format!(
            "successor {successor} preload failed ({kind}): {message}"
        )),
        Ok(other) => Err(format!(
            "successor {successor} answered preload out of protocol: {other:?}"
        )),
        Err(e) => Err(format!(
            "preload request to successor {successor} failed: {e}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(count: i64, mean: i64, p50: i64, max: i64) -> Json {
        Json::obj(vec![
            ("count", Json::Int(count)),
            ("mean_us", Json::Int(mean)),
            ("p50_us", Json::Int(p50)),
            ("p90_us", Json::Int(p50)),
            ("p99_us", Json::Int(p50)),
            ("max_us", Json::Int(max)),
        ])
    }

    #[test]
    fn merged_windows_weight_by_count() {
        let a = Json::obj(vec![(
            "latency",
            Json::obj(vec![("total", window(3, 100, 90, 200))]),
        )]);
        let b = Json::obj(vec![(
            "latency",
            Json::obj(vec![("total", window(1, 500, 500, 500))]),
        )]);
        let merged = merge_latency(&[a, b]);
        let total = merged.get("total").unwrap();
        assert_eq!(total.get("count").unwrap().as_i64(), Some(4));
        // (3·100 + 1·500) / 4 = 200
        assert_eq!(total.get("mean_us").unwrap().as_i64(), Some(200));
        assert_eq!(total.get("max_us").unwrap().as_i64(), Some(500));
        // Empty phases stay well-defined zeros.
        let parse = merged.get("parse").unwrap();
        assert_eq!(parse.get("count").unwrap().as_i64(), Some(0));
        assert_eq!(parse.get("mean_us").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn sections_sum_fieldwise() {
        let a = Json::obj(vec![(
            "requests",
            Json::obj(vec![("total", Json::Int(5)), ("timeouts", Json::Int(1))]),
        )]);
        let b = Json::obj(vec![(
            "requests",
            Json::obj(vec![("total", Json::Int(7)), ("timeouts", Json::Int(0))]),
        )]);
        let sum = sum_section(&[a, b], "requests").unwrap();
        assert_eq!(sum.get("total").unwrap().as_i64(), Some(12));
        assert_eq!(sum.get("timeouts").unwrap().as_i64(), Some(1));
        assert!(sum_section(&[], "requests").is_none());
    }

    #[test]
    fn wedged_shard_degrades_within_the_timeout() {
        // An endpoint that accepts but never answers: the stats poll
        // must report it unreachable in bounded time, not hang.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = format!("tcp:{}", listener.local_addr().unwrap());
        let hold = std::thread::spawn(move || {
            let conn = listener.accept().ok();
            std::thread::sleep(Duration::from_secs(2));
            drop(conn);
        });
        let started = Instant::now();
        let err = fleet_stats_with_timeout(&[endpoint], Duration::from_millis(200)).unwrap_err();
        assert!(err.contains("no shard answered"), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "poll hung past the deadline: {:?}",
            started.elapsed()
        );
        hold.join().unwrap();
    }

    #[test]
    fn drain_validates_indices() {
        let eps = vec!["tcp:127.0.0.1:1".into(), "tcp:127.0.0.1:2".into()];
        assert!(drain_shard(&eps, 5, "/tmp/x", 0, Duration::from_millis(1)).is_err());
        assert!(drain_shard(&eps, 0, "/tmp/x", 0, Duration::from_millis(1)).is_err());
    }
}
