//! Asynchronous R-way write-through replication.
//!
//! When a shard commits freshly analyzed summaries, the server's
//! cluster hook hands them here. The replicator queues one *batch* per
//! commit (the content key plus the codec-encoded summaries) and a
//! dedicated sender thread pushes each batch to the key's replica set —
//! the next R−1 distinct ring successors after the primary — as
//! `replicate` frames. Replication is deliberately **asynchronous and
//! best-effort**:
//!
//! - the queue is bounded; under sustained backlog the *oldest* batch
//!   is dropped (and counted), never the request path blocked — a
//!   replica that misses a batch serves a cache miss, which recomputes
//!   the identical bytes, so correctness never depends on delivery;
//! - a failed push is retried with the client's standard backoff a
//!   bounded number of times, then dropped (and counted);
//! - targets are resolved against the live membership view *at send
//!   time*: a dead replica is skipped (it will warm back up via the
//!   rejoin snapshot handoff), a restarted one is reached at its new
//!   endpoint, and a successor the view has not met yet defers the
//!   whole batch to a retry — never a silent "sent".
//!
//! Because a summary is a pure function of its structural hash, pushing
//! the same batch twice — or to a shard that also computed it locally —
//! is idempotent by construction. The queue depth is exported as the
//! `replication_lag` gauge.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use biv_core::StructuralSummary;
use biv_server::client::busy_backoff;
use biv_server::{Client, Endpoint, Json, ReplicaEntry, Request, Response};

use crate::faults;
use crate::membership::{Delivery, Membership};
use crate::ring::Ring;

/// How long one replica connect/read may take before the batch is
/// counted as a failed attempt.
const SEND_TIMEOUT: Duration = Duration::from_secs(2);

struct Batch {
    key: u64,
    entries: Vec<ReplicaEntry>,
    attempts: u32,
}

/// The replication queue plus its sender-side policy. Shared between
/// the server's commit hook (producer) and the sender thread.
pub struct Replicator {
    shard_id: u32,
    replication: u32,
    ring: Ring,
    membership: Arc<Membership>,
    queue: Mutex<VecDeque<Batch>>,
    available: Condvar,
    queue_cap: usize,
    max_retries: u32,
    pushed: AtomicU64,
    retries: AtomicU64,
    dropped: AtomicU64,
}

impl Replicator {
    /// Builds the queue; [`Replicator::run`] drives it.
    pub fn new(
        shard_id: u32,
        replication: u32,
        ring: Ring,
        membership: Arc<Membership>,
        queue_cap: usize,
        max_retries: u32,
    ) -> Replicator {
        Replicator {
            shard_id,
            replication,
            ring,
            membership,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queue_cap: queue_cap.max(1),
            max_retries,
            pushed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Queues one committed batch for replication. Never blocks: beyond
    /// the queue bound the oldest batch is dropped and counted.
    pub fn enqueue(&self, key: u64, entries: &[(u64, Arc<StructuralSummary>)]) {
        if self.replication <= 1 || entries.is_empty() {
            return;
        }
        let entries = entries
            .iter()
            .map(|(hash, summary)| ReplicaEntry {
                hash: *hash,
                bytes: biv_store::codec::encode_summary(summary),
            })
            .collect();
        let mut queue = self.queue.lock().unwrap();
        queue.push_back(Batch {
            key,
            entries,
            attempts: 0,
        });
        while queue.len() > self.queue_cap {
            queue.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        drop(queue);
        self.available.notify_one();
    }

    /// Batches waiting to be pushed — the `replication_lag` gauge.
    pub fn lag(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// The stats section: queue lag plus lifetime push/retry/drop
    /// counters.
    pub fn stats_json(&self) -> Json {
        Json::obj(vec![
            ("replication_lag", Json::Int(self.lag() as i64)),
            (
                "pushed",
                Json::Int(self.pushed.load(Ordering::Relaxed) as i64),
            ),
            (
                "retries",
                Json::Int(self.retries.load(Ordering::Relaxed) as i64),
            ),
            (
                "dropped",
                Json::Int(self.dropped.load(Ordering::Relaxed) as i64),
            ),
        ])
    }

    /// The sender loop: pop, resolve live targets, push, retry bounded.
    /// Exits once `shutdown` flips (any remaining batches are covered
    /// by the departure snapshot handoff).
    pub fn run(&self, shutdown: &AtomicBool) {
        loop {
            let batch = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(batch) = queue.pop_front() {
                        break Some(batch);
                    }
                    if shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (next, _) = self
                        .available
                        .wait_timeout(queue, Duration::from_millis(100))
                        .unwrap();
                    queue = next;
                }
            };
            let Some(mut batch) = batch else { return };
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            // The lag fault site models a slow replica link: the batch
            // still goes out, later.
            if faults::fire("fleet.replica.lag") {
                std::thread::sleep(Duration::from_millis(50));
            }
            if self.send(&batch) {
                self.pushed
                    .fetch_add(batch.entries.len() as u64, Ordering::Relaxed);
                continue;
            }
            batch.attempts += 1;
            if batch.attempts > self.max_retries {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(busy_backoff(25, batch.attempts));
            let mut queue = self.queue.lock().unwrap();
            queue.push_back(batch);
            while queue.len() > self.queue_cap {
                queue.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The replica endpoints for one key, resolved against the view
    /// now: the key's successor set minus ourselves. `Dead` replicas
    /// are skipped (settled — the rejoin handoff warms them), but a
    /// successor the view has **not met yet** makes the whole batch
    /// unresolvable (`None`): counting it as sent would silently lose
    /// the replica copy whenever membership is still converging.
    fn targets(&self, key: u64) -> Option<Vec<String>> {
        let mut out = Vec::new();
        for shard in self.ring.successors(key, self.replication) {
            if shard == self.shard_id {
                continue;
            }
            match self.membership.delivery(shard) {
                Delivery::Send(endpoint) => out.push(endpoint),
                Delivery::SkipDead => {}
                Delivery::Unmet => return None,
            }
        }
        Some(out)
    }

    /// Pushes one batch to every resolvable replica. True when every
    /// target acked (an empty target set is success — every replica is
    /// known dead, so there is no one to warm).
    fn send(&self, batch: &Batch) -> bool {
        let Some(targets) = self.targets(batch.key) else {
            return false;
        };
        let mut ok = true;
        for endpoint in targets {
            let request = Request::Replicate {
                entries: batch.entries.clone(),
            };
            let acked = Client::connect_timeout(&Endpoint::parse(&endpoint), SEND_TIMEOUT)
                .and_then(|mut client| client.request(&request))
                .map(|response| matches!(response, Response::ReplicateAck { .. }))
                .unwrap_or(false);
            ok &= acked;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::{MemberState, MembershipConfig, View};
    use std::time::Instant;

    fn membership_of_three() -> Arc<Membership> {
        let m = Membership::new(MembershipConfig {
            shard_id: 0,
            shard_count: 3,
            replication: 2,
            endpoint: "ep-0".to_string(),
            suspect_after: Duration::from_millis(1_000),
            dead_after: Duration::from_millis(4_000),
        });
        let mut remote = m.snapshot();
        for (id, ep) in [(1u32, "ep-1"), (2u32, "ep-2")] {
            remote.members.push(crate::membership::Member {
                shard_id: id,
                endpoint: ep.to_string(),
                incarnation: 1,
                state: MemberState::Alive,
            });
        }
        m.observe(&remote, None, Instant::now());
        Arc::new(m)
    }

    fn summary() -> Arc<StructuralSummary> {
        // Any summary works: the replicator treats it as opaque bytes.
        Arc::new(StructuralSummary::from_loops(Vec::new()))
    }

    fn replicator(replication: u32, cap: usize) -> Replicator {
        Replicator::new(0, replication, Ring::new(3), membership_of_three(), cap, 2)
    }

    #[test]
    fn replication_factor_one_queues_nothing() {
        let r = replicator(1, 8);
        r.enqueue(42, &[(1, summary())]);
        assert_eq!(r.lag(), 0);
    }

    #[test]
    fn queue_bound_drops_oldest_and_counts() {
        let r = replicator(2, 4);
        for key in 0..10u64 {
            r.enqueue(key, &[(key, summary())]);
        }
        assert_eq!(r.lag(), 4, "bounded at the cap");
        let stats = r.stats_json();
        assert_eq!(stats.get("dropped").and_then(Json::as_i64), Some(6));
        assert_eq!(stats.get("replication_lag").and_then(Json::as_i64), Some(4));
    }

    #[test]
    fn targets_exclude_self_and_dead_replicas() {
        let r = replicator(3, 8);
        // R=3 over 3 shards: replicas of any key are the other two.
        let targets = r.targets(7).expect("whole ring met");
        assert_eq!(targets.len(), 2);
        assert!(!targets.contains(&"ep-0".to_string()), "never self");
        // Kill one replica in the view: it drops out of the target set
        // instead of failing the batch.
        let mut doomed = r.membership.snapshot();
        for m in doomed.members.iter_mut() {
            if m.endpoint == targets[0] {
                m.state = MemberState::Dead;
            }
        }
        r.membership.observe(&doomed, None, Instant::now());
        let after = r.targets(7).expect("dead replicas still resolve");
        assert_eq!(after.len(), 1);
        assert!(!after.contains(&targets[0]));
    }

    #[test]
    fn an_unmet_successor_defers_the_batch_instead_of_dropping_the_copy() {
        // The membership only knows itself: every key's replica set
        // contains shards the view has not met, so no batch may be
        // counted as sent yet.
        let lonely = Arc::new(Membership::new(MembershipConfig {
            shard_id: 0,
            shard_count: 3,
            replication: 2,
            endpoint: "ep-0".to_string(),
            suspect_after: Duration::from_millis(1_000),
            dead_after: Duration::from_millis(4_000),
        }));
        let r = Replicator::new(0, 2, Ring::new(3), lonely, 8, 2);
        for key in 0..64u64 {
            let successors = r.ring.successors(key, 2);
            if successors.contains(&0) && successors.len() == 1 {
                continue; // self-only set resolves trivially
            }
            assert_eq!(r.targets(key), None, "key {key} must defer, not skip");
        }
    }

    #[test]
    fn suspect_replicas_are_still_delivery_targets() {
        let r = replicator(3, 8);
        let targets = r.targets(7).unwrap();
        let mut rumor = r.membership.snapshot();
        for m in rumor.members.iter_mut() {
            if m.endpoint == targets[0] {
                m.state = MemberState::Suspect;
            }
        }
        r.membership.observe(&rumor, None, Instant::now());
        let after = r.targets(7).expect("suspects resolve");
        assert!(
            after.contains(&targets[0]),
            "a suspect may well be alive — the batch must still be offered"
        );
    }

    #[test]
    fn view_roundtrip_smoke_for_stats_section() {
        let r = replicator(2, 8);
        let stats = r.stats_json();
        for field in ["replication_lag", "pushed", "retries", "dropped"] {
            assert!(stats.get(field).is_some(), "missing {field}");
        }
        // And the membership the replicator resolves against serializes.
        assert!(View::from_json(&r.membership.snapshot().to_json()).is_ok());
    }
}
