//! `biv-fleet` — sharded `bivd` serving.
//!
//! One `bivd` process holds one structural cache; this crate scales
//! that horizontally. N daemons each run as one *shard* of a fleet
//! (`bivd --fleet shard=K/N`), and a client-side [`Router`] fans each
//! batch out across them, reassembling the responses into output that
//! is **byte-identical** to a single local `bivc` run over the same
//! files.
//!
//! The pieces:
//!
//! - [`ring`] — the consistent-hash ring that maps a file's content key
//!   to its shard, with virtual nodes for balance and successor routing
//!   for failover;
//! - [`membership`] — gossip-maintained versioned views of the fleet
//!   (who is alive, where, at which incarnation), with SWIM-style
//!   refutation and timeout-driven failure detection; routers bootstrap
//!   the ring from any one live seed endpoint;
//! - [`replicate`] — asynchronous R-way write-through of committed
//!   summaries to each key's ring successors, so a killed primary's
//!   keys are served warm from a replica;
//! - [`router`] — batch fan-out, per-shard busy/redirect/death
//!   handling, replica failover, and input-order reassembly (the
//!   byte-identity lives here);
//! - [`stats`] — fleet-wide stats aggregation and the drain/rebalance
//!   coordinator (a departing shard's store snapshot warm-starts its
//!   successor).
//!
//! Routing invariant: the structural hash partitions the summary
//! keyspace perfectly — a function's cached summary lives under exactly
//! one key — so identical file contents must always land on the same
//! shard to reuse its cache. The router keys the ring on a 64-bit FNV-1a
//! of the file source: equal sources have equal structural hashes, so
//! the content key respects the structural partition while being
//! computable without parsing. Routing never affects output bytes —
//! shards return per-file summary blocks plus structural hashes, and
//! the router replays the batch stats line cold over all hashes in
//! input order ([`biv_core::cold_batch_stats`]) exactly as a local run
//! renders it — so failover re-routing is always safe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
pub mod membership;
pub mod replicate;
pub mod ring;
pub mod router;
pub mod stats;

pub use membership::{AgentConfig, ClusterAgent, Member, MemberState, Membership, View};
pub use replicate::Replicator;
pub use ring::Ring;
pub use router::{FleetConfig, FleetReport, Router};
pub use stats::{drain_shard, fleet_stats, fleet_stats_with_timeout, DrainReport};
