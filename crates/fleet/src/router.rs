//! The fleet router: fans one analyze batch out across N shards and
//! reassembles the responses **byte-identically** to a single local
//! `bivc` run.
//!
//! ```text
//!              ┌──────── shard 0 ──────── per-file blocks ┐
//!  files ──┬──▶│                                          ├──▶ input-order
//!          │   ├──────── shard 1 ──────── per-file blocks ┤    blocks +
//!          │   │                                          │    cold stats
//!          └──▶└──────── shard 2 ──────── per-file blocks ┘    line
//! ```
//!
//! Routing is by content key ([`crate::ring::content_key`]) over the
//! consistent-hash [`Ring`], so identical sources always land on the
//! shard whose structural cache already holds their summaries. The
//! fan-out runs in rounds: every pending file is grouped by its current
//! shard, groups go out concurrently (one connection per group), and
//! whatever a group's shard could not serve comes back as *pending* for
//! the next round:
//!
//! - an unreachable or mid-batch-killed shard is marked dead and its
//!   group re-routes to each file's ring successor;
//! - a [`Response::Redirect`] teaches the router the endpoint's actual
//!   shard identity (endpoints listed in the wrong order converge in
//!   one extra round per misplaced pair) and the group re-sends;
//! - a draining shard is treated as departing: dead, re-route.
//!
//! Every file carries an attempt budget (`shard_count` +
//! [`FleetConfig::max_redirects`]); a file that exhausts it fails *as a
//! file* — the batch always completes with every other file's bytes
//! intact. Per-shard busy rejections are absorbed with the exact client
//! backoff policy ([`biv_server::client::busy_backoff`]).

use std::collections::BTreeMap;

use biv_core::cold_batch_stats;
use biv_server::client::busy_backoff;
use biv_server::net::Endpoint;
use biv_server::{AnalyzeFile, Client, FileError, FleetFile, Request, Response};

use crate::faults;
use crate::ring::{content_key, Ring};

/// How the router talks to its fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// One endpoint per shard, `endpoints[k]` believed to be shard `k`
    /// (`tcp:HOST:PORT` or a Unix socket path). A misordered list is
    /// repaired at runtime from redirect responses.
    pub endpoints: Vec<String>,
    /// Cold-replay cache capacity for the stats line, exactly as
    /// `bivc --cache-cap` passes it. `None` means the default.
    pub cache_cap: Option<usize>,
    /// Extra per-file attempts beyond one per shard before a file fails
    /// with a give-up error.
    pub max_redirects: u32,
    /// Busy rejections tolerated per group submission before the shard
    /// is declared saturated for those files.
    pub max_busy_retries: u32,
}

impl FleetConfig {
    /// A config for `endpoints` with the default retry budgets.
    pub fn new(endpoints: Vec<String>) -> FleetConfig {
        FleetConfig {
            endpoints,
            cache_cap: None,
            max_redirects: 4,
            max_busy_retries: 10,
        }
    }
}

/// The reassembled result of one fleet batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// The batch report — byte-identical to a local `bivc` run over the
    /// same readable, parsable files (failed files excepted, listed in
    /// `errors`).
    pub output: String,
    /// Functions analyzed or served from shard caches.
    pub functions: usize,
    /// Distinct structures actually analyzed across the fleet.
    pub analyzed: usize,
    /// Functions served from warm shard caches.
    pub cached: usize,
    /// Per-file failures: parse errors from shards, plus files the
    /// router could not place anywhere.
    pub errors: Vec<FileError>,
    /// Redirect responses survived while converging on endpoint
    /// identities.
    pub redirects: u64,
    /// Busy rejections absorbed by backoff across all shards.
    pub busy_retries: u64,
    /// Shards found dead (unreachable or draining) during the batch.
    pub dead_shards: Vec<u32>,
    /// Human-readable routing events (shard deaths and why) for the
    /// caller's stderr; never part of `output`.
    pub notes: Vec<String>,
}

/// What one per-shard group submission came back with.
enum GroupOutcome {
    /// The shard served the group: per-file results in request order.
    Served {
        files: Vec<FleetFile>,
        functions: usize,
        analyzed: usize,
        cached: usize,
    },
    /// The endpoint answered with its actual identity; re-route.
    Redirected { shard_id: u32, shard_count: u32 },
    /// The endpoint is unreachable or died mid-exchange; its files
    /// re-route to their ring successors.
    Dead(String),
    /// The shard is draining; treated as departing (dead, re-route).
    Draining(String),
    /// The shard answered but unusably (busy exhaustion, protocol
    /// violation, refusal): the group's files fail, the batch goes on.
    Refused(String),
}

/// Per-file routing state while a batch is in flight.
#[derive(Clone, Copy)]
struct Pending {
    /// Index into the input batch.
    index: usize,
    /// The file's ring position.
    key: u64,
    /// Submissions consumed (redirects, dead-shard re-routes). Bounded
    /// by `shard_count + max_redirects`.
    attempts: u32,
}

/// A connected fleet router.
#[derive(Debug)]
pub struct Router {
    config: FleetConfig,
    ring: Ring,
    /// `endpoint_of[k]` = index into `config.endpoints` currently
    /// believed to host shard `k`. Starts as the identity permutation;
    /// redirects repair it.
    endpoint_of: Vec<usize>,
}

impl Router {
    /// Builds a router over `config.endpoints` (one per shard).
    ///
    /// # Errors
    /// With an empty endpoint list.
    pub fn new(config: FleetConfig) -> Result<Router, String> {
        let n =
            u32::try_from(config.endpoints.len()).map_err(|_| "too many endpoints".to_string())?;
        if n == 0 {
            return Err("a fleet needs at least one endpoint".into());
        }
        let ring = Ring::new(n);
        let endpoint_of = (0..config.endpoints.len()).collect();
        Ok(Router {
            config,
            ring,
            endpoint_of,
        })
    }

    /// The fleet size this router routes against.
    pub fn shard_count(&self) -> u32 {
        self.ring.shard_count()
    }

    /// Analyzes `files` across the fleet. The returned
    /// [`FleetReport::output`] is byte-identical to a local `bivc`
    /// batch run over the same files; per-file failures (parse errors,
    /// files no live shard could take) are reported in
    /// [`FleetReport::errors`] without disturbing the rest.
    ///
    /// # Errors
    /// Only when *nothing* can be served because every shard is dead.
    /// Per-file trouble never fails the batch.
    pub fn analyze(&mut self, files: Vec<AnalyzeFile>) -> Result<FleetReport, String> {
        let n = self.shard_count();
        let max_attempts = n + self.config.max_redirects;
        // Input-order result slots: a served per-file result, or a
        // routing-level error message.
        let mut slots: Vec<Option<Result<FleetFile, String>>> = vec![None; files.len()];
        let mut alive = vec![true; n as usize];
        let mut dead_shards: Vec<u32> = Vec::new();
        let mut notes: Vec<String> = Vec::new();
        let (mut functions, mut analyzed, mut cached) = (0usize, 0usize, 0usize);
        let (mut redirects, mut busy_retries) = (0u64, 0u64);

        let mut pending: Vec<Pending> = files
            .iter()
            .enumerate()
            .map(|(index, f)| Pending {
                index,
                key: content_key(&f.source),
                attempts: 0,
            })
            .collect();

        while !pending.is_empty() {
            if !alive.iter().any(|&a| a) {
                for p in pending.drain(..) {
                    slots[p.index] = Some(Err(format!(
                        "no live shard left in the fleet ({n} configured, all dead)"
                    )));
                }
                break;
            }

            // Group this round's files by their current shard. BTreeMap
            // keeps the fan-out order deterministic.
            let mut routed: Vec<Pending> = Vec::with_capacity(pending.len());
            let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for p in pending.drain(..) {
                if p.attempts >= max_attempts {
                    slots[p.index] = Some(Err(format!(
                        "gave up after {} attempts (redirect loop or unstable fleet)",
                        p.attempts
                    )));
                    continue;
                }
                // A live shard exists (checked above), so route() hits.
                let shard = self.ring.route(p.key, &alive).expect("a shard is alive");
                groups.entry(shard).or_default().push(routed.len());
                routed.push(p);
            }

            // Fan the groups out, one connection per shard group.
            let round: Vec<(u32, Vec<usize>, GroupOutcome, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|(shard, members)| {
                        let endpoint =
                            self.config.endpoints[self.endpoint_of[shard as usize]].clone();
                        let payload: Vec<AnalyzeFile> = members
                            .iter()
                            .map(|&m| files[routed[m].index].clone())
                            .collect();
                        let cache_cap = self.config.cache_cap;
                        let max_busy = self.config.max_busy_retries;
                        let handle = scope.spawn(move || {
                            submit_group(&endpoint, shard, n, payload, cache_cap, max_busy)
                        });
                        (shard, members, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(shard, members, handle)| {
                        let (outcome, busy) = handle.join().unwrap_or_else(|_| {
                            (GroupOutcome::Refused("router worker panicked".into()), 0)
                        });
                        (shard, members, outcome, busy)
                    })
                    .collect()
            });

            for (shard, members, outcome, busy) in round {
                busy_retries += busy;
                match outcome {
                    GroupOutcome::Served {
                        files: results,
                        functions: f,
                        analyzed: a,
                        cached: c,
                    } => {
                        if results.len() != members.len() {
                            let reason = format!(
                                "shard {shard} answered {} results for {} files",
                                results.len(),
                                members.len()
                            );
                            for &m in &members {
                                slots[routed[m].index] = Some(Err(reason.clone()));
                            }
                            continue;
                        }
                        functions += f;
                        analyzed += a;
                        cached += c;
                        for (&m, result) in members.iter().zip(results) {
                            slots[routed[m].index] = Some(Ok(result));
                        }
                    }
                    GroupOutcome::Redirected {
                        shard_id,
                        shard_count,
                    } => {
                        redirects += 1;
                        if shard_count != n {
                            for &m in &members {
                                slots[routed[m].index] = Some(Err(format!(
                                    "shard disagreement: server believes the fleet is \
                                     {shard_count} shards, router routed for {n}"
                                )));
                            }
                            continue;
                        }
                        if shard_id >= n {
                            for &m in &members {
                                slots[routed[m].index] = Some(Err(format!(
                                    "protocol error: redirect to shard {shard_id} of {n}"
                                )));
                            }
                            continue;
                        }
                        // The endpoint we believed was `shard` is really
                        // `shard_id`. Swap the two beliefs: a merely
                        // permuted list fixes at least one pair per
                        // round and converges.
                        self.endpoint_of.swap(shard as usize, shard_id as usize);
                        for &m in &members {
                            pending.push(Pending {
                                attempts: routed[m].attempts + 1,
                                ..routed[m]
                            });
                        }
                    }
                    GroupOutcome::Dead(reason) | GroupOutcome::Draining(reason) => {
                        if alive[shard as usize] {
                            alive[shard as usize] = false;
                            dead_shards.push(shard);
                            notes.push(format!(
                                "shard {shard} marked dead, re-routing its files: {reason}"
                            ));
                        }
                        for &m in &members {
                            pending.push(Pending {
                                attempts: routed[m].attempts + 1,
                                ..routed[m]
                            });
                        }
                    }
                    GroupOutcome::Refused(reason) => {
                        for &m in &members {
                            slots[routed[m].index] = Some(Err(reason.clone()));
                        }
                    }
                }
            }
        }

        // Reassemble in input order: blocks from OK files, hashes in
        // render order, then the cold stats line over the whole batch —
        // exactly what `render_grouped` prints locally.
        let mut output = String::new();
        let mut hashes: Vec<u64> = Vec::new();
        let mut errors: Vec<FileError> = Vec::new();
        for (file, slot) in files.iter().zip(slots) {
            match slot {
                Some(Ok(result)) => {
                    if let Some(message) = result.error {
                        errors.push(FileError {
                            path: file.path.clone(),
                            message,
                        });
                    } else {
                        output.push_str(&result.output);
                        hashes.extend(result.hashes);
                    }
                }
                Some(Err(message)) => errors.push(FileError {
                    path: file.path.clone(),
                    message: format!("{}: {message}", file.path),
                }),
                None => errors.push(FileError {
                    path: file.path.clone(),
                    message: format!("{}: never routed (router bug)", file.path),
                }),
            }
        }

        // Nothing served and every failure was fleet-wide: surface that
        // as a batch error rather than N copies of the same message.
        if !files.is_empty()
            && functions == 0
            && errors.len() == files.len()
            && errors.iter().all(|e| e.message.contains("no live shard"))
        {
            return Err(format!("fleet unavailable: {}", errors[0].message));
        }

        let replay_cap = self
            .config
            .cache_cap
            .unwrap_or_else(|| biv_core::BatchOptions::default().cache_capacity);
        let stats = cold_batch_stats(&hashes, replay_cap);
        output.push_str(&stats.render());
        output.push('\n');

        Ok(FleetReport {
            output,
            functions,
            analyzed,
            cached,
            errors,
            redirects,
            busy_retries,
            dead_shards,
            notes,
        })
    }
}

/// Sends one shard group and classifies the exchange, returning the
/// outcome plus how many busy rejections backoff absorbed. Everything
/// except busy handling maps onto a [`GroupOutcome`] for the round loop
/// to act on.
fn submit_group(
    endpoint: &str,
    shard: u32,
    shard_count: u32,
    payload: Vec<AnalyzeFile>,
    cache_cap: Option<usize>,
    max_busy_retries: u32,
) -> (GroupOutcome, u64) {
    if faults::fire("fleet.shard.unreachable") {
        return (
            GroupOutcome::Dead("fault injected: shard unreachable".into()),
            0,
        );
    }
    let endpoint = Endpoint::parse(endpoint);
    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            return (
                GroupOutcome::Dead(format!("cannot connect to {endpoint}: {e}")),
                0,
            )
        }
    };
    let request = Request::AnalyzeFleet {
        files: payload,
        cache_cap,
        shard_id: shard,
        shard_count,
    };
    let mut attempt = 0u32;
    loop {
        let outcome = match client.request(&request) {
            Ok(Response::AnalyzeFleet {
                files,
                functions,
                analyzed,
                cached,
            }) => GroupOutcome::Served {
                files,
                functions,
                analyzed,
                cached,
            },
            Ok(Response::Redirect {
                shard_id,
                shard_count,
                ..
            }) => GroupOutcome::Redirected {
                shard_id,
                shard_count,
            },
            Ok(Response::Busy { retry_after_ms }) => {
                attempt += 1;
                if attempt > max_busy_retries {
                    GroupOutcome::Refused(format!(
                        "shard {shard} saturated (busy after {max_busy_retries} retries; \
                         last hint {retry_after_ms} ms)"
                    ))
                } else {
                    std::thread::sleep(busy_backoff(retry_after_ms, attempt));
                    continue;
                }
            }
            Ok(Response::Error { kind, message }) if kind == "draining" => {
                GroupOutcome::Draining(format!("shard {shard} is draining: {message}"))
            }
            Ok(Response::Error { kind, message }) => {
                GroupOutcome::Refused(format!("shard {shard} refused ({kind}): {message}"))
            }
            Ok(other) => {
                GroupOutcome::Refused(format!("shard {shard} answered out of protocol: {other:?}"))
            }
            Err(e) => GroupOutcome::Dead(format!("shard {shard} at {endpoint}: {e}")),
        };
        return (outcome, u64::from(attempt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_server::server::{Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    const SRC_A: &str = "func f(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }\n";
    const SRC_B: &str = "func g(n) { L1: for i = 1 to n { B[i] = 2 * i } }\n";

    fn spawn_shard(
        shard_id: u32,
        shard_count: u32,
    ) -> (String, std::thread::JoinHandle<()>, &'static AtomicBool) {
        let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
        config.workers = 1;
        config.shard_id = shard_id;
        config.shard_count = shard_count;
        let server = Server::bind(config).expect("bind 127.0.0.1:0");
        let endpoint = server.bound_endpoint();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let handle = std::thread::spawn(move || {
            server.run(flag).expect("shard run");
        });
        (endpoint, handle, flag)
    }

    /// What a local `bivc` batch run prints for `files` — the bytes the
    /// router must reproduce.
    fn local_output(files: &[AnalyzeFile], cap: usize) -> String {
        use biv_core::{analyze_batch, render_grouped, BatchOptions};
        let mut funcs = Vec::new();
        let mut ranges = Vec::new();
        for f in files {
            let program = biv_ir::parser::parse_program(&f.source).unwrap();
            ranges.push((f.path.clone(), program.functions.len()));
            funcs.extend(program.functions);
        }
        let opts = BatchOptions {
            cache_capacity: cap,
            ..BatchOptions::default()
        };
        let report = analyze_batch(&funcs, &opts);
        let hashes: Vec<u64> = report.functions.iter().map(|f| f.hash).collect();
        let cold = cold_batch_stats(&hashes, cap);
        render_grouped(&ranges, &report.functions, &cold)
    }

    /// A TCP endpoint that refuses connections: bind, read the port,
    /// drop the listener.
    fn refused_endpoint() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        format!("tcp:{addr}")
    }

    fn stop(shards: Vec<(String, std::thread::JoinHandle<()>, &'static AtomicBool)>) {
        for (_, handle, flag) in shards {
            flag.store(true, Ordering::SeqCst);
            handle.join().unwrap();
        }
    }

    #[test]
    fn three_shard_fleet_matches_local_bytes() {
        let shards: Vec<_> = (0..3).map(|k| spawn_shard(k, 3)).collect();
        let endpoints: Vec<String> = shards.iter().map(|(e, _, _)| e.clone()).collect();
        let files: Vec<AnalyzeFile> = (0..6)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: if i % 2 == 0 { SRC_A } else { SRC_B }.to_string(),
            })
            .collect();

        let mut config = FleetConfig::new(endpoints);
        config.cache_cap = Some(4);
        let mut router = Router::new(config).unwrap();
        let report = router.analyze(files.clone()).unwrap();

        assert_eq!(report.output, local_output(&files, 4));
        assert_eq!(report.functions, 6);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert!(report.dead_shards.is_empty());
        stop(shards);
    }

    #[test]
    fn permuted_endpoints_converge_via_redirects() {
        let shards: Vec<_> = (0..3).map(|k| spawn_shard(k, 3)).collect();
        // Hand the router the endpoints rotated by one: every shard it
        // addresses answers with a redirect until the mapping is
        // repaired.
        let endpoints: Vec<String> = (0..3).map(|i| shards[(i + 1) % 3].0.clone()).collect();
        let files: Vec<AnalyzeFile> = (0..4)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: format!("func f{i}(n) {{ L1: for i = 1 to n {{ A[i] = {i} }} }}\n"),
            })
            .collect();

        let mut router = Router::new(FleetConfig::new(endpoints)).unwrap();
        let report = router.analyze(files.clone()).unwrap();

        assert!(report.redirects > 0, "rotation must trigger redirects");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.output, local_output(&files, 4096));
        stop(shards);
    }

    #[test]
    fn dead_shard_fails_over_to_successors() {
        // Shard 1's endpoint refuses connections; its files must land
        // on ring successors, and the output must still match a local
        // run exactly.
        let s0 = spawn_shard(0, 3);
        let s2 = spawn_shard(2, 3);
        let endpoints = vec![s0.0.clone(), refused_endpoint(), s2.0.clone()];
        let files: Vec<AnalyzeFile> = (0..8)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: format!("func h{i}(n) {{ L1: for i = 1 to n {{ A[i] = i + {i} }} }}\n"),
            })
            .collect();

        let mut router = Router::new(FleetConfig::new(endpoints)).unwrap();
        let report = router.analyze(files.clone()).unwrap();

        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.output, local_output(&files, 4096));
        // Whether shard 1 is *observed* dead depends on whether any
        // file routed there; with 8 distinct sources it practically
        // always is, but correctness above is the real assertion.
        stop(vec![s0, s2]);
    }

    #[test]
    fn parse_errors_fail_the_file_not_the_batch() {
        let shard = spawn_shard(0, 1);
        let files = vec![
            AnalyzeFile {
                path: "good.biv".into(),
                source: SRC_A.to_string(),
            },
            AnalyzeFile {
                path: "bad.biv".into(),
                source: "func broken(".to_string(),
            },
        ];
        let mut router = Router::new(FleetConfig::new(vec![shard.0.clone()])).unwrap();
        let report = router.analyze(files).unwrap();
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].message.contains("parse error"));
        assert!(report.output.contains("══ good.biv ══"));
        assert!(!report.output.contains("bad.biv"));
        stop(vec![shard]);
    }

    #[test]
    fn all_shards_dead_is_a_batch_error() {
        let mut router = Router::new(FleetConfig::new(vec![refused_endpoint()])).unwrap();
        let err = router
            .analyze(vec![AnalyzeFile {
                path: "x.biv".into(),
                source: SRC_A.to_string(),
            }])
            .unwrap_err();
        assert!(err.contains("fleet unavailable"), "{err}");
    }

    #[test]
    fn empty_batch_renders_the_zero_stats_line() {
        let shard = spawn_shard(0, 1);
        let mut router = Router::new(FleetConfig::new(vec![shard.0.clone()])).unwrap();
        let report = router.analyze(Vec::new()).unwrap();
        assert_eq!(
            report.output,
            "batch: 0 functions, 0 analyzed, 0 cache hits, 0 evictions\n"
        );
        stop(vec![shard]);
    }
}
