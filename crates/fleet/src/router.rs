//! The fleet router: fans one analyze batch out across N shards and
//! reassembles the responses **byte-identically** to a single local
//! `bivc` run.
//!
//! ```text
//!              ┌──────── shard 0 ──────── per-file blocks ┐
//!  files ──┬──▶│                                          ├──▶ input-order
//!          │   ├──────── shard 1 ──────── per-file blocks ┤    blocks +
//!          │   │                                          │    cold stats
//!          └──▶└──────── shard 2 ──────── per-file blocks ┘    line
//! ```
//!
//! Routing is by content key ([`crate::ring::content_key`]) over the
//! consistent-hash [`Ring`], so identical sources always land on the
//! shard whose structural cache already holds their summaries. The
//! fan-out runs in rounds: every pending file is grouped by its current
//! shard, groups go out concurrently (one connection per group), and
//! whatever a group's shard could not serve comes back as *pending* for
//! the next round:
//!
//! - an unreachable or mid-batch-killed shard is marked dead and its
//!   group re-routes;
//! - a [`Response::Redirect`] teaches the router the endpoint's actual
//!   shard identity (endpoints listed in the wrong order converge in
//!   one extra round per misplaced pair) and the group re-sends;
//! - a draining shard is treated as departing: dead, re-route.
//!
//! **Bootstrap.** [`Router::new`] first treats the configured endpoints
//! as *seeds*: it asks each in turn for the fleet's membership view
//! (`members` frame). The first view answer puts the router in
//! *membership mode* — ring size, per-shard endpoints, initial
//! liveness, and the replication factor R all come from the view, so
//! one live seed suffices to discover the whole ring. A seed that
//! answers `no-cluster` (a fleet run without membership agents) drops
//! the router into the legacy *static mode*, where the endpoint list
//! itself is the ring.
//!
//! **Failover scope.** Static mode re-routes a dead shard's files to
//! any live ring successor — correct, but only warm by accident. In
//! membership mode re-routing is scoped to each key's *replica set*
//! (the R successors that replication actually writes to, see
//! [`crate::replicate`]): a SIGKILLed primary's files are served warm
//! by a replica, and a file whose **entire** replica set is dead fails
//! as a file (`no live replica`) while the rest of the batch completes
//! byte-identically.
//!
//! Every file carries an attempt budget (`shard_count` +
//! [`FleetConfig::max_redirects`]); a file that exhausts it fails *as a
//! file* — the batch always completes with every other file's bytes
//! intact. Per-shard busy rejections are absorbed with the exact client
//! backoff policy ([`biv_server::client::busy_backoff`]); a group that
//! exhausts its backoff budget is counted in
//! [`FleetReport::backoff_exhausted`] (and the process-wide ledger,
//! [`biv_server::client::backoff_exhausted`]).

use std::collections::BTreeMap;
use std::time::Duration;

use biv_core::cold_batch_stats;
use biv_server::client::{busy_backoff, note_backoff_exhausted};
use biv_server::net::Endpoint;
use biv_server::{AnalyzeFile, Client, FileError, FleetFile, Request, Response};

use crate::faults;
use crate::membership::{MemberState, View};
use crate::ring::{content_key, Ring};

/// How long one membership probe (connect + `members` exchange) may
/// take before the router tries the next seed.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// How the router talks to its fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Seed endpoints (`tcp:HOST:PORT` or a Unix socket path). With a
    /// membership-running fleet, any one live entry bootstraps the full
    /// ring; against an agent-less fleet this is the static shard list,
    /// `endpoints[k]` believed to be shard `k` (a misordered list is
    /// repaired at runtime from redirect responses).
    pub endpoints: Vec<String>,
    /// Cold-replay cache capacity for the stats line, exactly as
    /// `bivc --cache-cap` passes it. `None` means the default.
    pub cache_cap: Option<usize>,
    /// Extra per-file attempts beyond one per shard before a file fails
    /// with a give-up error.
    pub max_redirects: u32,
    /// Busy rejections tolerated per group submission before the shard
    /// is declared saturated for those files.
    pub max_busy_retries: u32,
    /// Render verified per-loop invariants in each shard's per-file
    /// blocks, exactly as `bivc --invariants` does locally. Shards
    /// always *compute* invariants (they live in the cached summaries);
    /// this flag only selects the rendering, so warm and cold fleet
    /// runs stay byte-identical for either setting.
    pub invariants: bool,
}

impl FleetConfig {
    /// A config for `endpoints` with the default retry budgets.
    pub fn new(endpoints: Vec<String>) -> FleetConfig {
        FleetConfig {
            endpoints,
            cache_cap: None,
            max_redirects: 4,
            max_busy_retries: 10,
            invariants: false,
        }
    }
}

/// The reassembled result of one fleet batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// The batch report — byte-identical to a local `bivc` run over the
    /// same readable, parsable files (failed files excepted, listed in
    /// `errors`).
    pub output: String,
    /// Functions analyzed or served from shard caches.
    pub functions: usize,
    /// Distinct structures actually analyzed across the fleet.
    pub analyzed: usize,
    /// Functions served from warm shard caches.
    pub cached: usize,
    /// Per-file failures: parse errors from shards, plus files the
    /// router could not place anywhere.
    pub errors: Vec<FileError>,
    /// Redirect responses survived while converging on endpoint
    /// identities.
    pub redirects: u64,
    /// Busy rejections absorbed by backoff across all shards.
    pub busy_retries: u64,
    /// Group submissions that ran out of busy-backoff budget.
    pub backoff_exhausted: u64,
    /// Shards found dead (unreachable or draining) during the batch.
    pub dead_shards: Vec<u32>,
    /// Human-readable routing events (shard deaths and why) for the
    /// caller's stderr; never part of `output`.
    pub notes: Vec<String>,
}

/// What one per-shard group submission came back with.
enum GroupOutcome {
    /// The shard served the group: per-file results in request order.
    Served {
        files: Vec<FleetFile>,
        functions: usize,
        analyzed: usize,
        cached: usize,
    },
    /// The endpoint answered with its actual identity; re-route.
    Redirected { shard_id: u32, shard_count: u32 },
    /// The endpoint is unreachable or died mid-exchange; its files
    /// re-route.
    Dead(String),
    /// The shard is draining; treated as departing (dead, re-route).
    Draining(String),
    /// The shard answered but unusably (busy exhaustion, protocol
    /// violation, refusal): the group's files fail, the batch goes on.
    Refused(String),
}

/// Per-file routing state while a batch is in flight.
#[derive(Clone, Copy)]
struct Pending {
    /// Index into the input batch.
    index: usize,
    /// The file's ring position.
    key: u64,
    /// Submissions consumed (redirects, dead-shard re-routes). Bounded
    /// by `shard_count + max_redirects`.
    attempts: u32,
}

/// Where the router learned the ring, and how far failover may roam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteScope {
    /// Legacy static endpoint list: failover walks the whole ring.
    Static,
    /// Membership bootstrap: failover is scoped to each key's R-replica
    /// set — only those shards received the key's summaries.
    Replicas(u32),
}

/// A connected fleet router.
#[derive(Debug)]
pub struct Router {
    config: FleetConfig,
    ring: Ring,
    /// `endpoints_by_shard[k]` = the endpoint currently believed to
    /// host shard `k` (`None` for a member the view has no endpoint
    /// for). Redirect responses repair misassignments by swapping.
    endpoints_by_shard: Vec<Option<String>>,
    /// Liveness at bootstrap time; each batch starts from this and
    /// marks further deaths as it finds them.
    initial_alive: Vec<bool>,
    scope: RouteScope,
}

impl Router {
    /// Builds a router over `config.endpoints`: membership mode if any
    /// seed answers a `members` probe with a view, static mode
    /// otherwise (see the module docs).
    ///
    /// # Errors
    /// With an empty endpoint list.
    pub fn new(config: FleetConfig) -> Result<Router, String> {
        if config.endpoints.is_empty() {
            return Err("a fleet needs at least one endpoint".into());
        }
        match probe_members(&config.endpoints) {
            Some(view) => Router::from_members(config, &view),
            None => Router::from_static(config),
        }
    }

    /// Builds a static-mode router: the endpoint list is the ring.
    ///
    /// # Errors
    /// With an empty endpoint list.
    pub fn from_static(config: FleetConfig) -> Result<Router, String> {
        let n =
            u32::try_from(config.endpoints.len()).map_err(|_| "too many endpoints".to_string())?;
        if n == 0 {
            return Err("a fleet needs at least one endpoint".into());
        }
        let endpoints_by_shard = config.endpoints.iter().cloned().map(Some).collect();
        Ok(Router {
            config,
            ring: Ring::new(n),
            endpoints_by_shard,
            initial_alive: vec![true; n as usize],
            scope: RouteScope::Static,
        })
    }

    /// Builds a membership-mode router from a bootstrap view: ring
    /// size, endpoints, liveness, and the replica scope all come from
    /// the view. `config.endpoints` is kept only as the seed list.
    ///
    /// # Errors
    /// When the view describes an empty or oversized ring.
    pub fn from_members(config: FleetConfig, view: &View) -> Result<Router, String> {
        let n = view.shard_count;
        if n == 0 {
            return Err("membership view describes an empty ring".into());
        }
        if n > 65_536 {
            return Err(format!("membership view describes {n} shards; refusing"));
        }
        let mut endpoints_by_shard: Vec<Option<String>> = vec![None; n as usize];
        let mut initial_alive = vec![false; n as usize];
        for m in &view.members {
            if m.shard_id >= n {
                continue;
            }
            endpoints_by_shard[m.shard_id as usize] = Some(m.endpoint.clone());
            // Anything short of Dead is still worth one dial: a
            // Suspect may well be alive, and a Draining record can be
            // a stale rumor about a shard that has already restarted.
            // If the dial fails the first group finds out and
            // re-routes; only a settled Dead verdict skips upfront.
            initial_alive[m.shard_id as usize] = m.state != MemberState::Dead;
        }
        Ok(Router {
            config,
            ring: Ring::new(n),
            endpoints_by_shard,
            initial_alive,
            scope: RouteScope::Replicas(view.replication.max(1)),
        })
    }

    /// The fleet size this router routes against.
    pub fn shard_count(&self) -> u32 {
        self.ring.shard_count()
    }

    /// The replica scope when bootstrapped from a membership view
    /// (`None` in static mode).
    pub fn replica_scope(&self) -> Option<u32> {
        match self.scope {
            RouteScope::Static => None,
            RouteScope::Replicas(r) => Some(r),
        }
    }

    /// Analyzes `files` across the fleet. The returned
    /// [`FleetReport::output`] is byte-identical to a local `bivc`
    /// batch run over the same files; per-file failures (parse errors,
    /// files no live shard — or no live replica — could take) are
    /// reported in [`FleetReport::errors`] without disturbing the rest.
    ///
    /// # Errors
    /// Only when *nothing* can be served because every shard is dead.
    /// Per-file trouble never fails the batch.
    pub fn analyze(&mut self, files: Vec<AnalyzeFile>) -> Result<FleetReport, String> {
        let n = self.shard_count();
        let max_attempts = n + self.config.max_redirects;
        // Input-order result slots: a served per-file result, or a
        // routing-level error message.
        let mut slots: Vec<Option<Result<FleetFile, String>>> = vec![None; files.len()];
        let mut alive = self.initial_alive.clone();
        let mut dead_shards: Vec<u32> = Vec::new();
        let mut notes: Vec<String> = Vec::new();
        let (mut functions, mut analyzed, mut cached) = (0usize, 0usize, 0usize);
        let (mut redirects, mut busy_retries, mut backoff_exhausted) = (0u64, 0u64, 0u64);

        let mut pending: Vec<Pending> = files
            .iter()
            .enumerate()
            .map(|(index, f)| Pending {
                index,
                key: content_key(&f.source),
                attempts: 0,
            })
            .collect();

        while !pending.is_empty() {
            if !alive.iter().any(|&a| a) {
                for p in pending.drain(..) {
                    slots[p.index] = Some(Err(format!(
                        "no live shard left in the fleet ({n} configured, all dead)"
                    )));
                }
                break;
            }

            // Group this round's files by their current shard. BTreeMap
            // keeps the fan-out order deterministic.
            let mut routed: Vec<Pending> = Vec::with_capacity(pending.len());
            let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for p in std::mem::take(&mut pending) {
                if p.attempts >= max_attempts {
                    slots[p.index] = Some(Err(format!(
                        "gave up after {} attempts (redirect loop or unstable fleet)",
                        p.attempts
                    )));
                    continue;
                }
                let shard = match self.scope {
                    // A live shard exists (checked above), so static
                    // routing always hits.
                    RouteScope::Static => self.ring.route(p.key, &alive),
                    // Replica-scoped: only the R shards that hold this
                    // key's summaries are candidates.
                    RouteScope::Replicas(r) => self.ring.route_replica(p.key, &alive, r),
                };
                let Some(shard) = shard else {
                    slots[p.index] = Some(Err(
                        "no live replica: this file's primary and every replica are dead".into(),
                    ));
                    continue;
                };
                if self.endpoints_by_shard[shard as usize].is_none() {
                    // Membership never met this shard; treat as dead and
                    // retry the file against the rest of its set.
                    if alive[shard as usize] {
                        alive[shard as usize] = false;
                        dead_shards.push(shard);
                        notes.push(format!("shard {shard} has no known endpoint, skipping"));
                    }
                    pending.push(Pending {
                        attempts: p.attempts + 1,
                        ..p
                    });
                    continue;
                }
                groups.entry(shard).or_default().push(routed.len());
                routed.push(p);
            }
            if routed.is_empty() {
                continue;
            }

            // Fan the groups out, one connection per shard group.
            let round: Vec<(u32, Vec<usize>, GroupOutcome, u64, bool)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = groups
                        .into_iter()
                        .map(|(shard, members)| {
                            let endpoint = self.endpoints_by_shard[shard as usize]
                                .clone()
                                .expect("groups only form over known endpoints");
                            let payload: Vec<AnalyzeFile> = members
                                .iter()
                                .map(|&m| files[routed[m].index].clone())
                                .collect();
                            let cache_cap = self.config.cache_cap;
                            let max_busy = self.config.max_busy_retries;
                            let invariants = self.config.invariants;
                            let handle = scope.spawn(move || {
                                submit_group(
                                    &endpoint, shard, n, payload, cache_cap, max_busy, invariants,
                                )
                            });
                            (shard, members, handle)
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(shard, members, handle)| {
                            let (outcome, busy, exhausted) = handle.join().unwrap_or_else(|_| {
                                (
                                    GroupOutcome::Refused("router worker panicked".into()),
                                    0,
                                    false,
                                )
                            });
                            (shard, members, outcome, busy, exhausted)
                        })
                        .collect()
                });

            for (shard, members, outcome, busy, exhausted) in round {
                busy_retries += busy;
                backoff_exhausted += u64::from(exhausted);
                match outcome {
                    GroupOutcome::Served {
                        files: results,
                        functions: f,
                        analyzed: a,
                        cached: c,
                    } => {
                        if results.len() != members.len() {
                            let reason = format!(
                                "shard {shard} answered {} results for {} files",
                                results.len(),
                                members.len()
                            );
                            for &m in &members {
                                slots[routed[m].index] = Some(Err(reason.clone()));
                            }
                            continue;
                        }
                        functions += f;
                        analyzed += a;
                        cached += c;
                        for (&m, result) in members.iter().zip(results) {
                            slots[routed[m].index] = Some(Ok(result));
                        }
                    }
                    GroupOutcome::Redirected {
                        shard_id,
                        shard_count,
                    } => {
                        redirects += 1;
                        if shard_count != n {
                            for &m in &members {
                                slots[routed[m].index] = Some(Err(format!(
                                    "shard disagreement: server believes the fleet is \
                                     {shard_count} shards, router routed for {n}"
                                )));
                            }
                            continue;
                        }
                        if shard_id >= n {
                            for &m in &members {
                                slots[routed[m].index] = Some(Err(format!(
                                    "protocol error: redirect to shard {shard_id} of {n}"
                                )));
                            }
                            continue;
                        }
                        // The endpoint we believed was `shard` is really
                        // `shard_id`. Swap the two beliefs: a merely
                        // permuted list fixes at least one pair per
                        // round and converges.
                        self.endpoints_by_shard
                            .swap(shard as usize, shard_id as usize);
                        for &m in &members {
                            pending.push(Pending {
                                attempts: routed[m].attempts + 1,
                                ..routed[m]
                            });
                        }
                    }
                    GroupOutcome::Dead(reason) | GroupOutcome::Draining(reason) => {
                        if alive[shard as usize] {
                            alive[shard as usize] = false;
                            dead_shards.push(shard);
                            notes.push(format!(
                                "shard {shard} marked dead, re-routing its files: {reason}"
                            ));
                        }
                        for &m in &members {
                            pending.push(Pending {
                                attempts: routed[m].attempts + 1,
                                ..routed[m]
                            });
                        }
                    }
                    GroupOutcome::Refused(reason) => {
                        for &m in &members {
                            slots[routed[m].index] = Some(Err(reason.clone()));
                        }
                    }
                }
            }
        }

        // Reassemble in input order: blocks from OK files, hashes in
        // render order, then the cold stats line over the whole batch —
        // exactly what `render_grouped` prints locally.
        let mut output = String::new();
        let mut hashes: Vec<u64> = Vec::new();
        let mut errors: Vec<FileError> = Vec::new();
        for (file, slot) in files.iter().zip(slots) {
            match slot {
                Some(Ok(result)) => {
                    if let Some(message) = result.error {
                        errors.push(FileError {
                            path: file.path.clone(),
                            message,
                        });
                    } else {
                        output.push_str(&result.output);
                        hashes.extend(result.hashes);
                    }
                }
                Some(Err(message)) => errors.push(FileError {
                    path: file.path.clone(),
                    message: format!("{}: {message}", file.path),
                }),
                None => errors.push(FileError {
                    path: file.path.clone(),
                    message: format!("{}: never routed (router bug)", file.path),
                }),
            }
        }

        // Nothing served and every failure was fleet-wide: surface that
        // as a batch error rather than N copies of the same message.
        if !files.is_empty()
            && functions == 0
            && errors.len() == files.len()
            && errors.iter().all(|e| e.message.contains("no live shard"))
        {
            return Err(format!("fleet unavailable: {}", errors[0].message));
        }

        let replay_cap = self
            .config
            .cache_cap
            .unwrap_or_else(|| biv_core::BatchOptions::default().cache_capacity);
        let stats = cold_batch_stats(&hashes, replay_cap);
        output.push_str(&stats.render());
        output.push('\n');

        Ok(FleetReport {
            output,
            functions,
            analyzed,
            cached,
            errors,
            redirects,
            busy_retries,
            backoff_exhausted,
            dead_shards,
            notes,
        })
    }
}

/// Probes the seed endpoints in order for a membership view. The first
/// view answer wins; a `no-cluster` answer proves this fleet runs no
/// agents, so probing stops and static mode takes over immediately.
fn probe_members(seeds: &[String]) -> Option<View> {
    for seed in seeds {
        let Ok(mut client) = Client::connect_timeout(&Endpoint::parse(seed), PROBE_TIMEOUT) else {
            continue;
        };
        match client.request(&Request::Members) {
            Ok(Response::Members { view } | Response::Gossip { view }) => {
                if let Ok(view) = View::from_json(&view) {
                    if view.shard_count > 0 {
                        return Some(view);
                    }
                }
            }
            Ok(Response::Error { kind, .. }) if kind == "no-cluster" => return None,
            _ => continue,
        }
    }
    None
}

/// Sends one shard group and classifies the exchange, returning the
/// outcome, how many busy rejections backoff absorbed, and whether the
/// backoff budget ran out. Everything except busy handling maps onto a
/// [`GroupOutcome`] for the round loop to act on.
fn submit_group(
    endpoint: &str,
    shard: u32,
    shard_count: u32,
    payload: Vec<AnalyzeFile>,
    cache_cap: Option<usize>,
    max_busy_retries: u32,
    invariants: bool,
) -> (GroupOutcome, u64, bool) {
    if faults::fire("fleet.shard.unreachable") {
        return (
            GroupOutcome::Dead("fault injected: shard unreachable".into()),
            0,
            false,
        );
    }
    let endpoint = Endpoint::parse(endpoint);
    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            return (
                GroupOutcome::Dead(format!("cannot connect to {endpoint}: {e}")),
                0,
                false,
            )
        }
    };
    let request = Request::AnalyzeFleet {
        files: payload,
        cache_cap,
        shard_id: shard,
        shard_count,
        invariants,
    };
    let mut attempt = 0u32;
    loop {
        let mut exhausted = false;
        let outcome = match client.request(&request) {
            Ok(Response::AnalyzeFleet {
                files,
                functions,
                analyzed,
                cached,
            }) => GroupOutcome::Served {
                files,
                functions,
                analyzed,
                cached,
            },
            Ok(Response::Redirect {
                shard_id,
                shard_count,
                ..
            }) => GroupOutcome::Redirected {
                shard_id,
                shard_count,
            },
            Ok(Response::Busy { retry_after_ms }) => {
                attempt += 1;
                if attempt > max_busy_retries {
                    note_backoff_exhausted();
                    exhausted = true;
                    GroupOutcome::Refused(format!(
                        "shard {shard} saturated (busy after {max_busy_retries} retries; \
                         last hint {retry_after_ms} ms)"
                    ))
                } else {
                    std::thread::sleep(busy_backoff(retry_after_ms, attempt));
                    continue;
                }
            }
            Ok(Response::Error { kind, message }) if kind == "draining" => {
                GroupOutcome::Draining(format!("shard {shard} is draining: {message}"))
            }
            Ok(Response::Error { kind, message }) => {
                GroupOutcome::Refused(format!("shard {shard} refused ({kind}): {message}"))
            }
            Ok(other) => {
                GroupOutcome::Refused(format!("shard {shard} answered out of protocol: {other:?}"))
            }
            Err(e) => GroupOutcome::Dead(format!("shard {shard} at {endpoint}: {e}")),
        };
        return (outcome, u64::from(attempt), exhausted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::{AgentConfig, ClusterAgent, Member};
    use biv_server::server::{Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    const SRC_A: &str = "func f(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }\n";
    const SRC_B: &str = "func g(n) { L1: for i = 1 to n { B[i] = 2 * i } }\n";

    fn spawn_shard(
        shard_id: u32,
        shard_count: u32,
    ) -> (String, std::thread::JoinHandle<()>, &'static AtomicBool) {
        let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
        config.workers = 1;
        config.shard_id = shard_id;
        config.shard_count = shard_count;
        let server = Server::bind(config).expect("bind 127.0.0.1:0");
        let endpoint = server.bound_endpoint();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let handle = std::thread::spawn(move || {
            server.run(flag).expect("shard run");
        });
        (endpoint, handle, flag)
    }

    /// A shard with a membership agent attached: gossips to `seeds`,
    /// answers `members`, replicates with R=2.
    fn spawn_member_shard(
        shard_id: u32,
        shard_count: u32,
        seeds: Vec<String>,
    ) -> (String, std::thread::JoinHandle<()>, &'static AtomicBool) {
        let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
        config.workers = 1;
        config.shard_id = shard_id;
        config.shard_count = shard_count;
        let mut server = Server::bind(config).expect("bind 127.0.0.1:0");
        let endpoint = server.bound_endpoint();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let mut agent = AgentConfig::new(shard_id, shard_count, endpoint.clone())
            .with_heartbeat(std::time::Duration::from_millis(50));
        agent.seeds = seeds;
        let (hook, _threads) = ClusterAgent::spawn(agent, flag);
        server.install_cluster(hook);
        let handle = std::thread::spawn(move || {
            server.run(flag).expect("shard run");
        });
        (endpoint, handle, flag)
    }

    /// What a local `bivc` batch run prints for `files` — the bytes the
    /// router must reproduce.
    fn local_output(files: &[AnalyzeFile], cap: usize) -> String {
        local_output_with(files, cap, false)
    }

    fn local_output_with(files: &[AnalyzeFile], cap: usize, invariants: bool) -> String {
        use biv_core::{analyze_batch, render_grouped_with, BatchOptions};
        let mut funcs = Vec::new();
        let mut ranges = Vec::new();
        for f in files {
            let program = biv_ir::parser::parse_program(&f.source).unwrap();
            ranges.push((f.path.clone(), program.functions.len()));
            funcs.extend(program.functions);
        }
        let opts = BatchOptions {
            cache_capacity: cap,
            ..BatchOptions::default()
        };
        let report = analyze_batch(&funcs, &opts);
        let hashes: Vec<u64> = report.functions.iter().map(|f| f.hash).collect();
        let cold = cold_batch_stats(&hashes, cap);
        render_grouped_with(&ranges, &report.functions, &cold, invariants)
    }

    /// A TCP endpoint that refuses connections: bind, read the port,
    /// drop the listener.
    fn refused_endpoint() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        format!("tcp:{addr}")
    }

    fn stop(shards: Vec<(String, std::thread::JoinHandle<()>, &'static AtomicBool)>) {
        for (_, handle, flag) in shards {
            flag.store(true, Ordering::SeqCst);
            handle.join().unwrap();
        }
    }

    #[test]
    fn three_shard_fleet_matches_local_bytes() {
        let shards: Vec<_> = (0..3).map(|k| spawn_shard(k, 3)).collect();
        let endpoints: Vec<String> = shards.iter().map(|(e, _, _)| e.clone()).collect();
        let files: Vec<AnalyzeFile> = (0..6)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: if i % 2 == 0 { SRC_A } else { SRC_B }.to_string(),
            })
            .collect();

        let mut config = FleetConfig::new(endpoints);
        config.cache_cap = Some(4);
        let mut router = Router::new(config).unwrap();
        assert_eq!(router.replica_scope(), None, "agent-less fleet is static");
        let report = router.analyze(files.clone()).unwrap();

        assert_eq!(report.output, local_output(&files, 4));
        assert_eq!(report.functions, 6);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert!(report.dead_shards.is_empty());
        stop(shards);
    }

    #[test]
    fn three_shard_fleet_invariants_match_local_bytes_warm_and_cold() {
        // Invariant-bearing running-sum loops, spread over 3 shards,
        // rendered with the invariants flag: the reassembled bytes must
        // match a local `--invariants` run on the cold pass AND on a
        // warm repeat (shards serve the second pass from their caches,
        // so the invariant lines must round-trip through the summary).
        let shards: Vec<_> = (0..3).map(|k| spawn_shard(k, 3)).collect();
        let endpoints: Vec<String> = shards.iter().map(|(e, _, _)| e.clone()).collect();
        let files: Vec<AnalyzeFile> = (0..6)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: format!(
                    "func sums{i}(n) {{ i = 1 s = 0 loop {{ s = s + i i = i + 1 \
                     if i > n {{ break }} }} }}\n"
                ),
            })
            .collect();

        let mut config = FleetConfig::new(endpoints);
        config.invariants = true;
        let mut router = Router::new(config).unwrap();
        let want = local_output_with(&files, 4096, true);
        assert!(
            want.contains("invariant: "),
            "the planted loops must actually carry invariants:\n{want}"
        );

        let cold = router.analyze(files.clone()).unwrap();
        assert!(cold.errors.is_empty(), "{:?}", cold.errors);
        assert_eq!(cold.output, want, "cold fleet bytes");

        let warm = router.analyze(files.clone()).unwrap();
        assert!(warm.errors.is_empty(), "{:?}", warm.errors);
        assert_eq!(warm.output, want, "warm fleet bytes");
        assert!(warm.cached > 0, "second pass must hit shard caches");
        stop(shards);
    }

    #[test]
    fn permuted_endpoints_converge_via_redirects() {
        let shards: Vec<_> = (0..3).map(|k| spawn_shard(k, 3)).collect();
        // Hand the router the endpoints rotated by one: every shard it
        // addresses answers with a redirect until the mapping is
        // repaired.
        let endpoints: Vec<String> = (0..3).map(|i| shards[(i + 1) % 3].0.clone()).collect();
        let files: Vec<AnalyzeFile> = (0..4)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: format!("func f{i}(n) {{ L1: for i = 1 to n {{ A[i] = {i} }} }}\n"),
            })
            .collect();

        let mut router = Router::new(FleetConfig::new(endpoints)).unwrap();
        let report = router.analyze(files.clone()).unwrap();

        assert!(report.redirects > 0, "rotation must trigger redirects");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.output, local_output(&files, 4096));
        stop(shards);
    }

    #[test]
    fn dead_shard_fails_over_to_successors() {
        // Shard 1's endpoint refuses connections; its files must land
        // on ring successors, and the output must still match a local
        // run exactly.
        let s0 = spawn_shard(0, 3);
        let s2 = spawn_shard(2, 3);
        let endpoints = vec![s0.0.clone(), refused_endpoint(), s2.0.clone()];
        let files: Vec<AnalyzeFile> = (0..8)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: format!("func h{i}(n) {{ L1: for i = 1 to n {{ A[i] = i + {i} }} }}\n"),
            })
            .collect();

        let mut router = Router::new(FleetConfig::new(endpoints)).unwrap();
        let report = router.analyze(files.clone()).unwrap();

        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.output, local_output(&files, 4096));
        // Whether shard 1 is *observed* dead depends on whether any
        // file routed there; with 8 distinct sources it practically
        // always is, but correctness above is the real assertion.
        stop(vec![s0, s2]);
    }

    #[test]
    fn parse_errors_fail_the_file_not_the_batch() {
        let shard = spawn_shard(0, 1);
        let files = vec![
            AnalyzeFile {
                path: "good.biv".into(),
                source: SRC_A.to_string(),
            },
            AnalyzeFile {
                path: "bad.biv".into(),
                source: "func broken(".to_string(),
            },
        ];
        let mut router = Router::new(FleetConfig::new(vec![shard.0.clone()])).unwrap();
        let report = router.analyze(files).unwrap();
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].message.contains("parse error"));
        assert!(report.output.contains("══ good.biv ══"));
        assert!(!report.output.contains("bad.biv"));
        stop(vec![shard]);
    }

    #[test]
    fn all_shards_dead_is_a_batch_error() {
        let mut router = Router::new(FleetConfig::new(vec![refused_endpoint()])).unwrap();
        let err = router
            .analyze(vec![AnalyzeFile {
                path: "x.biv".into(),
                source: SRC_A.to_string(),
            }])
            .unwrap_err();
        assert!(err.contains("fleet unavailable"), "{err}");
    }

    #[test]
    fn empty_batch_renders_the_zero_stats_line() {
        let shard = spawn_shard(0, 1);
        let mut router = Router::new(FleetConfig::new(vec![shard.0.clone()])).unwrap();
        let report = router.analyze(Vec::new()).unwrap();
        assert_eq!(
            report.output,
            "batch: 0 functions, 0 analyzed, 0 cache hits, 0 evictions\n"
        );
        stop(vec![shard]);
    }

    #[test]
    fn one_seed_bootstraps_the_whole_ring() {
        // Three membership shards; the router is told about only the
        // first. It must learn the other two endpoints from the view
        // and produce byte-identical output.
        let s0 = spawn_member_shard(0, 3, Vec::new());
        let s1 = spawn_member_shard(1, 3, vec![s0.0.clone()]);
        let s2 = spawn_member_shard(2, 3, vec![s0.0.clone()]);

        // Wait for the seed's view to converge on all three members.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let view = probe_members(std::slice::from_ref(&s0.0));
            let alive = view
                .as_ref()
                .map(|v| {
                    v.members
                        .iter()
                        .filter(|m| m.state == MemberState::Alive)
                        .count()
                })
                .unwrap_or(0);
            if alive == 3 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "membership never converged: {view:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(25));
        }

        let files: Vec<AnalyzeFile> = (0..6)
            .map(|i| AnalyzeFile {
                path: format!("mem/{i}.biv"),
                source: format!("func s{i}(n) {{ L1: for i = 1 to n {{ A[i] = i + {i} }} }}\n"),
            })
            .collect();
        let mut router = Router::new(FleetConfig::new(vec![s0.0.clone()])).unwrap();
        assert_eq!(router.shard_count(), 3, "ring learned from the view");
        assert_eq!(router.replica_scope(), Some(2), "R rides in the view");
        let report = router.analyze(files.clone()).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.output, local_output(&files, 4096));
        stop(vec![s0, s1, s2]);
    }

    #[test]
    fn double_failure_with_r2_fails_those_files_and_serves_the_rest() {
        // Five shards, R=2. One file's entire replica set (primary +
        // replica) is dead: that file must fail with a per-file error
        // while every other file is served byte-identically — replica
        // scoping must NOT walk past the replica set to a shard that
        // never received the key's summaries.
        let n = 5u32;
        let ring = Ring::new(n);
        let doomed = AnalyzeFile {
            path: "doomed.biv".into(),
            source: SRC_A.to_string(),
        };
        let dead = ring.successors(content_key(&doomed.source), 2);
        assert_eq!(dead.len(), 2);

        // Find a companion source whose replica set avoids both dead
        // shards — it must survive the double failure untouched.
        let mut survivor = None;
        for i in 0.. {
            let candidate = AnalyzeFile {
                path: "ok.biv".into(),
                source: format!("func ok{i}(n) {{ L1: for i = 1 to n {{ B[i] = {i} }} }}\n"),
            };
            let set = ring.successors(content_key(&candidate.source), 2);
            if !set.iter().any(|s| dead.contains(s)) {
                survivor = Some(candidate);
                break;
            }
        }
        let survivor = survivor.unwrap();

        // Live shards get real servers; the dead pair gets refusing
        // endpoints marked dead in the view.
        let mut shards = Vec::new();
        let mut members = Vec::new();
        for id in 0..n {
            if dead.contains(&id) {
                members.push(Member {
                    shard_id: id,
                    endpoint: refused_endpoint(),
                    incarnation: 1,
                    state: MemberState::Dead,
                });
            } else {
                let s = spawn_shard(id, n);
                members.push(Member {
                    shard_id: id,
                    endpoint: s.0.clone(),
                    incarnation: 1,
                    state: MemberState::Alive,
                });
                shards.push(s);
            }
        }
        let view = View {
            version: 1,
            shard_count: n,
            replication: 2,
            members,
        };
        let seeds: Vec<String> = shards.iter().map(|(e, _, _)| e.clone()).collect();
        let mut router = Router::from_members(FleetConfig::new(seeds), &view).unwrap();

        let files = vec![doomed.clone(), survivor.clone()];
        let report = router.analyze(files).unwrap();

        assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
        assert!(
            report.errors[0].message.contains("no live replica"),
            "{:?}",
            report.errors
        );
        assert_eq!(report.errors[0].path, "doomed.biv");
        // The survivor's bytes are exactly a local run over it alone.
        assert_eq!(
            report.output,
            local_output(std::slice::from_ref(&survivor), 4096)
        );
        stop(shards);
    }
}
