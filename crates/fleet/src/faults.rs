//! Compile-time shim over `biv-faults` so injection sites read the same
//! with or without the `fault-injection` feature. Without it every hook
//! is an inlined constant — the optimizer erases the site entirely, so
//! release builds provably carry no injection behavior.

#![allow(dead_code, missing_docs)]

#[cfg(feature = "fault-injection")]
pub(crate) use biv_faults::fire;

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn fire(_site: &str) -> bool {
    false
}
