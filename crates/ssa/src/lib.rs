//! Static Single Assignment form for the `biv` system.
//!
//! Converts [`biv_ir::Function`] CFGs into SSA form with the two key
//! properties the paper relies on (§2.1):
//!
//! 1. every use of a variable has exactly one reaching definition, and
//! 2. φ-functions merge values at confluence points.
//!
//! Construction is the standard Cytron et al. algorithm — φ placement on
//! dominance frontiers (pruned with liveness) and renaming along the
//! dominator tree. The result keeps the original block IDs, records which
//! source variable each SSA value versions (so values print as the paper's
//! `i2`, `j3` names), and exposes the **SSA graph** — edges from each
//! operation to its source operands — that the classifier runs Tarjan's
//! algorithm over.
//!
//! # Example
//!
//! ```
//! use biv_ir::parser::parse_program;
//! use biv_ssa::SsaFunction;
//!
//! let program = parse_program(
//!     "func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } }",
//! )?;
//! let ssa = SsaFunction::build(&program.functions[0]);
//! // The loop header holds a phi for `i`.
//! let header = ssa.func().block_by_label("L1").unwrap();
//! assert_eq!(ssa.block(header).phis.len(), 1);
//! # Ok::<(), biv_ir::parser::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod dot;
mod fold;
mod interp;
mod print;
mod sccp;
mod ssa;
mod verify;

pub use build::BuildConfig;
pub use dot::ssa_graph_to_dot;
pub use fold::{constant_operand, fold_constants};
pub use interp::{SsaInterpError, SsaInterpreter, SsaTrace};
pub use print::ssa_to_string;
pub use sccp::{Lattice, Sccp};
pub use ssa::{Operand, SsaBlock, SsaFunction, SsaInst, SsaTerminator, Value, ValueData, ValueDef};
pub use verify::{verify_ssa, SsaVerifyError};

// The batch-analysis driver shards functions across worker threads;
// everything it moves between threads must be `Send` (and shared caches
// `Sync`). Pin that property at compile time so an accidental `Rc` or
// raw pointer in the SSA data structures fails here, not at a distant
// `thread::scope` call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SsaFunction>();
    assert_send_sync::<ValueData>();
    assert_send_sync::<ValueDef>();
    assert_send_sync::<Value>();
};
