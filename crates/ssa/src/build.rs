//! SSA construction: φ placement on dominance frontiers and renaming.

use biv_ir::cfg::Cfg;
use biv_ir::dataflow::Liveness;
use biv_ir::dom::DomTree;
use biv_ir::loops::loop_simplify;
use biv_ir::{Arena, Block, EntityMap, EntitySet, Function, Inst, SecondaryMap, Terminator, Var};

use crate::ssa::{
    Operand, SsaBlock, SsaFunction, SsaInst, SsaTerminator, Value, ValueData, ValueDef,
};

/// Options for SSA construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// When `true` (the default), φs are only placed where the variable is
    /// live — *pruned* SSA. When `false`, the construction is *minimal*
    /// SSA without the liveness filter (more dead φs; used by the
    /// ablation benchmark).
    pub pruned: bool,
    /// When `true` (the default), run loop-simplify first so every loop
    /// has a preheader and a unique latch — the shape the classifier's
    /// loop-header φ reasoning expects.
    pub simplify_loops: bool,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            pruned: true,
            simplify_loops: true,
        }
    }
}

impl SsaFunction {
    /// Builds pruned SSA form for `func` (loop-simplifying first).
    pub fn build(func: &Function) -> SsaFunction {
        SsaFunction::build_with(func, BuildConfig::default())
    }

    /// Builds SSA form with explicit options. The input is cloned once
    /// (the SSA function owns its simplified CFG); construction itself
    /// borrows that clone.
    pub fn build_with(func: &Function, config: BuildConfig) -> SsaFunction {
        let mut owned = func.clone();
        if config.simplify_loops {
            loop_simplify(&mut owned);
        }
        let (values, blocks, live_ins) = Builder::new(&owned, config).run();
        SsaFunction::from_parts(owned, values, blocks, live_ins)
    }
}

struct Builder<'f> {
    func: &'f Function,
    config: BuildConfig,
    cfg: Cfg,
    dom: DomTree,
    values: Arena<Value, ValueData>,
    blocks: Vec<SsaBlock>,
    /// φ values placed per block, with the var each versions.
    phi_var: EntityMap<Value, Var>,
    /// Pending φ argument lists.
    phi_args: EntityMap<Value, Vec<(Block, Operand)>>,
    /// Renaming stacks.
    stacks: EntityMap<Var, Vec<Value>>,
    /// Version counters per var (dense: every var starts at 0).
    versions: SecondaryMap<Var, u32>,
    /// Memoized live-in values.
    live_ins: EntityMap<Var, Value>,
}

impl<'f> Builder<'f> {
    fn new(func: &'f Function, config: BuildConfig) -> Builder<'f> {
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute_with(func, &cfg);
        let blocks = vec![SsaBlock::default(); func.blocks.len()];
        Builder {
            func,
            config,
            cfg,
            dom,
            values: Arena::new(),
            blocks,
            phi_var: EntityMap::new(),
            phi_args: EntityMap::new(),
            stacks: EntityMap::new(),
            versions: SecondaryMap::new(),
            live_ins: EntityMap::new(),
        }
    }

    fn run(
        mut self,
    ) -> (
        Arena<Value, ValueData>,
        Vec<SsaBlock>,
        EntityMap<Var, Value>,
    ) {
        self.place_phis();
        self.rename(self.func.entry());
        // Commit φ argument lists.
        let mut phi_args = std::mem::take(&mut self.phi_args);
        for (value, args) in phi_args.iter_mut() {
            if let ValueDef::Phi { args: slot } = &mut self.values[value].def {
                *slot = std::mem::take(args);
            }
        }
        (self.values, self.blocks, self.live_ins)
    }

    fn next_version(&mut self, var: Var) -> u32 {
        let counter = self.versions.get_mut(var);
        *counter += 1;
        *counter
    }

    fn place_phis(&mut self) {
        let df = self.dom.dominance_frontiers_with(&self.cfg);
        let entry_live = Liveness::compute(self.func);
        let liveness = if self.config.pruned {
            Some(&entry_live)
        } else {
            None
        };
        // Definition blocks per variable. The entry counts as a definition
        // site for variables live into the function (their LiveIn value).
        let mut def_blocks: EntityMap<Var, Vec<Block>> = EntityMap::new();
        for (b, data) in self.func.blocks.iter() {
            for inst in &data.insts {
                if let Some(v) = inst.def() {
                    let list = def_blocks.get_or_insert_with(v, Vec::new);
                    if !list.contains(&b) {
                        list.push(b);
                    }
                }
            }
        }
        for var in self.func.vars.ids() {
            if entry_live.live_at_entry(self.func.entry(), var) {
                let list = def_blocks.get_or_insert_with(var, Vec::new);
                if !list.contains(&self.func.entry()) {
                    list.push(self.func.entry());
                }
            }
        }
        // Standard worklist over dominance frontiers. The dense map
        // iterates variables in id order, so φ creation order — and with
        // it the SSA value numbering — is a pure function of the input
        // CFG. Batch analysis relies on this: structurally identical
        // functions must get identical value numbers for cached summaries
        // to be exact.
        for (var, defs) in def_blocks.iter() {
            let mut has_phi: EntitySet<Block> = EntitySet::new();
            let mut work: Vec<Block> = defs.clone();
            let mut in_work: EntitySet<Block> = work.iter().copied().collect();
            while let Some(x) = work.pop() {
                for &y in df.frontier(x) {
                    if has_phi.contains(y) {
                        continue;
                    }
                    if let Some(live) = &liveness {
                        if !live.live_at_entry(y, var) {
                            continue;
                        }
                    }
                    has_phi.insert(y);
                    let value = self.values.push(ValueData {
                        def: ValueDef::Phi { args: Vec::new() },
                        block: y,
                        var: Some(var),
                        version: 0, // assigned during renaming
                    });
                    self.blocks[biv_ir::EntityId::index(y)].phis.push(value);
                    self.phi_var.insert(value, var);
                    self.phi_args.insert(value, Vec::new());
                    if in_work.insert(y) {
                        work.push(y);
                    }
                }
            }
        }
    }

    fn current_def(&mut self, var: Var) -> Operand {
        if let Some(top) = self.stacks.get(var).and_then(|s| s.last()) {
            return Operand::Value(*top);
        }
        // No dominating definition: the variable's entry value.
        let value = self.live_in_value(var);
        Operand::Value(value)
    }

    fn live_in_value(&mut self, var: Var) -> Value {
        if let Some(&v) = self.live_ins.get(var) {
            return v;
        }
        let version = self.next_version(var);
        let value = self.values.push(ValueData {
            def: ValueDef::LiveIn { var },
            block: self.func.entry(),
            var: Some(var),
            version,
        });
        self.live_ins.insert(var, value);
        value
    }

    fn resolve(&mut self, op: &biv_ir::Operand) -> Operand {
        match op {
            biv_ir::Operand::Var(v) => self.current_def(*v),
            biv_ir::Operand::Const(c) => Operand::Const(*c),
        }
    }

    fn rename(&mut self, block: Block) {
        // `func` outlives `self` borrows, so block bodies and φ lists are
        // walked in place — no per-block cloning.
        let func = self.func;
        let block_idx = biv_ir::EntityId::index(block);
        let mut pushed: Vec<Var> = Vec::new();
        // φs define first.
        for i in 0..self.blocks[block_idx].phis.len() {
            let phi = self.blocks[block_idx].phis[i];
            let var = self.phi_var[phi];
            let version = self.next_version(var);
            self.values[phi].version = version;
            self.stacks.get_or_insert_with(var, Vec::new).push(phi);
            pushed.push(var);
        }
        // Body.
        for inst in &func.blocks[block].insts {
            match inst {
                Inst::Copy { dst, src } => {
                    let src = self.resolve(src);
                    self.define(block, *dst, ValueDef::Copy { src }, &mut pushed);
                }
                Inst::Neg { dst, src } => {
                    let src = self.resolve(src);
                    self.define(block, *dst, ValueDef::Neg { src }, &mut pushed);
                }
                Inst::Binary { dst, op, lhs, rhs } => {
                    let lhs = self.resolve(lhs);
                    let rhs = self.resolve(rhs);
                    self.define(
                        block,
                        *dst,
                        ValueDef::Binary { op: *op, lhs, rhs },
                        &mut pushed,
                    );
                }
                Inst::Load { dst, array, index } => {
                    let index = index.iter().map(|o| self.resolve(o)).collect();
                    self.define(
                        block,
                        *dst,
                        ValueDef::Load {
                            array: *array,
                            index,
                        },
                        &mut pushed,
                    );
                }
                Inst::Store {
                    array,
                    index,
                    value,
                } => {
                    let index = index.iter().map(|o| self.resolve(o)).collect();
                    let value = self.resolve(value);
                    self.blocks[biv_ir::EntityId::index(block)]
                        .body
                        .push(SsaInst::Store {
                            array: *array,
                            index,
                            value,
                        });
                }
            }
        }
        // Terminator.
        let term = match &func.blocks[block].term {
            Terminator::Jump(b) => SsaTerminator::Jump(*b),
            Terminator::Branch {
                op,
                lhs,
                rhs,
                then_bb,
                else_bb,
            } => {
                let lhs = self.resolve(lhs);
                let rhs = self.resolve(rhs);
                SsaTerminator::Branch {
                    op: *op,
                    lhs,
                    rhs,
                    then_bb: *then_bb,
                    else_bb: *else_bb,
                }
            }
            Terminator::Return => SsaTerminator::Return,
        };
        self.blocks[block_idx].term = Some(term);
        // Fill φ arguments in successors.
        for succ in func.successors(block) {
            let succ_idx = biv_ir::EntityId::index(succ);
            for i in 0..self.blocks[succ_idx].phis.len() {
                let phi = self.blocks[succ_idx].phis[i];
                let var = self.phi_var[phi];
                let arg = self.current_def(var);
                self.phi_args
                    .get_mut(phi)
                    .expect("phi argument slot exists")
                    .push((block, arg));
            }
        }
        // Recurse into dominated blocks.
        for i in 0..self.dom.children(block).len() {
            let child = self.dom.children(block)[i];
            self.rename(child);
        }
        // Pop this block's definitions.
        for var in pushed.into_iter().rev() {
            self.stacks
                .get_mut(var)
                .expect("stack exists for pushed var")
                .pop();
        }
    }

    fn define(&mut self, block: Block, var: Var, def: ValueDef, pushed: &mut Vec<Var>) {
        let version = self.next_version(var);
        let value = self.values.push(ValueData {
            def,
            block,
            var: Some(var),
            version,
        });
        self.blocks[biv_ir::EntityId::index(block)]
            .body
            .push(SsaInst::Def(value));
        self.stacks.get_or_insert_with(var, Vec::new).push(value);
        pushed.push(var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::parser::parse_program;

    fn build(src: &str) -> SsaFunction {
        let program = parse_program(src).unwrap();
        SsaFunction::build(&program.functions[0])
    }

    #[test]
    fn figure1_has_loop_header_phis() {
        // Paper Figure 1: j gets a header φ; i is defined fresh each
        // iteration so needs none.
        let ssa = build(
            r#"
            func fig1(n, c, k) {
                j = n
                L7: loop {
                    i = j + c
                    j = i + k
                    if j > 1000 { break }
                }
            }
            "#,
        );
        let header = ssa.func().block_by_label("L7").unwrap();
        let phis = &ssa.block(header).phis;
        assert_eq!(phis.len(), 1, "only j needs a header phi");
        let phi = phis[0];
        let var = ssa.values[phi].var.unwrap();
        assert_eq!(ssa.func().var_name(var), "j");
        // The φ has two arguments: entry value and loop-carried value.
        match ssa.def(phi) {
            ValueDef::Phi { args } => assert_eq!(args.len(), 2),
            other => panic!("expected phi, got {other:?}"),
        }
    }

    #[test]
    fn value_names_match_paper_style() {
        let ssa = build(
            r#"
            func fig1(n, c, k) {
                j = n
                L7: loop {
                    i = j + c
                    j = i + k
                    if j > 1000 { break }
                }
            }
            "#,
        );
        // j1 = copy of n, j2 = phi, j3 = i + k.
        assert!(ssa.value_by_name("j1").is_some());
        assert!(ssa.value_by_name("j2").is_some());
        assert!(ssa.value_by_name("j3").is_some());
        let j2 = ssa.value_by_name("j2").unwrap();
        assert!(ssa.def(j2).is_phi());
    }

    #[test]
    fn diamond_join_phi() {
        let ssa = build(
            r#"
            func f(a) {
                if a > 0 { x = 1 } else { x = 2 }
                y = x
            }
            "#,
        );
        // Exactly one φ in the whole function (x at the join).
        let phi_count: usize = ssa.block_ids().map(|b| ssa.block(b).phis.len()).sum();
        assert_eq!(phi_count, 1);
    }

    #[test]
    fn pruned_skips_dead_phi() {
        // x merges at the join but is never used afterwards: pruned SSA
        // places no φ, minimal SSA places one.
        let src = r#"
            func f(a) {
                if a > 0 { x = 1 } else { x = 2 }
                y = a
            }
        "#;
        let program = parse_program(src).unwrap();
        let pruned = SsaFunction::build(&program.functions[0]);
        let pruned_phis: usize = pruned.block_ids().map(|b| pruned.block(b).phis.len()).sum();
        assert_eq!(pruned_phis, 0);
        let minimal = SsaFunction::build_with(
            &program.functions[0],
            BuildConfig {
                pruned: false,
                simplify_loops: true,
            },
        );
        let minimal_phis: usize = minimal
            .block_ids()
            .map(|b| minimal.block(b).phis.len())
            .sum();
        assert!(minimal_phis >= 1);
    }

    #[test]
    fn params_become_live_ins() {
        let ssa = build("func f(n) { x = n + 1 }");
        let n = ssa.func().var_by_name("n").unwrap();
        let live_in = ssa.live_in(n).expect("n read before write");
        assert!(matches!(ssa.def(live_in), ValueDef::LiveIn { .. }));
    }

    #[test]
    fn figure3_same_offset_paths() {
        // Paper Figure 3: i incremented by 2 on both branch arms; φ at the
        // endif and φ at the header.
        let ssa = build(
            r#"
            func fig3(n, exp) {
                i = 1
                L8: loop {
                    if exp > 0 { i = i + 2 } else { i = i + 2 }
                    if i > n { break }
                }
            }
            "#,
        );
        let header = ssa.func().block_by_label("L8").unwrap();
        assert_eq!(ssa.block(header).phis.len(), 1, "header phi for i");
        // There is also a join φ somewhere else.
        let total: usize = ssa.block_ids().map(|b| ssa.block(b).phis.len()).sum();
        assert_eq!(total, 2, "header phi + endif phi");
    }

    #[test]
    fn phi_args_reference_dominating_defs() {
        let ssa = build("func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } }");
        let header = ssa.func().block_by_label("L1").unwrap();
        let phi = ssa.block(header).phis[0];
        let ValueDef::Phi { args } = ssa.def(phi) else {
            panic!("not a phi")
        };
        // One arg is the init (copy of 0), the other the increment.
        let mut kinds: Vec<&'static str> = args
            .iter()
            .map(|(_, op)| match op {
                Operand::Value(v) => match ssa.def(*v) {
                    ValueDef::Copy { .. } => "copy",
                    ValueDef::Binary { .. } => "binary",
                    other => panic!("unexpected def {other:?}"),
                },
                Operand::Const(_) => "const",
            })
            .collect();
        kinds.sort();
        assert_eq!(kinds, vec!["binary", "copy"]);
    }
}
