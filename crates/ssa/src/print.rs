//! Textual rendering of SSA functions in the paper's subscripted style.

use std::fmt::Write as _;

use crate::ssa::{Operand, SsaFunction, SsaInst, SsaTerminator, ValueDef};

/// Renders an SSA function as text; φs print as `i2 = phi(i1, i3)` like
/// the paper's figures.
pub fn ssa_to_string(ssa: &SsaFunction) -> String {
    let mut out = String::new();
    let func = ssa.func();
    let _ = writeln!(
        out,
        "func {}({}) {{",
        func.name(),
        func.params()
            .iter()
            .map(|&p| func.var_name(p).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for block in ssa.block_ids() {
        let data = ssa.block(block);
        if data.term.is_none() {
            continue;
        }
        match &func.blocks[block].label {
            Some(l) => {
                let _ = writeln!(out, "{block} ({l}):");
            }
            None => {
                let _ = writeln!(out, "{block}:");
            }
        }
        for &phi in &data.phis {
            let ValueDef::Phi { args } = ssa.def(phi) else {
                continue;
            };
            let rendered: Vec<String> = args
                .iter()
                .map(|(b, op)| format!("{}: {}", b, operand_to_string(ssa, op)))
                .collect();
            let _ = writeln!(
                out,
                "    {} = phi({})",
                ssa.value_name(phi),
                rendered.join(", ")
            );
        }
        for inst in &data.body {
            match inst {
                SsaInst::Def(v) => {
                    let _ = writeln!(out, "    {}", def_to_string(ssa, *v));
                }
                SsaInst::Store {
                    array,
                    index,
                    value,
                } => {
                    let idx: Vec<String> =
                        index.iter().map(|o| operand_to_string(ssa, o)).collect();
                    let _ = writeln!(
                        out,
                        "    {}[{}] = {}",
                        func.array_name(*array),
                        idx.join(", "),
                        operand_to_string(ssa, value)
                    );
                }
            }
        }
        match data.term.as_ref().expect("checked above") {
            SsaTerminator::Jump(b) => {
                let _ = writeln!(out, "    jump {b}");
            }
            SsaTerminator::Branch {
                op,
                lhs,
                rhs,
                then_bb,
                else_bb,
            } => {
                let _ = writeln!(
                    out,
                    "    if {} {} {} then {then_bb} else {else_bb}",
                    operand_to_string(ssa, lhs),
                    op.symbol(),
                    operand_to_string(ssa, rhs)
                );
            }
            SsaTerminator::Return => {
                let _ = writeln!(out, "    return");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders one operand with paper-style value names.
pub fn operand_to_string(ssa: &SsaFunction, op: &Operand) -> String {
    match op {
        Operand::Value(v) => ssa.value_name(*v),
        Operand::Const(c) => c.to_string(),
    }
}

fn def_to_string(ssa: &SsaFunction, value: crate::ssa::Value) -> String {
    let name = ssa.value_name(value);
    match ssa.def(value) {
        ValueDef::Phi { args } => {
            let rendered: Vec<String> = args
                .iter()
                .map(|(b, op)| format!("{}: {}", b, operand_to_string(ssa, op)))
                .collect();
            format!("{name} = phi({})", rendered.join(", "))
        }
        ValueDef::Copy { src } => format!("{name} = {}", operand_to_string(ssa, src)),
        ValueDef::Neg { src } => format!("{name} = -{}", operand_to_string(ssa, src)),
        ValueDef::Binary { op, lhs, rhs } => format!(
            "{name} = {} {} {}",
            operand_to_string(ssa, lhs),
            op.symbol(),
            operand_to_string(ssa, rhs)
        ),
        ValueDef::Load { array, index } => {
            let idx: Vec<String> = index.iter().map(|o| operand_to_string(ssa, o)).collect();
            format!(
                "{name} = {}[{}]",
                ssa.func().array_name(*array),
                idx.join(", ")
            )
        }
        ValueDef::LiveIn { var } => {
            format!("{name} = live-in {}", ssa.func().var_name(*var))
        }
        ValueDef::ExitValue { inner } => {
            format!("{name} = exit-value {}", ssa.value_name(*inner))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::SsaFunction;
    use biv_ir::parser::parse_program;

    #[test]
    fn renders_phis() {
        let program =
            parse_program("func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } }").unwrap();
        let ssa = SsaFunction::build(&program.functions[0]);
        let text = ssa_to_string(&ssa);
        assert!(text.contains("= phi("), "{text}");
        assert!(text.contains("i2"), "{text}");
        assert!(text.contains("(L1):"), "{text}");
    }
}
