//! Sparse conditional constant propagation (Wegman–Zadeck), the paper's
//! [WZ91] citation: constants are propagated *through* conditional
//! structure, so a φ whose other arm is unreachable under constant
//! branches still folds — strictly stronger than local folding
//! ([`crate::fold_constants`]).

use std::collections::{HashSet, VecDeque};

use biv_ir::{BinOp, Block, CmpOp, EntityMap, EntitySet, SecondaryMap};

use crate::ssa::{Operand, SsaFunction, SsaInst, SsaTerminator, Value, ValueDef};

/// The constant lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lattice {
    /// Not yet shown to take any value (⊤).
    Top,
    /// Proven to always hold this constant.
    Const(i64),
    /// Varying (⊥).
    Bottom,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Top, x) | (x, Lattice::Top) => x,
            (Lattice::Const(a), Lattice::Const(b)) if a == b => Lattice::Const(a),
            _ => Lattice::Bottom,
        }
    }
}

/// SCCP analysis results.
#[derive(Debug)]
pub struct Sccp {
    /// Dense per-value lattice; unvisited values sit at the ⊤ default.
    values: SecondaryMap<Value, Lattice>,
    reachable: EntitySet<Block>,
}

impl Sccp {
    /// Runs the analysis.
    pub fn run(ssa: &SsaFunction) -> Sccp {
        Solver::new(ssa).solve()
    }

    /// The lattice value of `v`.
    pub fn lattice(&self, v: Value) -> Lattice {
        *self.values.get(v)
    }

    /// The proven constant of `v`, if any.
    pub fn constant(&self, v: Value) -> Option<i64> {
        match self.lattice(v) {
            Lattice::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Whether `block` can execute.
    pub fn is_reachable(&self, block: Block) -> bool {
        self.reachable.contains(block)
    }

    /// Rewrites every proven-constant definition into a constant copy.
    /// Returns the number of definitions rewritten.
    pub fn apply(&self, ssa: &mut SsaFunction) -> usize {
        let mut rewritten = 0;
        let values: Vec<Value> = ssa.values.ids().collect();
        for v in values {
            if let Some(c) = self.constant(v) {
                let def = &mut ssa.values[v].def;
                let already = matches!(
                    def,
                    ValueDef::Copy {
                        src: Operand::Const(_)
                    } | ValueDef::LiveIn { .. }
                );
                if !already {
                    *def = ValueDef::Copy {
                        src: Operand::Const(c),
                    };
                    rewritten += 1;
                }
            }
        }
        rewritten
    }
}

struct Solver<'a> {
    ssa: &'a SsaFunction,
    values: SecondaryMap<Value, Lattice>,
    reachable: EntitySet<Block>,
    exec_edges: HashSet<(Block, Block)>,
    /// Values read by each value's definition (reverse of operand edges).
    users: EntityMap<Value, Vec<Value>>,
    /// Blocks whose terminator reads a value.
    branch_users: EntityMap<Value, Vec<Block>>,
    value_work: VecDeque<Value>,
    block_work: VecDeque<(Block, Block)>,
}

impl<'a> Solver<'a> {
    fn new(ssa: &'a SsaFunction) -> Solver<'a> {
        let users = ssa.users();
        let mut branch_users: EntityMap<Value, Vec<Block>> = EntityMap::new();
        for b in ssa.block_ids() {
            if let Some(SsaTerminator::Branch { lhs, rhs, .. }) = &ssa.block(b).term {
                for op in [lhs, rhs] {
                    if let Operand::Value(v) = op {
                        branch_users.get_or_insert_with(*v, Vec::new).push(b);
                    }
                }
            }
        }
        Solver {
            ssa,
            values: SecondaryMap::with_default(Lattice::Top),
            reachable: EntitySet::new(),
            exec_edges: HashSet::new(),
            users,
            branch_users,
            value_work: VecDeque::new(),
            block_work: VecDeque::new(),
        }
    }

    fn solve(mut self) -> Sccp {
        // Live-ins of parameters are unknown inputs: Bottom. Other
        // live-ins default to 0 in this language, so they are constants.
        let params: EntitySet<_> = self.ssa.func().params().iter().copied().collect();
        for (v, data) in self.ssa.values.iter() {
            if let ValueDef::LiveIn { var } = data.def {
                let l = if params.contains(var) {
                    Lattice::Bottom
                } else {
                    Lattice::Const(0)
                };
                self.values.insert(v, l);
            }
        }
        let entry = self.ssa.func().entry();
        self.block_work.push_back((entry, entry)); // virtual entry edge
        while !self.block_work.is_empty() || !self.value_work.is_empty() {
            while let Some((pred, block)) = self.block_work.pop_front() {
                self.flow_edge(pred, block);
            }
            while let Some(v) = self.value_work.pop_front() {
                self.revisit_users(v);
            }
        }
        Sccp {
            values: self.values,
            reachable: self.reachable,
        }
    }

    fn flow_edge(&mut self, pred: Block, block: Block) {
        let first_visit = self.reachable.insert(block);
        let edge_new = self.exec_edges.insert((pred, block));
        if !edge_new && !first_visit {
            return;
        }
        // (Re)evaluate φs — a new incoming edge can lower them.
        for &phi in &self.ssa.block(block).phis {
            self.evaluate(phi);
        }
        if first_visit {
            for inst in &self.ssa.block(block).body {
                if let SsaInst::Def(v) = inst {
                    self.evaluate(*v);
                }
            }
            self.evaluate_terminator(block);
        }
    }

    fn revisit_users(&mut self, v: Value) {
        if let Some(users) = self.users.get(v).cloned() {
            for u in users {
                if self.reachable.contains(self.ssa.def_block(u)) {
                    self.evaluate(u);
                }
            }
        }
        if let Some(blocks) = self.branch_users.get(v).cloned() {
            for b in blocks {
                if self.reachable.contains(b) {
                    self.evaluate_terminator(b);
                }
            }
        }
    }

    fn set(&mut self, v: Value, l: Lattice) {
        let old = *self.values.get(v);
        let new = old.meet(l);
        if new != old {
            self.values.insert(v, new);
            self.value_work.push_back(v);
        }
    }

    fn operand(&self, op: &Operand) -> Lattice {
        match op {
            Operand::Const(c) => Lattice::Const(*c),
            Operand::Value(v) => *self.values.get(*v),
        }
    }

    fn evaluate(&mut self, v: Value) {
        let result = match self.ssa.def(v) {
            ValueDef::Phi { args } => {
                let block = self.ssa.def_block(v);
                let mut acc = Lattice::Top;
                for (pred, op) in args {
                    if self.exec_edges.contains(&(*pred, block)) {
                        acc = acc.meet(self.operand(op));
                    }
                }
                acc
            }
            ValueDef::Copy { src } => self.operand(src),
            ValueDef::Neg { src } => match self.operand(src) {
                Lattice::Const(c) => c
                    .checked_neg()
                    .map(Lattice::Const)
                    .unwrap_or(Lattice::Bottom),
                other => other,
            },
            ValueDef::Binary { op, lhs, rhs } => match (self.operand(lhs), self.operand(rhs)) {
                (Lattice::Const(a), Lattice::Const(b)) => eval_binop(*op, a, b),
                (Lattice::Top, _) | (_, Lattice::Top) => Lattice::Top,
                _ => Lattice::Bottom,
            },
            ValueDef::Load { .. } => Lattice::Bottom,
            ValueDef::LiveIn { .. } => return, // seeded
            ValueDef::ExitValue { .. } => Lattice::Bottom,
        };
        self.set(v, result);
    }

    fn evaluate_terminator(&mut self, block: Block) {
        match self.ssa.block(block).term.as_ref() {
            Some(SsaTerminator::Jump(t)) => {
                self.block_work.push_back((block, *t));
            }
            Some(SsaTerminator::Branch {
                op,
                lhs,
                rhs,
                then_bb,
                else_bb,
            }) => match (self.operand(lhs), self.operand(rhs)) {
                (Lattice::Const(a), Lattice::Const(b)) => {
                    let target = if eval_cmp(*op, a, b) {
                        *then_bb
                    } else {
                        *else_bb
                    };
                    self.block_work.push_back((block, target));
                }
                (Lattice::Top, _) | (_, Lattice::Top) => {}
                _ => {
                    self.block_work.push_back((block, *then_bb));
                    self.block_work.push_back((block, *else_bb));
                }
            },
            Some(SsaTerminator::Return) | None => {}
        }
    }
}

fn eval_binop(op: BinOp, a: i64, b: i64) -> Lattice {
    let r = match op {
        BinOp::Add => a.checked_add(b),
        BinOp::Sub => a.checked_sub(b),
        BinOp::Mul => a.checked_mul(b),
        BinOp::Div => {
            if b == 0 {
                None
            } else {
                a.checked_div(b)
            }
        }
        BinOp::Exp => u32::try_from(b).ok().and_then(|e| a.checked_pow(e)),
    };
    r.map(Lattice::Const).unwrap_or(Lattice::Bottom)
}

fn eval_cmp(op: CmpOp, a: i64, b: i64) -> bool {
    op.eval(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::SsaFunction;
    use biv_ir::parser::parse_program;

    fn run(src: &str) -> (SsaFunction, Sccp) {
        let program = parse_program(src).unwrap();
        let ssa = SsaFunction::build(&program.functions[0]);
        let sccp = Sccp::run(&ssa);
        (ssa, sccp)
    }

    #[test]
    fn straight_line_constants() {
        let (ssa, sccp) = run("func f() { a = 2 + 3 b = a * 4 }");
        let b1 = ssa.value_by_name("b1").unwrap();
        assert_eq!(sccp.constant(b1), Some(20));
    }

    #[test]
    fn conditional_constant_beats_local_folding() {
        // The branch is decidable: 1 < 2 always takes the then arm, so x
        // is 10 — a φ that local folding cannot touch.
        let (ssa, sccp) = run("func f() { if 1 < 2 { x = 10 } else { x = 20 } y = x + 1 }");
        let y1 = ssa.value_by_name("y1").unwrap();
        assert_eq!(sccp.constant(y1), Some(11));
    }

    #[test]
    fn unreachable_block_detected() {
        let (ssa, sccp) = run("func f() { if 1 > 2 { x = 10 } else { x = 20 } y = x }");
        // The then-block is unreachable.
        let unreachable: Vec<Block> = ssa
            .block_ids()
            .filter(|&b| ssa.block(b).term.is_some() && !sccp.is_reachable(b))
            .collect();
        assert!(!unreachable.is_empty());
        let y1 = ssa.value_by_name("y1").unwrap();
        assert_eq!(sccp.constant(y1), Some(20));
    }

    #[test]
    fn parameters_are_bottom() {
        let (ssa, sccp) = run("func f(n) { x = n + 1 }");
        let x1 = ssa.value_by_name("x1").unwrap();
        assert_eq!(sccp.lattice(x1), Lattice::Bottom);
    }

    #[test]
    fn loop_carried_values_are_bottom() {
        let (ssa, sccp) = run("func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } }");
        let i2 = ssa.value_by_name("i2").unwrap();
        assert_eq!(sccp.lattice(i2), Lattice::Bottom);
    }

    #[test]
    fn constant_loop_invariant_inside_loop() {
        let (ssa, sccp) = run("func f(n) { c = 3 * 7 L1: loop { x = c + 1 if x > n { break } } }");
        let x1 = ssa.value_by_name("x1").unwrap();
        assert_eq!(sccp.constant(x1), Some(22));
    }

    #[test]
    fn apply_rewrites_constants() {
        let src = "func f() { if 1 < 2 { x = 10 } else { x = 20 } y = x + 1 }";
        let program = parse_program(src).unwrap();
        let mut ssa = SsaFunction::build(&program.functions[0]);
        let sccp = Sccp::run(&ssa);
        let rewritten = sccp.apply(&mut ssa);
        assert!(rewritten >= 2, "x phi and y fold: {rewritten}");
        let y1 = ssa.value_by_name("y1").unwrap();
        assert_eq!(
            crate::fold::constant_operand(&ssa, &Operand::Value(y1)),
            Some(11)
        );
    }

    #[test]
    fn constant_trip_loop_stays_bottom_but_reachable() {
        // SCCP does not unroll loops; the φ meets both edges.
        let (ssa, sccp) = run("func f() { s = 0 L1: for i = 1 to 3 { s = s + 2 } t = s }");
        let t1 = ssa.value_by_name("t1").unwrap();
        assert_eq!(sccp.lattice(t1), Lattice::Bottom);
        for b in ssa.block_ids() {
            if ssa.block(b).term.is_some() {
                assert!(sccp.is_reachable(b), "{b} unreachable");
            }
        }
    }
}
