//! SSA well-formedness checking.

use std::fmt;

use biv_ir::cfg::Cfg;
use biv_ir::dom::DomTree;
use biv_ir::{Block, EntityMap};

use crate::ssa::{Operand, SsaFunction, SsaInst, SsaTerminator, Value, ValueDef};

/// A violation of SSA form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsaVerifyError {
    /// Explanation of the violation.
    pub message: String,
}

impl fmt::Display for SsaVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SsaVerifyError {}

/// Position of a definition for dominance checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DefPos {
    /// Live-ins dominate everything.
    Entry,
    /// φs define at the head of their block.
    PhiHead(Block),
    /// Body definitions at an index within their block.
    Body(Block, usize),
}

/// Checks the two SSA properties plus structural sanity:
///
/// - every value is defined exactly once (by arena construction) and every
///   use is dominated by its definition;
/// - every φ has exactly one argument per CFG predecessor of its block,
///   and each argument's definition dominates the incoming edge;
/// - φ lists only contain φ definitions and bodies contain none.
///
/// # Errors
///
/// Returns every violation found.
pub fn verify_ssa(ssa: &SsaFunction) -> Result<(), Vec<SsaVerifyError>> {
    let mut errors: Vec<SsaVerifyError> = Vec::new();
    fn err_into(errors: &mut Vec<SsaVerifyError>, message: String) {
        errors.push(SsaVerifyError { message });
    }
    let func = ssa.func();
    let dom = DomTree::compute(func);
    let cfg = Cfg::compute(func);

    // Index definition positions.
    let mut pos: EntityMap<Value, DefPos> = EntityMap::with_capacity(ssa.values.len());
    for (v, data) in ssa.values.iter() {
        match &data.def {
            ValueDef::LiveIn { .. } => {
                pos.insert(v, DefPos::Entry);
            }
            ValueDef::Phi { .. } => {
                pos.insert(v, DefPos::PhiHead(data.block));
            }
            _ => {} // filled below with body order
        }
    }
    for block in ssa.block_ids() {
        let data = ssa.block(block);
        for (i, inst) in data.body.iter().enumerate() {
            if let SsaInst::Def(v) = inst {
                if ssa.def(*v).is_phi() {
                    err_into(
                        &mut errors,
                        format!("{block}: phi {} appears in block body", ssa.value_name(*v)),
                    );
                }
                pos.insert(*v, DefPos::Body(block, i));
            }
        }
        for &phi in &data.phis {
            if !ssa.def(phi).is_phi() {
                err_into(
                    &mut errors,
                    format!("{block}: non-phi {} in phi list", ssa.value_name(phi)),
                );
            }
        }
    }

    let dominates_use = |def: DefPos, use_block: Block, use_index: Option<usize>| -> bool {
        match def {
            DefPos::Entry => true,
            DefPos::PhiHead(db) => {
                if db == use_block {
                    true // φ defines before the body
                } else {
                    dom.strictly_dominates(db, use_block) || dom.dominates(db, use_block)
                }
            }
            DefPos::Body(db, di) => {
                if db == use_block {
                    match use_index {
                        Some(ui) => di < ui,
                        None => true, // used by terminator
                    }
                } else {
                    dom.strictly_dominates(db, use_block)
                }
            }
        }
    };

    let check_operand = |op: &Operand,
                         use_block: Block,
                         use_index: Option<usize>,
                         what: &str,
                         errors: &mut Vec<SsaVerifyError>| {
        if let Operand::Value(v) = op {
            match pos.get(*v) {
                None => errors.push(SsaVerifyError {
                    message: format!("{use_block}: {what} uses undefined value {v}"),
                }),
                Some(&p) => {
                    if !dominates_use(p, use_block, use_index) {
                        errors.push(SsaVerifyError {
                            message: format!(
                                "{use_block}: use of {} in {what} not dominated by its definition",
                                ssa.value_name(*v)
                            ),
                        });
                    }
                }
            }
        }
    };

    for block in ssa.block_ids() {
        let data = ssa.block(block);
        let Some(term) = data.term.as_ref() else {
            continue;
        };
        // φ argument checks.
        let bpreds = cfg.preds(block);
        for &phi in &data.phis {
            let ValueDef::Phi { args } = ssa.def(phi) else {
                continue;
            };
            if args.len() != bpreds.len() {
                err_into(
                    &mut errors,
                    format!(
                        "{block}: phi {} has {} args but block has {} predecessors",
                        ssa.value_name(phi),
                        args.len(),
                        bpreds.len()
                    ),
                );
            }
            for (pred, op) in args {
                if !bpreds.contains(pred) {
                    err_into(
                        &mut errors,
                        format!(
                            "{block}: phi {} names non-predecessor {pred}",
                            ssa.value_name(phi)
                        ),
                    );
                }
                // The def must dominate the end of the incoming edge.
                if let Operand::Value(v) = op {
                    match pos.get(*v) {
                        None => err_into(
                            &mut errors,
                            format!(
                                "{block}: phi {} argument {v} undefined",
                                ssa.value_name(phi)
                            ),
                        ),
                        Some(&p) => {
                            let ok = match p {
                                DefPos::Entry => true,
                                DefPos::PhiHead(db) | DefPos::Body(db, _) => {
                                    dom.dominates(db, *pred)
                                }
                            };
                            if !ok {
                                err_into(&mut errors, format!(
                                    "{block}: phi {} argument {} does not dominate edge from {pred}",
                                    ssa.value_name(phi),
                                    ssa.value_name(*v)
                                ));
                            }
                        }
                    }
                }
            }
        }
        // Body operand checks.
        for (i, inst) in data.body.iter().enumerate() {
            match inst {
                SsaInst::Def(v) => {
                    let mut ops = Vec::new();
                    match ssa.def(*v) {
                        ValueDef::Phi { .. } => {} // handled above
                        other => other.operands(&mut ops),
                    }
                    for o in ops {
                        check_operand(
                            &Operand::Value(o),
                            block,
                            Some(i),
                            "instruction",
                            &mut errors,
                        );
                    }
                }
                SsaInst::Store {
                    index, value: val, ..
                } => {
                    for o in index {
                        check_operand(o, block, Some(i), "store index", &mut errors);
                    }
                    check_operand(val, block, Some(i), "store value", &mut errors);
                }
            }
        }
        if let SsaTerminator::Branch { lhs, rhs, .. } = term {
            check_operand(lhs, block, None, "branch", &mut errors);
            check_operand(rhs, block, None, "branch", &mut errors);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::SsaFunction;
    use biv_ir::parser::parse_program;

    fn check(src: &str) {
        let program = parse_program(src).unwrap();
        for f in &program.functions {
            let ssa = SsaFunction::build(f);
            if let Err(errs) = verify_ssa(&ssa) {
                let text = crate::print::ssa_to_string(&ssa);
                panic!("SSA verification failed: {errs:?}\n{text}");
            }
        }
    }

    #[test]
    fn simple_loop_verifies() {
        check("func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } }");
    }

    #[test]
    fn diamond_verifies() {
        check("func f(a) { if a > 0 { x = 1 } else { x = 2 } y = x }");
    }

    #[test]
    fn nested_loops_verify() {
        check(
            r#"
            func f(n) {
                k = 0
                L17: loop {
                    i = 1
                    L18: loop {
                        k = k + 2
                        if i > 100 { break }
                        i = i + 1
                    }
                    k = k + 2
                    if k > n { break }
                }
            }
            "#,
        );
    }

    #[test]
    fn triangular_loop_verifies() {
        check(
            r#"
            func f(n) {
                j = 0
                L19: for i = 1 to n {
                    j = j + i
                    L20: for k = 1 to i {
                        j = j + 1
                    }
                }
            }
            "#,
        );
    }

    #[test]
    fn while_and_breaks_verify() {
        check(
            r#"
            func f(n) {
                s = 0
                W: while n > 0 {
                    n = n - 1
                    if n == 3 { break }
                    s = s + n
                }
                t = s
            }
            "#,
        );
    }
}
