//! SSA data structures and the SSA graph.

use biv_ir::{entity_id, Arena, Array, BinOp, Block, CmpOp, EntityMap, Function, Var};

entity_id!(
    /// An SSA value.
    pub struct Value,
    "%"
);

/// An SSA operand: a value reference or an integer constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A reference to an SSA value.
    Value(Value),
    /// An integer literal.
    Const(i64),
}

impl Operand {
    /// The referenced value, if any.
    pub fn as_value(&self) -> Option<Value> {
        match self {
            Operand::Value(v) => Some(*v),
            Operand::Const(_) => None,
        }
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Operand {
        Operand::Value(v)
    }
}

/// How an SSA value is defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueDef {
    /// A φ-function. One argument per predecessor of the defining block.
    Phi {
        /// `(incoming edge source, operand)` pairs.
        args: Vec<(Block, Operand)>,
    },
    /// A copy `dst = src`.
    Copy {
        /// Source operand.
        src: Operand,
    },
    /// Unary negation.
    Neg {
        /// Source operand.
        src: Operand,
    },
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// An array element load.
    Load {
        /// Array read.
        array: Array,
        /// One operand per dimension.
        index: Vec<Operand>,
    },
    /// The value a variable holds at function entry (parameters and
    /// reads-before-writes). Symbolic to the analyses.
    LiveIn {
        /// The source variable.
        var: Var,
    },
    /// A synthetic definition materialized by the nested-loop driver for a
    /// loop's exit value (the paper's `k6 = k2 + 101*2` in Figure 8).
    /// Holds the inner-loop value it summarizes.
    ExitValue {
        /// The inner-loop SSA value whose exit value this represents.
        inner: Value,
    },
}

impl ValueDef {
    /// Collects the values this definition reads.
    pub fn operands(&self, out: &mut Vec<Value>) {
        let mut push = |op: &Operand| {
            if let Operand::Value(v) = op {
                out.push(*v);
            }
        };
        match self {
            ValueDef::Phi { args } => args.iter().for_each(|(_, op)| push(op)),
            ValueDef::Copy { src } | ValueDef::Neg { src } => push(src),
            ValueDef::Binary { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            ValueDef::Load { index, .. } => index.iter().for_each(&mut push),
            ValueDef::LiveIn { .. } => {}
            ValueDef::ExitValue { inner } => out.push(*inner),
        }
    }

    /// Whether this is a φ-function.
    pub fn is_phi(&self) -> bool {
        matches!(self, ValueDef::Phi { .. })
    }
}

/// Metadata for an SSA value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueData {
    /// The definition.
    pub def: ValueDef,
    /// The defining block.
    pub block: Block,
    /// The source variable this value versions, when known.
    pub var: Option<Var>,
    /// Version number within the source variable (1-based, paper style).
    pub version: u32,
}

/// One element of a block body after SSA conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsaInst {
    /// A value-producing instruction (in original program order).
    Def(Value),
    /// An array store.
    Store {
        /// Array written.
        array: Array,
        /// One operand per dimension.
        index: Vec<Operand>,
        /// Stored value.
        value: Operand,
    },
}

/// A block terminator in SSA form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsaTerminator {
    /// Unconditional jump.
    Jump(Block),
    /// Conditional branch on a comparison.
    Branch {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Successor when the comparison holds.
        then_bb: Block,
        /// Successor when it does not.
        else_bb: Block,
    },
    /// Function return.
    Return,
}

impl SsaTerminator {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<Block> {
        match self {
            SsaTerminator::Jump(b) => vec![*b],
            SsaTerminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            SsaTerminator::Return => vec![],
        }
    }
}

/// A basic block in SSA form. φs execute conceptually in parallel at block
/// entry, before the body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SsaBlock {
    /// φ values at the block head.
    pub phis: Vec<Value>,
    /// Body instructions in order.
    pub body: Vec<SsaInst>,
    /// The terminator. `None` only for blocks absent from the original
    /// function (never observed through the public API).
    pub term: Option<SsaTerminator>,
}

/// A function in SSA form.
///
/// Block IDs are shared with the original [`Function`], which is kept
/// alongside for names, labels, and CFG queries.
#[derive(Debug, Clone)]
pub struct SsaFunction {
    func: Function,
    /// All SSA values.
    pub values: Arena<Value, ValueData>,
    blocks: Vec<SsaBlock>,
    live_in_of_var: EntityMap<Var, Value>,
}

impl SsaFunction {
    pub(crate) fn from_parts(
        func: Function,
        values: Arena<Value, ValueData>,
        blocks: Vec<SsaBlock>,
        live_in_of_var: EntityMap<Var, Value>,
    ) -> SsaFunction {
        SsaFunction {
            func,
            values,
            blocks,
            live_in_of_var,
        }
    }

    /// The underlying (pre-SSA) function.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// The SSA block overlay for `block`.
    pub fn block(&self, block: Block) -> &SsaBlock {
        &self.blocks[biv_ir::EntityId::index(block)]
    }

    /// Mutable access to a block overlay. Used by analyses that rewrite
    /// SSA in place (e.g. exit-value materialization); callers are
    /// responsible for keeping SSA form valid.
    pub fn block_mut(&mut self, block: Block) -> &mut SsaBlock {
        &mut self.blocks[biv_ir::EntityId::index(block)]
    }

    /// All block IDs (shared with the source function).
    pub fn block_ids(&self) -> impl Iterator<Item = Block> + '_ {
        self.func.blocks.ids()
    }

    /// The definition of `value`.
    pub fn def(&self, value: Value) -> &ValueDef {
        &self.values[value].def
    }

    /// The block defining `value`.
    pub fn def_block(&self, value: Value) -> Block {
        self.values[value].block
    }

    /// The live-in value for `var`, when one was created.
    pub fn live_in(&self, var: Var) -> Option<Value> {
        self.live_in_of_var.get(var).copied()
    }

    /// The paper-style display name of a value, e.g. `i2` — source
    /// variable name plus version — or `%7` for unnamed temporaries.
    pub fn value_name(&self, value: Value) -> String {
        let data = &self.values[value];
        match data.var {
            Some(var) => format!("{}{}", self.func.var_name(var), data.version),
            None => format!("{value}"),
        }
    }

    /// Looks up a value by its paper-style display name (`"i2"`).
    pub fn value_by_name(&self, name: &str) -> Option<Value> {
        self.values.ids().find(|&v| self.value_name(v) == name)
    }

    /// The SSA-graph operands of a value (edges from the operation to its
    /// source operands, as in the paper's Figure 2).
    pub fn operands_of(&self, value: Value) -> Vec<Value> {
        let mut out = Vec::new();
        self.values[value].def.operands(&mut out);
        out
    }

    /// All uses: map from value to the values that read it, in def order.
    pub fn users(&self) -> EntityMap<Value, Vec<Value>> {
        let mut users: EntityMap<Value, Vec<Value>> = EntityMap::with_capacity(self.values.len());
        let mut ops = Vec::new();
        for (v, data) in self.values.iter() {
            ops.clear();
            data.def.operands(&mut ops);
            for &o in &ops {
                users.get_or_insert_with(o, Vec::new).push(v);
            }
        }
        users
    }

    /// Adds a synthetic value (used by the nested-loop exit-value driver).
    /// The value is appended to `block`'s body.
    pub fn add_synthetic_value(
        &mut self,
        block: Block,
        def: ValueDef,
        var: Option<Var>,
        version: u32,
    ) -> Value {
        let v = self.values.push(ValueData {
            def,
            block,
            var,
            version,
        });
        self.block_mut(block).body.push(SsaInst::Def(v));
        v
    }
}
