//! An interpreter for SSA form.
//!
//! Executing the SSA function directly gives per-iteration values for
//! every SSA value — the ground truth the classifier's closed forms are
//! differentially tested against. It is also an independent semantics:
//! agreement between the CFG interpreter and the SSA interpreter is itself
//! a strong test of SSA construction.

use std::collections::HashMap;
use std::fmt;

use biv_ir::{Array, BinOp, Block, EntityMap};

use crate::ssa::{Operand, SsaFunction, SsaInst, SsaTerminator, Value, ValueDef};

/// Errors the SSA interpreter can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsaInterpError {
    /// Executed more block transitions than the configured limit.
    StepLimitExceeded,
    /// Integer overflow.
    Overflow,
    /// Division by zero.
    DivisionByZero,
    /// Negative exponent.
    NegativeExponent,
    /// A φ had no argument for the incoming edge (malformed SSA).
    MissingPhiArg,
    /// An `ExitValue` definition was encountered (synthetic values are not
    /// executable).
    SyntheticValue,
}

impl fmt::Display for SsaInterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsaInterpError::StepLimitExceeded => write!(f, "step limit exceeded"),
            SsaInterpError::Overflow => write!(f, "integer overflow"),
            SsaInterpError::DivisionByZero => write!(f, "division by zero"),
            SsaInterpError::NegativeExponent => write!(f, "negative exponent"),
            SsaInterpError::MissingPhiArg => write!(f, "phi missing argument for edge"),
            SsaInterpError::SyntheticValue => write!(f, "synthetic value is not executable"),
        }
    }
}

impl std::error::Error for SsaInterpError {}

/// Execution trace of an SSA function.
#[derive(Debug, Clone)]
pub struct SsaTrace {
    /// Every (re)computation of every value, in execution order.
    pub assignments: Vec<(Value, i64)>,
    /// Final array contents.
    pub arrays: HashMap<(Array, Vec<i64>), i64>,
}

impl SsaTrace {
    /// The sequence of values `value` took on, in execution order. For a
    /// loop-header φ this is exactly the paper's per-iteration sequence.
    pub fn history(&self, value: Value) -> Vec<i64> {
        self.assignments
            .iter()
            .filter(|(v, _)| *v == value)
            .map(|&(_, x)| x)
            .collect()
    }

    /// The trace's *observable state*: final array contents keyed by
    /// array **name** and index vector, in deterministic order — the SSA
    /// twin of `biv_ir::interp::Trace::observable_arrays`, so the two
    /// interpreters' observable states compare directly.
    pub fn observable_arrays(
        &self,
        func: &biv_ir::Function,
    ) -> std::collections::BTreeMap<(String, Vec<i64>), i64> {
        self.arrays
            .iter()
            .map(|((a, idx), &v)| ((func.array_name(*a).to_string(), idx.clone()), v))
            .collect()
    }
}

/// SSA interpreter configuration and entry point.
#[derive(Debug, Clone)]
pub struct SsaInterpreter {
    /// Maximum number of block transitions.
    pub step_limit: usize,
}

impl Default for SsaInterpreter {
    fn default() -> Self {
        SsaInterpreter {
            step_limit: 100_000,
        }
    }
}

impl SsaInterpreter {
    /// Creates an interpreter with the default step limit.
    pub fn new() -> SsaInterpreter {
        SsaInterpreter::default()
    }

    /// Runs the SSA function. Parameters bind by position; live-ins of
    /// non-parameter variables evaluate to 0 (matching the CFG
    /// interpreter's defaults).
    ///
    /// # Errors
    ///
    /// Returns an [`SsaInterpError`] on arithmetic faults, malformed SSA,
    /// or step-limit exhaustion.
    pub fn run(&self, ssa: &SsaFunction, args: &[i64]) -> Result<SsaTrace, SsaInterpError> {
        let (trace, fault) = self.run_partial(ssa, args);
        match fault {
            None => Ok(trace),
            Some(err) => Err(err),
        }
    }

    /// Like [`SsaInterpreter::run`], but a fault keeps everything executed
    /// so far: the trace covers the prefix up to (excluding) the faulting
    /// step, with the error alongside. A `None` fault means the function
    /// ran to completion. Invariant checking uses this so a step-limited
    /// or overflowing run still contributes its observed iterations.
    pub fn run_partial(
        &self,
        ssa: &SsaFunction,
        args: &[i64],
    ) -> (SsaTrace, Option<SsaInterpError>) {
        let func = ssa.func();
        // Presence matters: an absent value means a φ argument was read
        // before its edge executed, which `eval` reports as MissingPhiArg.
        let mut env: EntityMap<Value, i64> = EntityMap::with_capacity(ssa.values.len());
        let mut arrays: HashMap<(Array, Vec<i64>), i64> = HashMap::new();
        let mut assignments: Vec<(Value, i64)> = Vec::new();
        // Bind live-ins.
        let param_values: EntityMap<_, _> = func
            .params()
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, args.get(i).copied().unwrap_or(0)))
            .collect();
        for (v, data) in ssa.values.iter() {
            if let ValueDef::LiveIn { var } = data.def {
                let val = param_values.get(var).copied().unwrap_or(0);
                env.insert(v, val);
                assignments.push((v, val));
            }
        }
        let fault = (|| -> Result<(), SsaInterpError> {
            let mut block = func.entry();
            let mut prev: Option<Block> = None;
            let mut steps = 0usize;
            loop {
                steps += 1;
                if steps > self.step_limit {
                    return Err(SsaInterpError::StepLimitExceeded);
                }
                let data = ssa.block(block);
                // φs evaluate in parallel from the incoming edge.
                let mut phi_updates: Vec<(Value, i64)> = Vec::new();
                for &phi in &data.phis {
                    let ValueDef::Phi { args } = ssa.def(phi) else {
                        continue;
                    };
                    let Some(from) = prev else {
                        return Err(SsaInterpError::MissingPhiArg);
                    };
                    let arg = args
                        .iter()
                        .find(|(b, _)| *b == from)
                        .ok_or(SsaInterpError::MissingPhiArg)?;
                    let val = self.eval(&arg.1, &env)?;
                    phi_updates.push((phi, val));
                }
                for (phi, val) in phi_updates {
                    env.insert(phi, val);
                    assignments.push((phi, val));
                }
                // Body.
                for inst in &data.body {
                    match inst {
                        SsaInst::Def(v) => {
                            let val = match ssa.def(*v) {
                                ValueDef::Phi { .. } => continue, // not in bodies
                                ValueDef::Copy { src } => self.eval(src, &env)?,
                                ValueDef::Neg { src } => self
                                    .eval(src, &env)?
                                    .checked_neg()
                                    .ok_or(SsaInterpError::Overflow)?,
                                ValueDef::Binary { op, lhs, rhs } => {
                                    let l = self.eval(lhs, &env)?;
                                    let r = self.eval(rhs, &env)?;
                                    eval_binop(*op, l, r)?
                                }
                                ValueDef::Load { array, index } => {
                                    let idx: Result<Vec<i64>, _> =
                                        index.iter().map(|o| self.eval(o, &env)).collect();
                                    arrays.get(&(*array, idx?)).copied().unwrap_or(0)
                                }
                                ValueDef::LiveIn { .. } => continue, // pre-bound
                                ValueDef::ExitValue { .. } => {
                                    return Err(SsaInterpError::SyntheticValue)
                                }
                            };
                            env.insert(*v, val);
                            assignments.push((*v, val));
                        }
                        SsaInst::Store {
                            array,
                            index,
                            value,
                        } => {
                            let idx: Result<Vec<i64>, _> =
                                index.iter().map(|o| self.eval(o, &env)).collect();
                            let val = self.eval(value, &env)?;
                            arrays.insert((*array, idx?), val);
                        }
                    }
                }
                match data.term.as_ref().expect("reachable block has terminator") {
                    SsaTerminator::Jump(b) => {
                        prev = Some(block);
                        block = *b;
                    }
                    SsaTerminator::Branch {
                        op,
                        lhs,
                        rhs,
                        then_bb,
                        else_bb,
                    } => {
                        let l = self.eval(lhs, &env)?;
                        let r = self.eval(rhs, &env)?;
                        prev = Some(block);
                        block = if op.eval(l, r) { *then_bb } else { *else_bb };
                    }
                    SsaTerminator::Return => return Ok(()),
                }
            }
        })()
        .err();
        (
            SsaTrace {
                assignments,
                arrays,
            },
            fault,
        )
    }

    fn eval(&self, op: &Operand, env: &EntityMap<Value, i64>) -> Result<i64, SsaInterpError> {
        match op {
            Operand::Const(c) => Ok(*c),
            Operand::Value(v) => env.get(*v).copied().ok_or(SsaInterpError::MissingPhiArg),
        }
    }
}

fn eval_binop(op: BinOp, l: i64, r: i64) -> Result<i64, SsaInterpError> {
    match op {
        BinOp::Add => l.checked_add(r).ok_or(SsaInterpError::Overflow),
        BinOp::Sub => l.checked_sub(r).ok_or(SsaInterpError::Overflow),
        BinOp::Mul => l.checked_mul(r).ok_or(SsaInterpError::Overflow),
        BinOp::Div => {
            if r == 0 {
                Err(SsaInterpError::DivisionByZero)
            } else {
                l.checked_div(r).ok_or(SsaInterpError::Overflow)
            }
        }
        BinOp::Exp => {
            if r < 0 {
                return Err(SsaInterpError::NegativeExponent);
            }
            let exp = u32::try_from(r).map_err(|_| SsaInterpError::Overflow)?;
            l.checked_pow(exp).ok_or(SsaInterpError::Overflow)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::SsaFunction;
    use biv_ir::interp::Interpreter;
    use biv_ir::parser::parse_program;

    #[test]
    fn phi_history_matches_iterations() {
        let program =
            parse_program("func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } }").unwrap();
        let ssa = SsaFunction::build(&program.functions[0]);
        let trace = SsaInterpreter::new().run(&ssa, &[4]).unwrap();
        let header = ssa.func().block_by_label("L1").unwrap();
        let phi = ssa.block(header).phis[0];
        // φ sees 0,1,2,3,4 (the value entering each iteration).
        assert_eq!(trace.history(phi), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn agrees_with_cfg_interpreter_on_arrays() {
        let src = r#"
            func pack(n) {
                k = 0
                L15: for i = 1 to n {
                    t = A[i]
                    if t > 0 {
                        k = k + 1
                        B[k] = t
                    }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        // Pre-populate A via a generator prefix is not possible here, so
        // just compare empty-array behavior between both interpreters.
        let cfg_trace = Interpreter::new().run(f, &[6]).unwrap();
        let ssa = SsaFunction::build(f);
        let ssa_trace = SsaInterpreter::new().run(&ssa, &[6]).unwrap();
        assert_eq!(cfg_trace.arrays, ssa_trace.arrays);
    }

    #[test]
    fn differential_scalar_check() {
        // Values of j at the loop header must agree between CFG trace and
        // SSA φ history.
        let src = r#"
            func fig1(n) {
                j = n
                L7: loop {
                    i = j + 1
                    j = i + 2
                    if j > 40 { break }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        let cfg_trace = Interpreter::new().run(f, &[5]).unwrap();
        let ssa = SsaFunction::build(f);
        let ssa_trace = SsaInterpreter::new().run(&ssa, &[5]).unwrap();
        let header = f.block_by_label("L7").unwrap();
        // The loop-simplified SSA function may have renumbered blocks, so
        // look the header up again in the SSA function.
        let ssa_header = ssa.func().block_by_label("L7").unwrap();
        let j = f.var_by_name("j").unwrap();
        let phi = ssa.block(ssa_header).phis[0];
        assert_eq!(cfg_trace.values_at(header, j), ssa_trace.history(phi),);
    }

    #[test]
    fn run_partial_keeps_prefix_on_fault() {
        // The loop never exits, so run() errors; run_partial keeps the φ
        // history observed before the step limit hit.
        let program = parse_program("func f() { i = 0 loop { i = i + 1 } }").unwrap();
        let ssa = SsaFunction::build(&program.functions[0]);
        let interp = SsaInterpreter { step_limit: 10 };
        let (trace, fault) = interp.run_partial(&ssa, &[]);
        assert_eq!(fault, Some(SsaInterpError::StepLimitExceeded));
        let phi = ssa
            .values
            .iter()
            .find(|(_, d)| matches!(d.def, ValueDef::Phi { .. }))
            .map(|(v, _)| v)
            .expect("loop has a phi");
        let hist = trace.history(phi);
        assert!(!hist.is_empty(), "partial trace keeps observed iterations");
        assert_eq!(hist[0], 0);
    }

    #[test]
    fn step_limit_enforced() {
        let program = parse_program("func f() { loop { x = 1 } }").unwrap();
        let ssa = SsaFunction::build(&program.functions[0]);
        let interp = SsaInterpreter { step_limit: 50 };
        assert_eq!(
            interp.run(&ssa, &[]).unwrap_err(),
            SsaInterpError::StepLimitExceeded
        );
    }
}
