//! Constant folding over SSA form.
//!
//! The paper notes that "often the initial value coming in from outside
//! the loop can be evaluated and substituted, using an algorithm such as
//! constant propagation [WZ91]". This pass is the workhorse version:
//! definitions whose operands are all constants become constant copies,
//! iterated to a fixpoint, so copy-chasing consumers (the classifier's
//! `resolve_copies`) see literal initial values.

use biv_ir::BinOp;

use crate::ssa::{Operand, SsaFunction, Value, ValueDef};

/// Folds constant expressions to `Copy` of a literal, to a fixpoint.
/// φ-functions whose arguments all resolve to the *same* constant fold
/// too. Returns the number of definitions rewritten.
pub fn fold_constants(ssa: &mut SsaFunction) -> usize {
    let mut folded = 0usize;
    loop {
        let mut changed = false;
        let values: Vec<Value> = ssa.values.ids().collect();
        for v in values {
            if matches!(
                ssa.def(v),
                ValueDef::Copy {
                    src: Operand::Const(_)
                }
            ) {
                continue;
            }
            if let Some(c) = fold_value(ssa, v) {
                ssa.values[v].def = ValueDef::Copy {
                    src: Operand::Const(c),
                };
                folded += 1;
                changed = true;
            }
        }
        if !changed {
            return folded;
        }
    }
}

/// The constant an operand resolves to through copies, if any.
pub fn constant_operand(ssa: &SsaFunction, op: &Operand) -> Option<i64> {
    match op {
        Operand::Const(c) => Some(*c),
        Operand::Value(v) => {
            let mut cur = *v;
            for _ in 0..64 {
                match ssa.def(cur) {
                    ValueDef::Copy {
                        src: Operand::Const(c),
                    } => return Some(*c),
                    ValueDef::Copy {
                        src: Operand::Value(next),
                    } => cur = *next,
                    _ => return None,
                }
            }
            None
        }
    }
}

fn fold_value(ssa: &SsaFunction, v: Value) -> Option<i64> {
    match ssa.def(v) {
        ValueDef::Neg { src } => constant_operand(ssa, src)?.checked_neg(),
        ValueDef::Binary { op, lhs, rhs } => {
            let l = constant_operand(ssa, lhs)?;
            let r = constant_operand(ssa, rhs)?;
            match op {
                BinOp::Add => l.checked_add(r),
                BinOp::Sub => l.checked_sub(r),
                BinOp::Mul => l.checked_mul(r),
                BinOp::Div => {
                    if r == 0 {
                        None
                    } else {
                        l.checked_div(r)
                    }
                }
                BinOp::Exp => {
                    let e = u32::try_from(r).ok()?;
                    l.checked_pow(e)
                }
            }
        }
        ValueDef::Phi { args } => {
            // All incoming values the same constant: fold (safe without
            // reachability analysis, merely less precise than SCCP).
            let mut result: Option<i64> = None;
            for (_, op) in args {
                let c = constant_operand(ssa, op)?;
                match result {
                    None => result = Some(c),
                    Some(prev) if prev == c => {}
                    Some(_) => return None,
                }
            }
            result
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::SsaFunction;
    use biv_ir::parser::parse_program;

    fn build(src: &str) -> SsaFunction {
        let program = parse_program(src).unwrap();
        SsaFunction::build(&program.functions[0])
    }

    #[test]
    fn folds_arithmetic_chains() {
        let mut ssa = build("func f() { a = 2 + 3 b = a * 4 c = b - 1 }");
        let folded = fold_constants(&mut ssa);
        assert_eq!(folded, 3);
        let c1 = ssa.value_by_name("c1").unwrap();
        assert_eq!(constant_operand(&ssa, &Operand::Value(c1)), Some(19));
    }

    #[test]
    fn folds_same_constant_phi() {
        let mut ssa = build("func f(e) { if e > 0 { x = 2 + 3 } else { x = 5 } y = x + 1 }");
        fold_constants(&mut ssa);
        let y1 = ssa.value_by_name("y1").unwrap();
        assert_eq!(constant_operand(&ssa, &Operand::Value(y1)), Some(6));
    }

    #[test]
    fn leaves_symbolic_values_alone() {
        let mut ssa = build("func f(n) { a = n + 1 b = 2 * 3 }");
        let folded = fold_constants(&mut ssa);
        assert_eq!(folded, 1);
        let a1 = ssa.value_by_name("a1").unwrap();
        assert_eq!(constant_operand(&ssa, &Operand::Value(a1)), None);
    }

    #[test]
    fn loop_phis_do_not_fold() {
        let mut ssa = build("func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } }");
        let folded = fold_constants(&mut ssa);
        assert_eq!(folded, 0, "loop-carried phi is not constant");
    }

    #[test]
    fn division_and_pow_fold_safely() {
        let mut ssa = build("func f() { a = 7 / 2 b = 2 ^ 5 }");
        fold_constants(&mut ssa);
        let a1 = ssa.value_by_name("a1").unwrap();
        let b1 = ssa.value_by_name("b1").unwrap();
        assert_eq!(constant_operand(&ssa, &Operand::Value(a1)), Some(3));
        assert_eq!(constant_operand(&ssa, &Operand::Value(b1)), Some(32));
    }

    #[test]
    fn overflow_is_not_folded() {
        let mut ssa = build("func f() { a = 9223372036854775807 + 1 }");
        assert_eq!(fold_constants(&mut ssa), 0);
    }
}
