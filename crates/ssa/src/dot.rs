//! Graphviz DOT export of the **SSA graph** — the paper's Figure 2: nodes
//! are operations, edges run from each operation to its source operands.
//! Strongly connected regions in this picture are exactly what the
//! classifier feeds to Tarjan's algorithm.

use std::fmt::Write as _;

use crate::ssa::{SsaFunction, ValueDef};

/// Renders the SSA def-use graph in the paper's orientation (operator →
/// operand). Loop-header φs are drawn as double circles so the SCRs the
/// classifier cares about are easy to spot.
pub fn ssa_graph_to_dot(ssa: &SsaFunction) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}-ssa\" {{", ssa.func().name());
    let _ = writeln!(out, "    node [fontname=\"monospace\"];");
    for (v, data) in ssa.values.iter() {
        let name = ssa.value_name(v);
        let (shape, tag) = match &data.def {
            ValueDef::Phi { .. } => ("doublecircle", "PH"),
            ValueDef::Copy { .. } => ("ellipse", "ID"),
            ValueDef::Neg { .. } => ("ellipse", "NG"),
            ValueDef::Binary { op, .. } => (
                "ellipse",
                match op {
                    biv_ir::BinOp::Add => "AD",
                    biv_ir::BinOp::Sub => "SB",
                    biv_ir::BinOp::Mul => "MP",
                    biv_ir::BinOp::Div => "DV",
                    biv_ir::BinOp::Exp => "EX",
                },
            ),
            ValueDef::Load { .. } => ("box", "LD"),
            ValueDef::LiveIn { .. } => ("plaintext", "IN"),
            ValueDef::ExitValue { .. } => ("diamond", "XV"),
        };
        let _ = writeln!(
            out,
            "    \"{name}\" [shape={shape}, label=\"{name}\\n{tag}\"];"
        );
        for operand in ssa.operands_of(v) {
            let _ = writeln!(out, "    \"{name}\" -> \"{}\";", ssa.value_name(operand));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::SsaFunction;
    use biv_ir::parser::parse_program;

    #[test]
    fn figure2_style_graph() {
        // Figure 1/2's loop: the SSA graph must contain the j-family SCR.
        let program = parse_program(
            "func f(n, c, k) { j = n L7: loop { i = j + c j = i + k if j > 1000 { break } } }",
        )
        .unwrap();
        let ssa = SsaFunction::build(&program.functions[0]);
        let dot = ssa_graph_to_dot(&ssa);
        assert!(dot.contains("doublecircle"), "phi drawn specially: {dot}");
        assert!(dot.contains("\"j2\" ->"), "{dot}");
        assert!(dot.contains("AD"), "{dot}");
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
