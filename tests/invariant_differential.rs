//! The invariant serving contract, differentially: `bivc --invariants`
//! must print (1) exactly the plain batch report plus per-loop
//! `invariant:` lines — nothing else moves — with (2) every planted
//! running-sum relation recovered verbatim, and (3) the same bytes
//! whether the batch is analyzed locally, by a `bivd` daemon
//! (`--remote`), or across a 3-shard fleet (`--fleet`), cold and warm.
//! Plus the checker canary: an off-by-one coefficient against *real*
//! interpreter traces must be rejected by the same predicate the
//! pipeline uses.

#![cfg(unix)]

// These tests use only a slice of the shared helpers.
#[allow(dead_code)]
mod common;

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;
use std::process::{Child, Command, Stdio};

use biv::server::{Client, Endpoint, Request, Response};
use biv::workload::{generate, running_sum_relation, WorkloadSpec};
use common::{bivc_stdout, scratch_dir, Daemon};

/// Writes one `invariants`-preset workload file per seed; returns the
/// total number of planted running-sum pairs.
fn write_invariant_corpus(dir: &Path, seeds: &[u64]) -> usize {
    let mut planted = 0;
    for (i, &seed) in seeds.iter().enumerate() {
        let w = generate(&WorkloadSpec::invariants(2, seed));
        std::fs::write(dir.join(format!("inv_{i}.biv")), &w.source).expect("write corpus file");
        planted += w.invariant_plants.len();
    }
    planted
}

#[test]
fn invariants_flag_is_pure_line_addition_and_recovers_planted_labels() {
    let dir = scratch_dir("inv-diff-local");
    let planted = write_invariant_corpus(&dir, &[3, 4]);
    let dir_arg = dir.display().to_string();
    let with = bivc_stdout(&["--invariants", &dir_arg]);
    let plain = bivc_stdout(&["--batch", &dir_arg]);

    // The flag adds `invariant:` lines and changes nothing else.
    assert_ne!(with, plain, "the corpus must actually carry invariants");
    let stripped: String = with
        .lines()
        .filter(|l| !l.trim_start().starts_with("invariant: "))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        stripped, plain,
        "--invariants must be a pure line addition over the plain report"
    );

    // Group the emitted relations by (function, loop) — different
    // corpus files reuse the same planted loop labels — and check every
    // planted running-sum pair reports exactly its ground-truth relation.
    let mut by_loop: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    let mut func = String::new();
    let mut current = String::new();
    for line in with.lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("══ ") {
            // `══ path ══` group headers disambiguate the per-file
            // functions, which all share the generator's name.
            func = rest.trim_end_matches(" ══").to_string();
        } else if let Some(rest) = t.strip_prefix("loop ") {
            current = rest.split(':').next().unwrap_or("").to_string();
        } else if let Some(rel) = t.strip_prefix("invariant: ") {
            by_loop
                .entry((func.clone(), current.clone()))
                .or_default()
                .push(rel.into());
        }
    }
    let rs_total: usize = by_loop
        .iter()
        .filter(|((_, name), _)| name.starts_with("RS"))
        .map(|(_, rels)| rels.len())
        .sum();
    assert_eq!(
        rs_total, planted,
        "one verified invariant per planted pair, none missing, none extra"
    );
    for ((func, name), rels) in by_loop.iter().filter(|((_, n), _)| n.starts_with("RS")) {
        assert_eq!(rels.len(), 1, "{func} loop {name}: {rels:?}");
        // Shape `2*SUM + IDX - IDX^2 = 0`: parse the two names back out
        // and require the whole line to be the canonical rendering.
        let rel = &rels[0];
        let sum = rel
            .strip_prefix("2*")
            .and_then(|r| r.split(' ').next())
            .unwrap_or_else(|| panic!("{func} loop {name}: unexpected relation `{rel}`"));
        let index = rel
            .split(" + ")
            .nth(1)
            .and_then(|r| r.split(' ').next())
            .unwrap_or_else(|| panic!("{func} loop {name}: unexpected relation `{rel}`"));
        assert_eq!(
            rel,
            &running_sum_relation(sum, index),
            "{func} loop {name}: planted label must be recovered verbatim"
        );
    }
}

/// Spawns one `bivd --tcp 127.0.0.1:0 --fleet shard=K/N` shard and
/// returns the child plus the endpoint parsed from its banner.
fn spawn_tcp_shard(shard: u32, shard_count: u32) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bivd"))
        .args([
            "--tcp",
            "127.0.0.1:0",
            "--fleet",
            &format!("shard={shard}/{shard_count}"),
            "--workers",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("bivd spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let banner = lines
        .next()
        .expect("bivd prints a banner")
        .expect("banner reads");
    let endpoint = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("unparseable bivd banner: {banner}"))
        .to_string();
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, endpoint)
}

fn drain_fleet(children: Vec<Child>, endpoints: &str) {
    for endpoint in endpoints.split(',') {
        let mut client = Client::connect(&Endpoint::parse(endpoint)).expect("connect for drain");
        assert_eq!(
            client.request(&Request::Shutdown).expect("shutdown"),
            Response::ShutdownAck
        );
    }
    for mut child in children {
        let status = child.wait().expect("bivd exits");
        assert!(status.success(), "shard exited uncleanly: {status}");
    }
}

#[test]
fn remote_and_three_shard_fleet_invariant_bytes_match_local_warm_and_cold() {
    let dir = scratch_dir("inv-diff-serve");
    write_invariant_corpus(&dir, &[7, 8, 9]);
    let dir_arg = dir.display().to_string();
    let reference = bivc_stdout(&["--invariants", &dir_arg]);
    assert!(reference.contains("invariant: "));

    // Daemon: the first pass analyzes, the second serves the daemon's
    // warm cache — the invariant lines must ride the cached summaries.
    let daemon = Daemon::spawn("inv-remote", &[]);
    let socket = daemon.remote_arg();
    for pass in ["cold", "warm"] {
        let out = bivc_stdout(&["--remote", &socket, "--invariants", &dir_arg]);
        assert_eq!(reference, out, "--remote {pass} pass diverged");
    }
    daemon.shutdown();

    // 3-shard fleet, cold then warm, byte-identical both times.
    let mut children = Vec::new();
    let mut endpoints = Vec::new();
    for shard in 0..3 {
        let (child, endpoint) = spawn_tcp_shard(shard, 3);
        children.push(child);
        endpoints.push(endpoint);
    }
    let endpoints = endpoints.join(",");
    for pass in ["cold", "warm"] {
        let out = bivc_stdout(&["--fleet", &endpoints, "--invariants", &dir_arg]);
        assert_eq!(reference, out, "--fleet {pass} pass diverged");
    }
    drain_fleet(children, &endpoints);
}

#[test]
fn off_by_one_canary_is_rejected_against_real_interpreter_traces() {
    use biv::invariant::{check_candidate, Candidate};
    use biv::ssa::{fold_constants, SsaFunction, SsaInterpreter};

    let w = generate(&WorkloadSpec::invariants(1, 5));
    let analysis = biv::core_analysis::analyze(&w.func);
    let (l, info) = analysis
        .loops()
        .find(|(_, info)| info.name == "RS0x0")
        .expect("planted running-sum loop");
    let header = analysis.forest().data(l).header;
    let phis = analysis.ssa().block(header).phis.clone();
    assert_eq!(phis.len(), 2);
    let degree = |v| match info.classes.get(v) {
        Some(biv::core_analysis::Class::Induction(cf)) => cf.degree(),
        other => panic!("unexpected φ class {other:?}"),
    };
    let (index, sum) = if degree(phis[0]) == 1 {
        (phis[0], phis[1])
    } else {
        (phis[1], phis[0])
    };

    // Replay the program exactly as the pipeline's checker does: a
    // clean SSA build (no synthetic exit values), constants folded.
    let mut ssa = SsaFunction::build(&w.func);
    fold_constants(&mut ssa);
    let (trace, fault) = SsaInterpreter::default().run_partial(&ssa, &[10]);
    assert!(
        fault.is_none(),
        "workload must interpret cleanly: {fault:?}"
    );
    let histories = vec![trace.history(index), trace.history(sum)];
    assert!(histories.iter().all(|h| h.len() >= 4));

    // Basis [1, i, s, i², is, s²]: the true relation 2s + i − i² = 0
    // passes; the same candidate with one coefficient off by one fails.
    let good = Candidate {
        coeffs: vec![0, 1, 2, -1, 0, 0],
        exps: vec![
            vec![0, 0],
            vec![1, 0],
            vec![0, 1],
            vec![2, 0],
            vec![1, 1],
            vec![0, 2],
        ],
    };
    assert!(
        check_candidate(&good, std::slice::from_ref(&histories), 4),
        "the true planted relation must verify on the real trace"
    );
    let mut broken = good.clone();
    broken.coeffs[2] = 3; // 3s + i − i²: off by one in the sum coefficient
    assert!(
        !check_candidate(&broken, &[histories], 4),
        "the off-by-one canary must be rejected"
    );
}
