//! Malformed-frame corpus: a live server fed truncated prefixes,
//! oversize lengths, invalid UTF-8, deeply nested JSON, and binary
//! garbage must answer each with a protocol error or a clean close —
//! and must never panic or stop serving well-formed clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use biv::server::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
use biv::server::{Client, Endpoint, Request, Response, Server, ServerConfig};

/// An in-process server on a loopback port; returns the dial address
/// and the join handle (resolved by a `shutdown` request).
fn spawn_server() -> (String, std::thread::JoinHandle<()>) {
    let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
    config.workers = 1;
    // Small cap so the oversize probe is cheap.
    config.max_frame_bytes = 1 << 20;
    let server = Server::bind(config).expect("bind 127.0.0.1:0");
    let endpoint = server.bound_endpoint();
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let handle = std::thread::spawn(move || {
        server.run(flag).expect("server run");
    });
    (endpoint, handle)
}

fn dial(endpoint: &str) -> TcpStream {
    let addr = endpoint.strip_prefix("tcp:").expect("tcp endpoint");
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    conn
}

/// Expects either a framed `Response::Error` or a clean close — the two
/// legal outcomes for garbage input.
fn error_or_close(conn: &mut TcpStream, what: &str) {
    match read_frame(conn, MAX_FRAME_BYTES) {
        Ok(Some(payload)) => {
            let response = Response::decode(&payload)
                .unwrap_or_else(|e| panic!("{what}: undecodable response: {e}"));
            let Response::Error { kind, .. } = response else {
                panic!("{what}: expected an error response, got {response:?}");
            };
            assert_eq!(kind, "bad-request", "{what}");
        }
        Ok(None) => {} // clean close
        Err(e) => {
            // A reset after the server aborts the connection is as
            // acceptable as a clean FIN; a timeout (hang) is not.
            assert_ne!(
                e.kind(),
                std::io::ErrorKind::WouldBlock,
                "{what}: server hung instead of answering or closing"
            );
        }
    }
}

/// The server survived: a fresh well-formed client still gets served.
fn assert_alive(endpoint: &str) {
    let mut client = Client::connect(&Endpoint::parse(endpoint)).expect("reconnect");
    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );
}

/// A fake shard: accepts connections and answers every frame with
/// `reply(frame_payload)` bytes written raw (so tests can send
/// well-formed responses, wrong responses, or truncated garbage).
/// Stops when the returned flag is set and the port is poked.
fn spawn_fake_shard(
    reply: fn(&[u8]) -> Vec<u8>,
) -> (
    String,
    std::sync::Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    use std::sync::atomic::Ordering;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake shard");
    let endpoint = format!("tcp:{}", listener.local_addr().unwrap());
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let handle = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            let Ok(mut conn) = conn else { continue };
            // One exchange per connection, then close: a truncated
            // reply followed by a held-open socket would hang a client
            // with no read timeout, and the router treats EOF as the
            // shard's answer ending — which is exactly the failure
            // these tests inject.
            if let Ok(Some(payload)) = read_frame(&mut conn, MAX_FRAME_BYTES) {
                let _ = conn.write_all(&reply(&payload));
            }
        }
    });
    (endpoint, stop, handle)
}

/// Frames `response` exactly as a well-behaved server would.
fn framed(response: &Response) -> Vec<u8> {
    let payload = response.encode();
    let mut out = (payload.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(&payload);
    out
}

fn stop_fake(endpoint: &str, stop: &AtomicBool, handle: std::thread::JoinHandle<()>) {
    use std::sync::atomic::Ordering;
    stop.store(true, Ordering::SeqCst);
    // Poke the accept loop awake so it observes the flag.
    let _ = TcpStream::connect(endpoint.strip_prefix("tcp:").unwrap());
    handle.join().unwrap();
}

/// Fleet malformed frames, case 1 — truncated stats reply: the
/// aggregator must mark that shard unreachable and still aggregate the
/// healthy one, never hang or fail the whole poll.
#[test]
fn truncated_shard_stats_reply_fails_the_shard_not_the_aggregate() {
    let (real_endpoint, real_handle) = spawn_server();
    // Promise 64 payload bytes, deliver 5, close.
    let (fake_endpoint, stop, fake_handle) = spawn_fake_shard(|_| {
        let mut out = 64u32.to_be_bytes().to_vec();
        out.extend_from_slice(b"trunc");
        out
    });

    let stats = biv::fleet::fleet_stats(&[real_endpoint.clone(), fake_endpoint.clone()])
        .expect("one healthy shard is enough to aggregate");
    let fleet = stats.get("fleet").expect("fleet section");
    assert_eq!(fleet.get("shards").unwrap().as_i64(), Some(2));
    assert_eq!(fleet.get("reachable").unwrap().as_i64(), Some(1));
    let unreachable = fleet.get("unreachable").unwrap();
    assert_eq!(unreachable.as_arr().map(<[_]>::len), Some(1));

    stop_fake(&fake_endpoint, &stop, fake_handle);
    let mut client = Client::connect(&Endpoint::parse(&real_endpoint)).expect("connect");
    client.request(&Request::Shutdown).expect("shutdown");
    real_handle.join().expect("clean drain");
}

/// Fleet malformed frames, case 2 — a shard that answers every analyze
/// with a redirect (so the router's identity repair never converges):
/// files routed to it must fail individually with a give-up error while
/// files on the healthy shard are served, and the batch as a whole
/// completes.
#[test]
fn redirect_loop_fails_the_file_not_the_batch() {
    let (real_endpoint, real_handle) = {
        // A real shard 0 of a 2-shard fleet.
        let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
        config.workers = 1;
        config.shard_count = 2;
        let server = Server::bind(config).expect("bind");
        let endpoint = server.bound_endpoint();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let handle = std::thread::spawn(move || {
            server.run(flag).expect("server run");
        });
        (endpoint, handle)
    };
    // The fake claims to be shard 0 forever, whatever it is asked.
    let (fake_endpoint, stop, fake_handle) = spawn_fake_shard(|_| {
        framed(&Response::Redirect {
            shard_id: 0,
            shard_count: 2,
            message: "I only ever claim to be shard 0".into(),
        })
    });

    let files: Vec<biv::server::AnalyzeFile> = (0..12)
        .map(|i| biv::server::AnalyzeFile {
            path: format!("mem/{i}.biv"),
            source: format!("func r{i}(n) {{ L1: for i = 1 to n {{ A[i] = {i} }} }}\n"),
        })
        .collect();
    let mut router = biv::fleet::Router::new(biv::fleet::FleetConfig::new(vec![
        real_endpoint.clone(),
        fake_endpoint.clone(),
    ]))
    .expect("router");
    let report = router.analyze(files.clone()).expect("batch completes");

    assert!(
        !report.errors.is_empty(),
        "some files must have routed into the redirect loop"
    );
    assert!(
        report.errors.len() < files.len(),
        "the healthy shard must have served the rest"
    );
    for e in &report.errors {
        assert!(
            e.message.contains("gave up after"),
            "expected a give-up error, got: {}",
            e.message
        );
    }
    assert!(report.redirects > 0);
    // Served files render normally; the output ends with a stats line.
    assert!(report.output.ends_with("evictions\n"));

    stop_fake(&fake_endpoint, &stop, fake_handle);
    let mut client = Client::connect(&Endpoint::parse(&real_endpoint)).expect("connect");
    client.request(&Request::Shutdown).expect("shutdown");
    real_handle.join().expect("clean drain");
}

/// Fleet malformed frames, case 3 — a redirect naming a shard id that
/// does not exist in the fleet: a protocol error for the affected
/// files, not a panic and not a batch failure.
#[test]
fn out_of_range_redirect_shard_id_fails_the_file_cleanly() {
    let (real_endpoint, real_handle) = {
        let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
        config.workers = 1;
        config.shard_count = 2;
        let server = Server::bind(config).expect("bind");
        let endpoint = server.bound_endpoint();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let handle = std::thread::spawn(move || {
            server.run(flag).expect("server run");
        });
        (endpoint, handle)
    };
    let (fake_endpoint, stop, fake_handle) = spawn_fake_shard(|_| {
        framed(&Response::Redirect {
            shard_id: 9,
            shard_count: 2,
            message: "routing table from another universe".into(),
        })
    });

    let files: Vec<biv::server::AnalyzeFile> = (0..12)
        .map(|i| biv::server::AnalyzeFile {
            path: format!("mem/{i}.biv"),
            source: format!("func o{i}(n) {{ L1: for i = 1 to n {{ A[i] = {i} }} }}\n"),
        })
        .collect();
    let mut router = biv::fleet::Router::new(biv::fleet::FleetConfig::new(vec![
        real_endpoint.clone(),
        fake_endpoint.clone(),
    ]))
    .expect("router");
    let report = router.analyze(files.clone()).expect("batch completes");

    assert!(!report.errors.is_empty(), "some files hit the bad shard");
    assert!(report.errors.len() < files.len(), "the rest were served");
    for e in &report.errors {
        assert!(
            e.message.contains("redirect to shard 9 of 2"),
            "expected an out-of-range protocol error, got: {}",
            e.message
        );
    }

    stop_fake(&fake_endpoint, &stop, fake_handle);
    let mut client = Client::connect(&Endpoint::parse(&real_endpoint)).expect("connect");
    client.request(&Request::Shutdown).expect("shutdown");
    real_handle.join().expect("clean drain");
}

/// Fleet malformed frames, case 4 — a shard whose analyze reply is a
/// truncated frame: the router treats the broken exchange as a shard
/// death and re-routes to the healthy shard, so every file is still
/// served and the bytes stay correct.
#[test]
fn truncated_analyze_reply_reroutes_to_the_healthy_shard() {
    let (real_endpoint, real_handle) = {
        let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
        config.workers = 1;
        config.shard_count = 2;
        let server = Server::bind(config).expect("bind");
        let endpoint = server.bound_endpoint();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let handle = std::thread::spawn(move || {
            server.run(flag).expect("server run");
        });
        (endpoint, handle)
    };
    let (fake_endpoint, stop, fake_handle) = spawn_fake_shard(|_| {
        let mut out = 1000u32.to_be_bytes().to_vec();
        out.extend_from_slice(b"{\"ok\":true,\"op\":\"analyze_fl");
        out
    });

    let files: Vec<biv::server::AnalyzeFile> = (0..12)
        .map(|i| biv::server::AnalyzeFile {
            path: format!("mem/{i}.biv"),
            source: format!("func t{i}(n) {{ L1: for i = 1 to n {{ A[i] = {i} }} }}\n"),
        })
        .collect();
    let mut router = biv::fleet::Router::new(biv::fleet::FleetConfig::new(vec![
        real_endpoint.clone(),
        fake_endpoint.clone(),
    ]))
    .expect("router");
    let report = router.analyze(files.clone()).expect("batch completes");

    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.functions, files.len(), "every file served");
    assert!(
        report.dead_shards.contains(&1),
        "the truncating shard must be marked dead, saw {:?}",
        report.dead_shards
    );

    stop_fake(&fake_endpoint, &stop, fake_handle);
    let mut client = Client::connect(&Endpoint::parse(&real_endpoint)).expect("connect");
    client.request(&Request::Shutdown).expect("shutdown");
    real_handle.join().expect("clean drain");
}

/// Fleet malformed frames, case 5 — truncated and oversized `preload`
/// and `gossip` frames against a live server: each must end in a
/// protocol error or a clean close, and the daemon must keep serving.
#[test]
fn malformed_preload_and_gossip_frames_never_kill_the_server() {
    let (endpoint, handle) = spawn_server();

    // 1. Truncated preload: the prefix promises the whole request, the
    //    sender FINs halfway through the payload.
    {
        let mut conn = dial(&endpoint);
        let payload = Request::Preload {
            dir: "/nonexistent/snapshot".into(),
        }
        .encode();
        conn.write_all(&(payload.len() as u32).to_be_bytes())
            .unwrap();
        conn.write_all(&payload[..payload.len() / 2]).unwrap();
        drop(conn);
    }
    assert_alive(&endpoint);

    // 2. Oversized preload: a length prefix beyond the server's frame
    //    cap (1 MiB here) must close the connection before allocation.
    {
        let mut conn = dial(&endpoint);
        conn.write_all(&(8u32 << 20).to_be_bytes()).unwrap();
        conn.write_all(br#"{"op":"preload","dir":"/x"}"#).unwrap();
        let mut buf = [0u8; 16];
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "oversize preload should close the connection");
    }
    assert_alive(&endpoint);

    // 3. Truncated gossip: FIN mid-heartbeat.
    {
        let mut conn = dial(&endpoint);
        let heartbeat = br#"{"op":"gossip","from":0,"view":{"version":1,"members":[]}}"#;
        conn.write_all(&(heartbeat.len() as u32).to_be_bytes())
            .unwrap();
        conn.write_all(&heartbeat[..heartbeat.len() / 2]).unwrap();
        drop(conn);
    }
    assert_alive(&endpoint);

    // 4. Gossip whose view is not an object at all.
    {
        let mut conn = dial(&endpoint);
        write_frame(&mut conn, br#"{"op":"gossip","view":42}"#).unwrap();
        error_or_close(&mut conn, "gossip with a non-object view");
    }
    assert_alive(&endpoint);

    // 5. Gossip without a members array inside the view.
    {
        let mut conn = dial(&endpoint);
        write_frame(&mut conn, br#"{"op":"gossip","view":{"version":9}}"#).unwrap();
        error_or_close(&mut conn, "gossip without members");
    }
    assert_alive(&endpoint);

    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("clean drain");
}

/// Fleet malformed frames, case 6 — well-formed gossip frames carrying
/// garbage member records against a server *with* a membership agent:
/// the agent must ignore what it cannot parse (including shard ids
/// outside the ring), answer its own well-formed view, and keep its
/// membership intact.
#[test]
fn garbage_gossip_members_cannot_poison_a_live_agent() {
    use biv::fleet::{AgentConfig, ClusterAgent, View};

    let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
    config.workers = 1;
    let mut server = Server::bind(config).expect("bind 127.0.0.1:0");
    let endpoint = server.bound_endpoint();
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let agent = AgentConfig::new(0, 1, endpoint.clone());
    let (hook, _threads) = ClusterAgent::spawn(agent, flag);
    server.install_cluster(hook);
    let handle = std::thread::spawn(move || {
        server.run(flag).expect("server run");
    });

    let corpus: &[&[u8]] = &[
        // Member records of the wrong JSON type.
        br#"{"op":"gossip","view":{"version":3,"shard_count":1,"members":[1,2,3]}}"#,
        // A member record missing every required field.
        br#"{"op":"gossip","view":{"version":3,"shard_count":1,"members":[{}]}}"#,
        // A shard id far outside the ring must not grow the view.
        br#"{"op":"gossip","view":{"version":3,"shard_count":1,"members":[{"shard_id":4000000,"endpoint":"tcp:1.2.3.4:1","incarnation":9,"state":"alive"}]}}"#,
        // A claim that shard 0 (the server itself) is dead: refuted.
        br#"{"op":"gossip","view":{"version":3,"shard_count":1,"members":[{"shard_id":0,"endpoint":"tcp:1.2.3.4:1","incarnation":0,"state":"dead"}]}}"#,
    ];
    for payload in corpus {
        let mut conn = dial(&endpoint);
        write_frame(&mut conn, payload).unwrap();
        match read_frame(&mut conn, MAX_FRAME_BYTES) {
            Ok(Some(reply)) => {
                let response = Response::decode(&reply).expect("decodable reply");
                match response {
                    Response::Gossip { view } | Response::Members { view } => {
                        let view = View::from_json(&view).expect("agent answers a parsable view");
                        assert_eq!(view.members.len(), 1, "ring must not grow");
                        assert_eq!(view.members[0].shard_id, 0);
                        assert_eq!(
                            view.members[0].state.as_str(),
                            "alive",
                            "the agent must refute reports of its own death"
                        );
                    }
                    Response::Error { kind, .. } => assert_eq!(kind, "bad-request"),
                    other => panic!("unexpected reply to garbage gossip: {other:?}"),
                }
            }
            Ok(None) => {}
            Err(e) => panic!("agent hung or died on garbage gossip: {e}"),
        }
    }
    assert_alive(&endpoint);

    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("clean drain");
}

#[test]
fn malformed_frame_corpus_never_kills_the_server() {
    let (endpoint, handle) = spawn_server();

    // 1. Truncated length prefix: two bytes, then FIN mid-prefix.
    {
        let mut conn = dial(&endpoint);
        conn.write_all(&[0x00, 0x01]).unwrap();
        drop(conn);
    }
    assert_alive(&endpoint);

    // 2. Truncated payload: the prefix promises more than is sent.
    {
        let mut conn = dial(&endpoint);
        conn.write_all(&64u32.to_be_bytes()).unwrap();
        conn.write_all(b"only a few bytes").unwrap();
        drop(conn);
    }
    assert_alive(&endpoint);

    // 3. Oversize length prefix: must be rejected before allocation,
    //    by dropping the connection (no way to resync after it).
    {
        let mut conn = dial(&endpoint);
        conn.write_all(&u32::MAX.to_be_bytes()).unwrap();
        let mut buf = [0u8; 16];
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "oversize frame should close the connection");
    }
    assert_alive(&endpoint);

    // 4. Invalid UTF-8 payload in a well-formed frame.
    {
        let mut conn = dial(&endpoint);
        write_frame(&mut conn, &[0xff, 0xfe, 0x80, 0x81]).unwrap();
        error_or_close(&mut conn, "invalid utf-8");
    }
    assert_alive(&endpoint);

    // 5. Deeply nested JSON: parser depth limit, not a stack overflow.
    {
        let mut conn = dial(&endpoint);
        let deep = format!("{}1{}", "[".repeat(4096), "]".repeat(4096));
        write_frame(&mut conn, deep.as_bytes()).unwrap();
        error_or_close(&mut conn, "deeply nested json");
    }
    assert_alive(&endpoint);

    // 6. Valid JSON, wrong shape.
    {
        let mut conn = dial(&endpoint);
        write_frame(&mut conn, br#"{"op":"explode","v":[1,2,3]}"#).unwrap();
        error_or_close(&mut conn, "wrong shape");
        // The same connection keeps serving after a bad request.
        write_frame(&mut conn, &Request::Ping.encode()).unwrap();
        let payload = read_frame(&mut conn, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), Response::Pong);
    }

    // 7. Binary garbage payloads at assorted sizes.
    for size in [1usize, 7, 255, 4096] {
        let mut conn = dial(&endpoint);
        let garbage: Vec<u8> = (0..size).map(|i| (i * 37 + 11) as u8).collect();
        write_frame(&mut conn, &garbage).unwrap();
        error_or_close(&mut conn, "binary garbage");
    }
    assert_alive(&endpoint);

    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShutdownAck
    );
    handle.join().expect("server thread exits cleanly");
}
