//! Malformed-frame corpus: a live server fed truncated prefixes,
//! oversize lengths, invalid UTF-8, deeply nested JSON, and binary
//! garbage must answer each with a protocol error or a clean close —
//! and must never panic or stop serving well-formed clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use biv::server::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
use biv::server::{Client, Endpoint, Request, Response, Server, ServerConfig};

/// An in-process server on a loopback port; returns the dial address
/// and the join handle (resolved by a `shutdown` request).
fn spawn_server() -> (String, std::thread::JoinHandle<()>) {
    let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
    config.workers = 1;
    // Small cap so the oversize probe is cheap.
    config.max_frame_bytes = 1 << 20;
    let server = Server::bind(config).expect("bind 127.0.0.1:0");
    let endpoint = server.bound_endpoint();
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let handle = std::thread::spawn(move || {
        server.run(flag).expect("server run");
    });
    (endpoint, handle)
}

fn dial(endpoint: &str) -> TcpStream {
    let addr = endpoint.strip_prefix("tcp:").expect("tcp endpoint");
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    conn
}

/// Expects either a framed `Response::Error` or a clean close — the two
/// legal outcomes for garbage input.
fn error_or_close(conn: &mut TcpStream, what: &str) {
    match read_frame(conn, MAX_FRAME_BYTES) {
        Ok(Some(payload)) => {
            let response = Response::decode(&payload)
                .unwrap_or_else(|e| panic!("{what}: undecodable response: {e}"));
            let Response::Error { kind, .. } = response else {
                panic!("{what}: expected an error response, got {response:?}");
            };
            assert_eq!(kind, "bad-request", "{what}");
        }
        Ok(None) => {} // clean close
        Err(e) => {
            // A reset after the server aborts the connection is as
            // acceptable as a clean FIN; a timeout (hang) is not.
            assert_ne!(
                e.kind(),
                std::io::ErrorKind::WouldBlock,
                "{what}: server hung instead of answering or closing"
            );
        }
    }
}

/// The server survived: a fresh well-formed client still gets served.
fn assert_alive(endpoint: &str) {
    let mut client = Client::connect(&Endpoint::parse(endpoint)).expect("reconnect");
    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );
}

#[test]
fn malformed_frame_corpus_never_kills_the_server() {
    let (endpoint, handle) = spawn_server();

    // 1. Truncated length prefix: two bytes, then FIN mid-prefix.
    {
        let mut conn = dial(&endpoint);
        conn.write_all(&[0x00, 0x01]).unwrap();
        drop(conn);
    }
    assert_alive(&endpoint);

    // 2. Truncated payload: the prefix promises more than is sent.
    {
        let mut conn = dial(&endpoint);
        conn.write_all(&64u32.to_be_bytes()).unwrap();
        conn.write_all(b"only a few bytes").unwrap();
        drop(conn);
    }
    assert_alive(&endpoint);

    // 3. Oversize length prefix: must be rejected before allocation,
    //    by dropping the connection (no way to resync after it).
    {
        let mut conn = dial(&endpoint);
        conn.write_all(&u32::MAX.to_be_bytes()).unwrap();
        let mut buf = [0u8; 16];
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "oversize frame should close the connection");
    }
    assert_alive(&endpoint);

    // 4. Invalid UTF-8 payload in a well-formed frame.
    {
        let mut conn = dial(&endpoint);
        write_frame(&mut conn, &[0xff, 0xfe, 0x80, 0x81]).unwrap();
        error_or_close(&mut conn, "invalid utf-8");
    }
    assert_alive(&endpoint);

    // 5. Deeply nested JSON: parser depth limit, not a stack overflow.
    {
        let mut conn = dial(&endpoint);
        let deep = format!("{}1{}", "[".repeat(4096), "]".repeat(4096));
        write_frame(&mut conn, deep.as_bytes()).unwrap();
        error_or_close(&mut conn, "deeply nested json");
    }
    assert_alive(&endpoint);

    // 6. Valid JSON, wrong shape.
    {
        let mut conn = dial(&endpoint);
        write_frame(&mut conn, br#"{"op":"explode","v":[1,2,3]}"#).unwrap();
        error_or_close(&mut conn, "wrong shape");
        // The same connection keeps serving after a bad request.
        write_frame(&mut conn, &Request::Ping.encode()).unwrap();
        let payload = read_frame(&mut conn, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), Response::Pong);
    }

    // 7. Binary garbage payloads at assorted sizes.
    for size in [1usize, 7, 255, 4096] {
        let mut conn = dial(&endpoint);
        let garbage: Vec<u8> = (0..size).map(|i| (i * 37 + 11) as u8).collect();
        write_frame(&mut conn, &garbage).unwrap();
        error_or_close(&mut conn, "binary garbage");
    }
    assert_alive(&endpoint);

    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShutdownAck
    );
    handle.join().expect("server thread exits cleanly");
}
