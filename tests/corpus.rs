//! A corpus of classification scenarios beyond the paper's figures — each
//! case exercises a distinct interaction between the classifier's parts.

use biv::core_analysis::{analyze_source, Analysis, Class, Direction};

fn class_of<'a>(analysis: &'a Analysis, name: &str) -> &'a Class {
    let v = analysis
        .ssa()
        .value_by_name(name)
        .unwrap_or_else(|| panic!("no value `{name}`"));
    analysis
        .class_of(v)
        .unwrap_or_else(|| panic!("`{name}` unclassified"))
        .1
}

#[test]
fn downward_counting_loop() {
    let a = analyze_source("func f(n) { L1: for i = n to 1 by -1 { A[i] = i } }").unwrap();
    match class_of(&a, "i2") {
        Class::Induction(cf) => {
            assert!(cf.is_linear());
            assert_eq!(
                cf.coeffs[1].constant_value().unwrap(),
                biv::algebra::Rational::from_integer(-1)
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn two_independent_families_in_one_loop() {
    let a = analyze_source(
        r#"
        func f(n) {
            x = 0
            y = 100
            L1: for i = 1 to n {
                x = x + 2
                y = y - 3
                A[x] = y
            }
        }
        "#,
    )
    .unwrap();
    match (class_of(&a, "x2"), class_of(&a, "y2")) {
        (Class::Induction(cx), Class::Induction(cy)) => {
            assert_eq!(
                cx.coeffs[1].constant_value().unwrap(),
                biv::algebra::Rational::from_integer(2)
            );
            assert_eq!(
                cy.coeffs[1].constant_value().unwrap(),
                biv::algebra::Rational::from_integer(-3)
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn coupled_families_through_subtraction() {
    // x and y advance together; their difference is invariant.
    let a = analyze_source(
        r#"
        func f(n) {
            x = 0
            y = 7
            L1: for i = 1 to n {
                x = x + 2
                y = y + 2
                d = y - x
                A[d] = i
            }
        }
        "#,
    )
    .unwrap();
    match class_of(&a, "d1") {
        Class::Invariant(p) => {
            assert_eq!(
                p.constant_value().unwrap(),
                biv::algebra::Rational::from_integer(7)
            );
        }
        other => panic!("difference should be invariant 7, got {other:?}"),
    }
}

#[test]
fn self_cancelling_updates_are_invariant() {
    // x += 5 then x -= 5: the SCR's cumulative effect is zero.
    let a = analyze_source(
        r#"
        func f(n) {
            x = 42
            L1: for i = 1 to n {
                x = x + 5
                A[x] = i
                x = x - 5
                B[x] = i
            }
        }
        "#,
    )
    .unwrap();
    // The header phi carries 42 forever.
    match class_of(&a, "x2") {
        Class::Invariant(p) => assert_eq!(
            p.constant_value().unwrap(),
            biv::algebra::Rational::from_integer(42)
        ),
        other => panic!("x2 should be invariant, got {other:?}"),
    }
    // The intermediate +5 value is the invariant 47.
    match class_of(&a, "x3") {
        Class::Invariant(p) => assert_eq!(
            p.constant_value().unwrap(),
            biv::algebra::Rational::from_integer(47)
        ),
        other => panic!("x3 should be invariant 47, got {other:?}"),
    }
}

#[test]
fn fourth_order_polynomial() {
    // Cascading accumulators: a is linear, b quadratic, c cubic, d quartic.
    let a = analyze_source(
        r#"
        func f(n) {
            b = 0
            c = 0
            d = 0
            L1: for i = 1 to n {
                b = b + i
                c = c + b
                d = d + c
                A[d] = i
            }
        }
        "#,
    )
    .unwrap();
    match class_of(&a, "d3") {
        Class::Induction(cf) => assert_eq!(cf.degree(), 4),
        other => panic!("d should be quartic, got {other:?}"),
    }
    // Differential spot check at h = 5: b=1+..., sequence check via eval.
    // d3 after iteration h sums the first partial sums; d3(0) = value
    // after the first iteration = 1? Verify against a concrete run.
    let program = biv::ir::parser::parse_program(
        r#"
        func f(n) {
            b = 0
            c = 0
            d = 0
            L1: for i = 1 to n {
                b = b + i
                c = c + b
                d = d + c
                A[d] = i
            }
        }
        "#,
    )
    .unwrap();
    let ssa = biv::ssa::SsaFunction::build(&program.functions[0]);
    let trace = biv::ssa::SsaInterpreter::new().run(&ssa, &[8]).unwrap();
    let d3 = ssa.value_by_name("d3").unwrap();
    let history = trace.history(d3);
    let Class::Induction(cf) = class_of(&a, "d3") else {
        unreachable!()
    };
    for (h, &observed) in history.iter().enumerate() {
        let expected = cf.eval_at(h as i128).unwrap().constant_value().unwrap();
        assert_eq!(
            expected,
            biv::algebra::Rational::from_integer(i128::from(observed)),
            "d3({h})"
        );
    }
}

#[test]
fn periodic_of_period_four() {
    let a = analyze_source(
        r#"
        func f(n, p0, q0, r0, s0) {
            p = p0
            q = q0
            r = r0
            s = s0
            L1: for i = 1 to n {
                A[p] = i
                t = p
                p = q
                q = r
                r = s
                s = t
            }
        }
        "#,
    )
    .unwrap();
    match class_of(&a, "p2") {
        Class::Periodic(per) => assert_eq!(per.period(), 4),
        other => panic!("{other:?}"),
    }
}

#[test]
fn monotonic_with_multiple_conditionals() {
    let a = analyze_source(
        r#"
        func f(n) {
            k = 0
            L1: for i = 1 to n {
                t = A[i]
                if t > 0 { k = k + 1 }
                u = B[i]
                if u > 0 { k = k + 2 }
                C[k] = i
            }
        }
        "#,
    )
    .unwrap();
    match class_of(&a, "k2") {
        Class::Monotonic(m) => {
            assert_eq!(m.direction, Direction::Increasing);
            assert!(!m.strict, "both conditionals may be skipped");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn wraparound_of_polynomial() {
    // w trails a quadratic accumulator by one iteration.
    let a = analyze_source(
        r#"
        func f(n, w0) {
            w = w0
            b = 0
            L1: for i = 1 to n {
                A[w] = i
                w = b
                b = b + i
            }
        }
        "#,
    )
    .unwrap();
    match class_of(&a, "w2") {
        Class::WrapAround { order, steady, .. } => {
            assert_eq!(*order, 1);
            match steady.as_ref() {
                Class::Induction(cf) => assert_eq!(cf.degree(), 2),
                other => panic!("steady should be quadratic, got {other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn geometric_decay_by_division_is_unknown() {
    // Integer division truncates; g = g / 2 is NOT a geometric IV.
    let a = analyze_source(
        r#"
        func f(n) {
            g = 1000
            L1: for i = 1 to n {
                g = g / 2
                A[g] = i
            }
        }
        "#,
    )
    .unwrap();
    assert!(matches!(class_of(&a, "g2"), Class::Unknown));
}

#[test]
fn nested_loop_with_invariant_inner_bound() {
    // Rectangular nest: inner IV restarts; outer accumulator is linear
    // with step = inner trip count.
    let a = analyze_source(
        r#"
        func f(n) {
            s = 0
            L1: for i = 1 to n {
                L2: for j = 1 to 7 {
                    s = s + 1
                    A[s] = j
                }
            }
        }
        "#,
    )
    .unwrap();
    let l1 = a.loop_by_label("L1").unwrap();
    let s_var = a.ssa().func().var_by_name("s").unwrap();
    let found = a.info(l1).classes.iter().any(|(v, c)| {
        a.ssa().values[v].var == Some(s_var)
            && matches!(c, Class::Induction(cf)
                if cf.is_linear()
                && cf.coeffs[1].constant_value()
                    == Some(biv::algebra::Rational::from_integer(7)))
    });
    assert!(found, "s has step 7 in the outer loop");
}

#[test]
fn alternating_sign_geometric() {
    // g = -2 * g: base −2.
    let a = analyze_source(
        r#"
        func f(n) {
            g = 1
            L1: for i = 1 to n {
                g = 0 - 2 * g
                A[g] = i
            }
        }
        "#,
    )
    .unwrap();
    match class_of(&a, "g2") {
        Class::Induction(cf) => {
            assert_eq!(cf.geo.len(), 1);
            assert_eq!(cf.geo[0].0, biv::algebra::Rational::from_integer(-2));
            // Values: 1, -2, 4, -8, ...
            for (h, expected) in [(0, 1), (1, -2), (2, 4), (3, -8)] {
                assert_eq!(
                    cf.eval_at(h).unwrap().constant_value().unwrap(),
                    biv::algebra::Rational::from_integer(expected)
                );
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn symbolic_bound_with_concrete_step_mix() {
    // The classic blocked-loop shape: outer blocks of 16, inner scans the
    // block. s = 16(i-1) + (j-1) should make the A subscript linear in
    // both loops.
    let a = analyze_source(
        r#"
        func f(n) {
            L1: for i = 1 to n {
                L2: for j = 1 to 16 {
                    s = 16 * i + j
                    A[s] = j
                }
            }
        }
        "#,
    )
    .unwrap();
    let l2 = a.loop_by_label("L2").unwrap();
    let s1 = a.ssa().value_by_name("s1").unwrap();
    match a.class_in(l2, s1).unwrap() {
        Class::Induction(cf) => {
            assert!(cf.is_linear());
            assert_eq!(
                cf.coeffs[1].constant_value().unwrap(),
                biv::algebra::Rational::ONE
            );
        }
        other => panic!("{other:?}"),
    }
}
