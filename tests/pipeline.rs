//! Cross-crate integration: parse → SSA (verified) → classify →
//! dependence-test, over paper programs and generated workloads, plus the
//! coverage comparison between the unified classifier and the classical
//! baseline.

use biv::core_analysis::{analyze, analyze_with, AnalysisConfig};
use biv::depend::DependenceTester;
use biv::ir::interp::Interpreter;
use biv::ir::parser::parse_program;
use biv::ir::verify::verify_function;
use biv::ssa::{verify_ssa, SsaFunction, SsaInterpreter};
use biv::workload::{count_classes, generate, WorkloadSpec};

#[test]
fn every_generated_workload_passes_all_verifiers() {
    for seed in 0..8u64 {
        let w = generate(&WorkloadSpec {
            loops: 3,
            diamonds: 2,
            seed,
            ..WorkloadSpec::default()
        });
        verify_function(&w.func).expect("CFG verifies");
        let ssa = SsaFunction::build(&w.func);
        verify_ssa(&ssa).expect("SSA verifies");
        let analysis = analyze(&w.func);
        let counts = count_classes(&analysis);
        assert!(
            counts.linear >= w.expected.linear,
            "seed {seed}: {counts:?}"
        );
        assert!(counts.wraparound >= w.expected.wraparound, "seed {seed}");
        assert!(counts.periodic >= w.expected.periodic, "seed {seed}");
        assert!(counts.monotonic >= w.expected.monotonic, "seed {seed}");
    }
}

#[test]
fn cfg_and_ssa_interpreters_agree() {
    // Two independent semantics for the same program must agree on all
    // observable state — a strong check on SSA construction.
    for seed in 0..6u64 {
        let w = generate(&WorkloadSpec {
            loops: 2,
            trip: 9,
            geometric: 0, // avoid i64 overflow in long products
            seed,
            ..WorkloadSpec::default()
        });
        let cfg_trace = Interpreter::new().run(&w.func, &[5]).expect("CFG runs");
        let ssa = SsaFunction::build(&w.func);
        let ssa_trace = SsaInterpreter::new().run(&ssa, &[5]).expect("SSA runs");
        assert_eq!(
            cfg_trace.arrays, ssa_trace.arrays,
            "array state diverged for seed {seed}\n{}",
            w.source
        );
    }
}

#[test]
fn linear_only_config_is_a_strict_subset() {
    let w = generate(&WorkloadSpec {
        loops: 2,
        ..WorkloadSpec::default()
    });
    let full = count_classes(&analyze(&w.func));
    let linear = count_classes(&analyze_with(&w.func, AnalysisConfig::linear_only()));
    // Linear-only classifies no extended classes...
    assert_eq!(linear.polynomial, 0);
    assert_eq!(linear.geometric, 0);
    assert_eq!(linear.periodic, 0);
    assert_eq!(linear.monotonic, 0);
    assert_eq!(linear.wraparound, 0);
    // ...but the same linear variables.
    assert_eq!(linear.linear, full.linear);
    // And the full config turns those unknowns into classifications.
    assert!(full.unknown < linear.unknown);
}

#[test]
fn unified_classifier_covers_more_than_classical() {
    let w = generate(&WorkloadSpec {
        loops: 3,
        ..WorkloadSpec::default()
    });
    let unified = count_classes(&analyze(&w.func));
    let classical = biv::classic::detect(&w.func);
    let unified_total = unified.linear
        + unified.polynomial
        + unified.geometric
        + unified.wraparound
        + unified.periodic
        + unified.monotonic;
    // SSA values outnumber source variables, so compare against the
    // planted ground truth instead: the classical detector misses the
    // polynomial, geometric, periodic, and monotonic plants entirely
    // (its wraparound matcher does fire).
    let classical_kinds: Vec<_> = classical
        .loops
        .iter()
        .flat_map(|l| l.ivs.iter().map(|iv| &iv.kind))
        .collect();
    assert!(classical_kinds
        .iter()
        .all(|k| !matches!(k, biv::classic::IvKind::FlipFlop { .. })));
    assert!(unified.polynomial > 0 && unified.periodic > 0 && unified.monotonic > 0);
    assert!(unified_total > classical.total());
}

#[test]
fn dependence_pipeline_runs_on_workloads() {
    for seed in 0..4u64 {
        let w = generate(&WorkloadSpec {
            loops: 2,
            seed,
            ..WorkloadSpec::default()
        });
        let analysis = analyze(&w.func);
        let tester = DependenceTester::new(&analysis);
        let deps = tester.all_dependences();
        // The ARR array is written through many different subscripts;
        // some pairs must survive, and none may panic.
        assert!(!deps.is_empty());
    }
}

#[test]
fn multi_function_programs_analyze_independently() {
    let program = parse_program(
        r#"
        func first(n) { L1: for i = 1 to n { A[i] = i } }
        func second(m) { L2: for j = 1 to m { B[j] = j * 2 } }
        "#,
    )
    .unwrap();
    assert_eq!(program.functions.len(), 2);
    for func in &program.functions {
        let analysis = analyze(func);
        assert_eq!(analysis.loops().count(), 1);
    }
}

#[test]
fn analysis_is_deterministic() {
    let w = generate(&WorkloadSpec {
        loops: 2,
        seed: 99,
        ..WorkloadSpec::default()
    });
    let a = count_classes(&analyze(&w.func));
    let b = count_classes(&analyze(&w.func));
    assert_eq!(a, b);
}

#[test]
fn deeply_nested_loops_classify() {
    let analysis = biv::core_analysis::analyze_source(
        r#"
        func deep(n) {
            s = 0
            L1: for i = 1 to 4 {
                L2: for j = 1 to 4 {
                    L3: for k = 1 to 4 {
                        s = s + 1
                        A[s] = i + j + k
                    }
                }
            }
        }
        "#,
    )
    .unwrap();
    assert_eq!(analysis.loops().count(), 3);
    // s is linear in the innermost loop and, via exit values, linear in
    // every enclosing loop with steps 1, 4, 16.
    let l1 = analysis.loop_by_label("L1").unwrap();
    let info = analysis.info(l1);
    let s_var = analysis.ssa().func().var_by_name("s").unwrap();
    let step_64 = info.classes.iter().any(|(v, c)| {
        analysis.ssa().values[v].var == Some(s_var)
            && matches!(c, biv::core_analysis::Class::Induction(cf)
                if cf.is_linear()
                && cf.coeffs[1].constant_value()
                    == Some(biv::algebra::Rational::from_integer(16)))
    });
    assert!(step_64, "s has step 16 in the outermost loop");
}
