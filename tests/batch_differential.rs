//! Parallel-vs-serial differential suite for the batch driver.
//!
//! The batch subsystem promises that scheduling never leaks into its
//! output: `analyze_batch` with any worker count produces byte-identical
//! per-function summaries and byte-identical statistics. These tests pin
//! that promise for every program in a hand-written test corpus and for
//! randomized `biv-workload` corpora.

use biv::core_analysis::{analyze_batch, BatchOptions, BatchReport};
use biv::ir::parser::parse_program;
use biv::ir::Function;
use biv::workload::{generate_corpus, CorpusSpec};

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

/// Hand-written programs spanning the paper's figures and the trickier
/// classification scenarios from the corpus tests.
const TEST_CORPUS: &[&str] = &[
    // Figure 1: coupled pair j/i with symbolic step c + k.
    r#"
    func fig1(n, c, k) {
        j = n
        L7: loop {
            i = j + c
            j = i + k
            A[j] = A[i] + 1
            if j > 1000 { break }
        }
    }
    "#,
    // Figure 3: polynomial induction (quadratic j).
    "func fig3(n) { j = 1 L14: for i = 1 to n { j = j + i A[j] = i } }",
    // Wrap-around variable from the paper's Figure 5 shape.
    r#"
    func wrap(n) {
        m = 100
        L1: for i = 1 to n {
            A[m] = i
            m = i
        }
    }
    "#,
    // Periodic flip-flop.
    r#"
    func flip(n) {
        p = 0
        q = 1
        L1: for i = 1 to n {
            t = p
            p = q
            q = t
            A[p] = i
        }
    }
    "#,
    // Geometric plant.
    "func geo(n) { g = 1 L1: for i = 1 to n { g = g * 2 A[g] = i } }",
    // Two independent families plus a coupled difference.
    r#"
    func families(n) {
        x = 0
        y = 7
        L1: for i = 1 to n {
            x = x + 2
            y = y + 2
            d = y - x
            A[d] = i
        }
    }
    "#,
    // Nested loops with an outer-dependent inner bound.
    r#"
    func nest(n) {
        s = 0
        L1: for i = 1 to n {
            L2: for j = 1 to i {
                s = s + 1
                A[s] = j
            }
        }
    }
    "#,
    // Monotonic (conditionally bumped) variable.
    r#"
    func mono(n) {
        m = 0
        L1: for i = 1 to n {
            if A[i] > 0 { m = m + 1 }
            B[m] = i
        }
    }
    "#,
];

fn parse_corpus() -> Vec<Function> {
    let mut funcs = Vec::new();
    for source in TEST_CORPUS {
        let program = parse_program(source).expect("test corpus parses");
        funcs.extend(program.functions);
    }
    funcs
}

/// Renders everything observable about a report: every per-function
/// summary (name, hash, cached flag, loops, classes) plus the stats line.
fn render_report(report: &BatchReport) -> String {
    let mut out = String::new();
    for f in &report.functions {
        out.push_str(&f.render());
        out.push_str(&format!("cached: {}\n", f.cached));
    }
    out.push_str(&report.stats.render());
    out.push('\n');
    out
}

fn run(funcs: &[Function], jobs: usize) -> String {
    let opts = BatchOptions {
        jobs,
        ..BatchOptions::default()
    };
    render_report(&analyze_batch(funcs, &opts))
}

/// Asserts that all job counts agree on `funcs`, returning the (shared)
/// rendering for further checks.
fn assert_jobs_agree(funcs: &[Function], label: &str) -> String {
    let baseline = run(funcs, JOB_COUNTS[0]);
    for &jobs in &JOB_COUNTS[1..] {
        let got = run(funcs, jobs);
        assert_eq!(
            baseline, got,
            "{label}: batch(jobs={jobs}) diverged from jobs={}",
            JOB_COUNTS[0]
        );
    }
    baseline
}

#[test]
fn test_corpus_is_job_count_invariant() {
    let funcs = parse_corpus();
    let rendered = assert_jobs_agree(&funcs, "hand-written corpus");
    // Sanity: the output actually contains every function.
    for f in &funcs {
        assert!(
            rendered.contains(&format!("func {}", f.name())),
            "missing summary for {}",
            f.name()
        );
    }
}

#[test]
fn each_test_program_alone_is_job_count_invariant() {
    // Degenerate batches (single function, fewer functions than
    // workers) take the serial path for some job counts and the
    // sharded path for others; they must still agree.
    for source in TEST_CORPUS {
        let program = parse_program(source).expect("test corpus parses");
        assert_jobs_agree(&program.functions, source);
    }
}

#[test]
fn randomized_corpora_are_job_count_invariant() {
    let specs = [
        CorpusSpec {
            functions: 24,
            duplicate_every: 0,
            loops: 1,
            trip: 50,
            seed: 1,
        },
        CorpusSpec {
            functions: 24,
            duplicate_every: 3,
            loops: 2,
            trip: 100,
            seed: 0xDEAD_BEEF,
        },
        CorpusSpec {
            functions: 7,
            duplicate_every: 2,
            loops: 1,
            trip: 10,
            seed: 7,
        },
    ];
    for spec in &specs {
        let corpus = generate_corpus(spec);
        assert_jobs_agree(&corpus.funcs, &format!("corpus seed {}", spec.seed));
    }
}

#[test]
fn randomized_seeds_sweep() {
    // A wider sweep of seeds with a smaller corpus each: scheduling
    // nondeterminism, if any, shows up as a flaky failure here.
    for seed in 0..8u64 {
        let corpus = generate_corpus(&CorpusSpec {
            functions: 9,
            duplicate_every: 4,
            loops: 1,
            trip: 25,
            seed,
        });
        assert_jobs_agree(&corpus.funcs, &format!("sweep seed {seed}"));
    }
}

#[test]
fn oversubscribed_jobs_matches_serial() {
    // More workers than functions: workers that never receive an item
    // must not perturb the result.
    let corpus = generate_corpus(&CorpusSpec {
        functions: 3,
        duplicate_every: 0,
        loops: 1,
        trip: 20,
        seed: 99,
    });
    let serial = run(&corpus.funcs, 1);
    let oversub = run(&corpus.funcs, 32);
    assert_eq!(serial, oversub);
}

#[test]
fn empty_batch_is_job_count_invariant() {
    assert_jobs_agree(&[], "empty batch");
}
