//! Chaos suite: a live in-process server under the deterministic
//! `Chaos` fault profile (net EINTR/short ops, worker deaths, injected
//! job panics, queue-full storms, dropped cache commits) must uphold
//! three invariants at a fixed seed:
//!
//! 1. every accepted request is answered (success or structured error —
//!    never dropped, never hung);
//! 2. the cache books stay balanced (`hits + misses == functions`);
//! 3. once a client's retries succeed, the bytes are identical to an
//!    uninjected run.
//!
//! Gated on the `fault-injection` feature: without it these hooks do
//! not exist. The fault plan is process-global, so the two tests are
//! serialized on one mutex.

#![cfg(feature = "fault-injection")]

use std::sync::atomic::AtomicBool;
use std::sync::Mutex;
use std::time::Duration;

use biv::server::{Client, Endpoint, Json, Request, Response, Server, ServerConfig};

static GATE: Mutex<()> = Mutex::new(());

const SOURCES: [(&str, &str); 3] = [
    (
        "mem/quad.biv",
        "func f(n) { j = 1 L14: for i = 1 to n { j = j + i A[j] = i } }\n",
    ),
    (
        "mem/fig1.biv",
        "func fig1(n, c, k) { j = n L7: loop { i = j + c j = i + k A[j] = A[i] + 1 if j > 1000 { break } } }\n",
    ),
    (
        "mem/pair.biv",
        "func g(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }\nfunc h(m) { s = 0 L2: for t = 1 to m { s = s + 2 A[s] = t } }\n",
    ),
];

fn files() -> Vec<biv::server::AnalyzeFile> {
    SOURCES
        .iter()
        .map(|(path, source)| biv::server::AnalyzeFile {
            path: (*path).into(),
            source: (*source).into(),
        })
        .collect()
}

fn spawn_server(workers: usize) -> (String, std::thread::JoinHandle<()>) {
    let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
    config.workers = workers;
    let server = Server::bind(config).expect("bind 127.0.0.1:0");
    let endpoint = server.bound_endpoint();
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let handle = std::thread::spawn(move || {
        server.run(flag).expect("server run");
    });
    (endpoint, handle)
}

/// Submits one analyze request, riding out injected busy storms and
/// internal errors with bounded retries; returns the successful output.
fn analyze_with_retries(client: &mut Client, attempt_cap: usize) -> String {
    for _ in 0..attempt_cap {
        let response = client
            .request(&Request::Analyze {
                files: files(),
                cache_cap: None,
            })
            .expect("transport stays usable under injection");
        match response {
            Response::Analyze { output, errors, .. } => {
                assert!(errors.is_empty(), "unexpected per-file errors: {errors:?}");
                return output;
            }
            Response::Busy { retry_after_ms } => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(20)));
            }
            Response::Error { kind, message } => {
                assert!(
                    kind == "internal" || kind == "timeout",
                    "unexpected error kind {kind}: {message}"
                );
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    panic!("no success within {attempt_cap} attempts");
}

fn stat(stats: &Json, path: &[&str]) -> i64 {
    path.iter()
        .try_fold(stats, |node, key| node.get(key))
        .and_then(|v| v.as_i64())
        .unwrap_or_else(|| panic!("stats missing {path:?} in {}", stats.to_text()))
}

#[test]
fn chaos_profile_upholds_the_serving_invariants() {
    let _gate = GATE.lock().unwrap();
    biv_faults::uninstall();
    let (endpoint, handle) = spawn_server(2);
    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");

    // The reference bytes come from the same server before any fault
    // is armed.
    let reference = analyze_with_retries(&mut client, 1);

    biv_faults::install(42, biv_faults::Profile::Chaos);
    for round in 0..30 {
        let output = analyze_with_retries(&mut client, 100);
        assert_eq!(
            output, reference,
            "round {round}: retries must converge to the uninjected bytes"
        );
    }
    let fired = biv_faults::total_fired();
    biv_faults::uninstall();
    assert!(fired > 0, "the chaos plan never fired — the suite is inert");

    // Recovery: with the plan gone the very next request is clean.
    assert_eq!(analyze_with_retries(&mut client, 1), reference);

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("expected stats");
    };
    // Invariant 1: every accepted request was answered — as a report or
    // as a structured internal error — and none timed out or leaked.
    let accepted = stat(&stats, &["requests", "analyze_accepted"]);
    let ok = stat(&stats, &["requests", "analyze_ok"]);
    let panics = stat(&stats, &["requests", "worker_panics"]);
    assert_eq!(
        accepted,
        ok + panics,
        "accepted requests must all be answered: {accepted} accepted, {ok} ok, {panics} panicked"
    );
    assert_eq!(stat(&stats, &["requests", "timeouts"]), 0);
    assert_eq!(stat(&stats, &["requests", "late_results"]), 0);
    // Invariant 2: the cache books balance exactly under injection
    // (dropped commits cost retention, never accounting).
    assert_eq!(
        stat(&stats, &["cache", "hits"]) + stat(&stats, &["cache", "misses"]),
        stat(&stats, &["requests", "functions"])
    );

    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShutdownAck
    );
    handle.join().expect("clean drain under chaos");
}

#[test]
fn killed_workers_are_respawned_and_their_requests_answered() {
    let _gate = GATE.lock().unwrap();
    biv_faults::uninstall();
    let (endpoint, handle) = spawn_server(2);
    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
    let reference = analyze_with_retries(&mut client, 1);

    // The Worker profile fires `worker.job.panic` on 1/4 of jobs and
    // kills the whole worker thread on ~1/10 — the fixed seed makes the
    // firing schedule reproducible, so the loop below always terminates
    // at the same round.
    biv_faults::install(7, biv_faults::Profile::Worker);
    let mut seen = (0i64, 0i64);
    for _ in 0..200 {
        let output = analyze_with_retries(&mut client, 100);
        assert_eq!(output, reference);
        let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
            panic!("expected stats");
        };
        seen = (
            stat(&stats, &["requests", "worker_panics"]),
            stat(&stats, &["requests", "workers_respawned"]),
        );
        if seen.0 >= 1 && seen.1 >= 1 {
            break;
        }
    }
    biv_faults::uninstall();
    assert!(
        seen.0 >= 1 && seen.1 >= 1,
        "expected at least one worker panic and one respawn, saw {seen:?}"
    );

    // The pool is whole again: a clean request succeeds first try.
    assert_eq!(analyze_with_retries(&mut client, 1), reference);
    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShutdownAck
    );
    handle.join().expect("clean drain after worker deaths");
}
