//! Chaos suite: a live in-process server under the deterministic
//! `Chaos` fault profile (net EINTR/short ops, worker deaths, injected
//! job panics, queue-full storms, dropped cache commits) must uphold
//! three invariants at a fixed seed:
//!
//! 1. every accepted request is answered (success or structured error —
//!    never dropped, never hung);
//! 2. the cache books stay balanced (`hits + misses == functions`);
//! 3. once a client's retries succeed, the bytes are identical to an
//!    uninjected run.
//!
//! Gated on the `fault-injection` feature: without it these hooks do
//! not exist. The fault plan is process-global, so the two tests are
//! serialized on one mutex.

#![cfg(feature = "fault-injection")]

use std::io::BufRead;
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;
use std::time::Duration;

use biv::server::{Client, Endpoint, Json, Request, Response, Server, ServerConfig};

static GATE: Mutex<()> = Mutex::new(());

const SOURCES: [(&str, &str); 3] = [
    (
        "mem/quad.biv",
        "func f(n) { j = 1 L14: for i = 1 to n { j = j + i A[j] = i } }\n",
    ),
    (
        "mem/fig1.biv",
        "func fig1(n, c, k) { j = n L7: loop { i = j + c j = i + k A[j] = A[i] + 1 if j > 1000 { break } } }\n",
    ),
    (
        "mem/pair.biv",
        "func g(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }\nfunc h(m) { s = 0 L2: for t = 1 to m { s = s + 2 A[s] = t } }\n",
    ),
];

fn files() -> Vec<biv::server::AnalyzeFile> {
    SOURCES
        .iter()
        .map(|(path, source)| biv::server::AnalyzeFile {
            path: (*path).into(),
            source: (*source).into(),
        })
        .collect()
}

fn spawn_server(workers: usize) -> (String, std::thread::JoinHandle<()>) {
    let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".into()));
    config.workers = workers;
    let server = Server::bind(config).expect("bind 127.0.0.1:0");
    let endpoint = server.bound_endpoint();
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let handle = std::thread::spawn(move || {
        server.run(flag).expect("server run");
    });
    (endpoint, handle)
}

/// Submits one analyze request, riding out injected busy storms and
/// internal errors with bounded retries; returns the successful output.
fn analyze_with_retries(client: &mut Client, attempt_cap: usize) -> String {
    for _ in 0..attempt_cap {
        let response = client
            .request(&Request::Analyze {
                files: files(),
                cache_cap: None,
            })
            .expect("transport stays usable under injection");
        match response {
            Response::Analyze { output, errors, .. } => {
                assert!(errors.is_empty(), "unexpected per-file errors: {errors:?}");
                return output;
            }
            Response::Busy { retry_after_ms } => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(20)));
            }
            Response::Error { kind, message } => {
                assert!(
                    kind == "internal" || kind == "timeout",
                    "unexpected error kind {kind}: {message}"
                );
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    panic!("no success within {attempt_cap} attempts");
}

fn stat(stats: &Json, path: &[&str]) -> i64 {
    path.iter()
        .try_fold(stats, |node, key| node.get(key))
        .and_then(|v| v.as_i64())
        .unwrap_or_else(|| panic!("stats missing {path:?} in {}", stats.to_text()))
}

#[test]
fn chaos_profile_upholds_the_serving_invariants() {
    let _gate = GATE.lock().unwrap();
    biv_faults::uninstall();
    let (endpoint, handle) = spawn_server(2);
    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");

    // The reference bytes come from the same server before any fault
    // is armed.
    let reference = analyze_with_retries(&mut client, 1);

    biv_faults::install(42, biv_faults::Profile::Chaos);
    for round in 0..30 {
        let output = analyze_with_retries(&mut client, 100);
        assert_eq!(
            output, reference,
            "round {round}: retries must converge to the uninjected bytes"
        );
    }
    let fired = biv_faults::total_fired();
    biv_faults::uninstall();
    assert!(fired > 0, "the chaos plan never fired — the suite is inert");

    // Recovery: with the plan gone the very next request is clean.
    assert_eq!(analyze_with_retries(&mut client, 1), reference);

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("expected stats");
    };
    // Invariant 1: every accepted request was answered — as a report or
    // as a structured internal error — and none timed out or leaked.
    let accepted = stat(&stats, &["requests", "analyze_accepted"]);
    let ok = stat(&stats, &["requests", "analyze_ok"]);
    let panics = stat(&stats, &["requests", "worker_panics"]);
    assert_eq!(
        accepted,
        ok + panics,
        "accepted requests must all be answered: {accepted} accepted, {ok} ok, {panics} panicked"
    );
    assert_eq!(stat(&stats, &["requests", "timeouts"]), 0);
    assert_eq!(stat(&stats, &["requests", "late_results"]), 0);
    // Invariant 2: the cache books balance exactly under injection
    // (dropped commits cost retention, never accounting).
    assert_eq!(
        stat(&stats, &["cache", "hits"]) + stat(&stats, &["cache", "misses"]),
        stat(&stats, &["requests", "functions"])
    );

    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShutdownAck
    );
    handle.join().expect("clean drain under chaos");
}

/// One real `bivd` process, a shard of a 3-shard fleet, armed with the
/// `fleet` fault profile (epoll EINTR + spurious wakes on its event
/// loop). Returns the child and its resolved endpoint.
fn spawn_shard_process(shard: u32) -> (std::process::Child, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_bivd"))
        .args([
            "--tcp",
            "127.0.0.1:0",
            "--fleet",
            &format!("shard={shard}/3"),
            "--workers",
            "1",
            "--faults",
            "seed=42,profile=fleet",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn bivd");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let banner = lines
        .next()
        .expect("bivd prints a listening line")
        .expect("readable stderr");
    let endpoint = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("unparsable bivd banner: {banner}"))
        .to_string();
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, endpoint)
}

/// Distinct sources so the batch spreads across the whole ring.
fn fleet_corpus(n: usize) -> Vec<biv::server::AnalyzeFile> {
    (0..n)
        .map(|i| biv::server::AnalyzeFile {
            path: format!("mem/fleet{i}.biv"),
            source: format!(
                "func w{i}(n) {{ j = {i} L1: for i = 1 to n {{ j = j + i A[j] = i + {i} }} }}\n"
            ),
        })
        .collect()
}

/// What a local `bivc` batch run prints for `files` — the bytes the
/// fleet must reproduce regardless of faults and shard deaths.
fn local_reference(files: &[biv::server::AnalyzeFile]) -> String {
    use biv::core_analysis::{analyze_batch, cold_batch_stats, render_grouped, BatchOptions};
    let mut funcs = Vec::new();
    let mut ranges = Vec::new();
    for f in files {
        let program = biv::ir::parser::parse_program(&f.source).expect("corpus parses");
        ranges.push((f.path.clone(), program.functions.len()));
        funcs.extend(program.functions);
    }
    let opts = BatchOptions::default();
    let report = analyze_batch(&funcs, &opts);
    let hashes: Vec<u64> = report.functions.iter().map(|f| f.hash).collect();
    let cold = cold_batch_stats(&hashes, opts.cache_capacity);
    render_grouped(&ranges, &report.functions, &cold)
}

#[test]
fn sigkilled_shard_mid_batch_reroutes_without_changing_bytes() {
    let _gate = GATE.lock().unwrap();
    biv_faults::uninstall();

    let shards: Vec<(std::process::Child, String)> = (0..3).map(spawn_shard_process).collect();
    let endpoints: Vec<String> = shards.iter().map(|(_, e)| e.clone()).collect();
    let files = fleet_corpus(24);
    let reference = local_reference(&files);

    // The router side also runs under the fleet profile, so dials
    // occasionally fail as if shards were dead — every such event must
    // be absorbed by redirect-to-successor without touching the bytes.
    biv_faults::install(42, biv_faults::Profile::Fleet);
    let mut router =
        biv::fleet::Router::new(biv::fleet::FleetConfig::new(endpoints.clone())).expect("router");

    // Batch 1: whole fleet up (modulo injected dial failures).
    let report = router.analyze(files.clone()).expect("fleet batch 1");
    assert_eq!(report.output, reference, "fleet must match local bytes");
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    // SIGKILL shard 1 while a larger batch is in flight: whichever
    // round the death lands in, every file must still be answered —
    // served by a successor after re-routing — and the reassembled
    // bytes must not change.
    let big = fleet_corpus(48);
    let big_reference = local_reference(&big);
    let victim = shards[1].0.id();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        // SAFETY-free process kill via the std API is unavailable for a
        // pid we only have numerically on another thread, so shell out.
        let _ = std::process::Command::new("kill")
            .args(["-9", &victim.to_string()])
            .status();
    });
    let report = router.analyze(big.clone()).expect("fleet batch 2");
    killer.join().unwrap();
    assert_eq!(
        report.output, big_reference,
        "mid-batch shard death must not change the reassembled bytes"
    );
    assert!(
        report.errors.is_empty(),
        "every file answered or re-routed, none failed: {:?}",
        report.errors
    );

    // Batch 3: the kill has certainly landed by now; the router must
    // observe the dead shard and still produce identical bytes.
    let report = router.analyze(files.clone()).expect("fleet batch 3");
    assert_eq!(report.output, reference);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        report.dead_shards.contains(&1),
        "the SIGKILLed shard must be observed dead, saw {:?}",
        report.dead_shards
    );
    biv_faults::uninstall();

    // Drain the survivors; reap the victim.
    for (i, (mut child, endpoint)) in shards.into_iter().enumerate() {
        if i == 1 {
            let _ = child.wait();
            continue;
        }
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
        assert_eq!(
            client.request(&Request::Shutdown).expect("shutdown"),
            Response::ShutdownAck
        );
        let status = child.wait().expect("shard exits");
        assert!(status.success(), "shard {i} drained cleanly");
    }
}

/// One real `bivd` process running the full cluster agent: shard K of
/// `count`, R-way replication, fast heartbeats, a persistent store, and
/// the `fleet` fault profile (lost heartbeats, partitions, replica
/// lag). Returns the child and its resolved endpoint.
fn spawn_member_shard_process(
    shard: u32,
    count: u32,
    peers: &str,
    cache_dir: &std::path::Path,
) -> (std::process::Child, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_bivd"))
        .args([
            "--tcp",
            "127.0.0.1:0",
            "--fleet",
            &format!("shard={shard}/{count}"),
            "--workers",
            "1",
            "--peers",
            peers,
            "--replicas",
            "2",
            "--heartbeat-ms",
            "50",
            "--cache-dir",
            &cache_dir.to_string_lossy(),
            "--faults",
            "seed=42,profile=fleet",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn member bivd");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = std::io::BufRead::lines(std::io::BufReader::new(stderr));
    let banner = lines
        .next()
        .expect("bivd prints a listening line")
        .expect("readable stderr");
    let endpoint = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("unparsable bivd banner: {banner}"))
        .to_string();
    std::thread::spawn(move || for _ in lines {});
    (child, endpoint)
}

/// One shard's membership view, if it answers within half a second.
fn fetch_view(endpoint: &str) -> Option<biv::fleet::View> {
    let mut client =
        Client::connect_timeout(&Endpoint::parse(endpoint), Duration::from_millis(500)).ok()?;
    match client.request(&Request::Members).ok()? {
        Response::Members { view } | Response::Gossip { view } => {
            biv::fleet::View::from_json(&view).ok()
        }
        _ => None,
    }
}

/// Polls one seed until its view shows `want` alive members (gossip
/// convergence after joins/rejoins), panicking past the deadline.
fn await_alive(seed: &str, want: usize, deadline: Duration) -> biv::fleet::View {
    let until = std::time::Instant::now() + deadline;
    loop {
        if let Some(view) = fetch_view(seed) {
            let alive = view
                .members
                .iter()
                .filter(|m| m.state.as_str() == "alive")
                .count();
            if alive == want {
                return view;
            }
        }
        assert!(
            std::time::Instant::now() < until,
            "membership did not converge to {want} alive member(s) via {seed} within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Polls until the R-way write-through of the last batch has fully
/// landed: every shard's queue is empty **and** at least
/// `expect_entries` summaries were actually received by replicas
/// fleet-wide. (`replication_lag == 0` alone is not enough — a batch
/// popped from the queue can still be in flight on the sender thread.)
fn await_replication_settled(endpoints: &[String], expect_entries: i64, deadline: Duration) {
    let until = std::time::Instant::now() + deadline;
    loop {
        let mut lag = 0i64;
        let mut received = 0i64;
        let mut dropped = 0i64;
        let mut all_answered = true;
        for endpoint in endpoints {
            let Some(stats) =
                Client::connect_timeout(&Endpoint::parse(endpoint), Duration::from_millis(500))
                    .ok()
                    .and_then(|mut c| c.request(&Request::Stats).ok())
                    .and_then(|r| match r {
                        Response::Stats(stats) => Some(stats),
                        _ => None,
                    })
            else {
                all_answered = false;
                break;
            };
            lag += stat(&stats, &["replication", "replication_lag"]);
            received += stat(&stats, &["requests", "replica_received"]);
            dropped += stat(&stats, &["replication", "dropped"]);
        }
        if all_answered && lag == 0 && received >= expect_entries {
            assert_eq!(
                dropped, 0,
                "no replication batch may be dropped in this test"
            );
            return;
        }
        assert!(
            std::time::Instant::now() < until,
            "replication did not settle within {deadline:?} (lag {lag}, received {received} of {expect_entries})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// R=2 warm failover: three member shards gossip into one ring, a batch
/// replicates every committed summary to its ring successor, the
/// primary of part of the keyspace is SIGKILLed — and the re-run batch
/// is served **entirely warm** (zero recomputes) from the replicas,
/// byte-identical, with zero per-file errors.
#[test]
fn sigkilled_primary_is_served_warm_from_its_replica() {
    let _gate = GATE.lock().unwrap();
    biv_faults::uninstall();

    let tmp = std::env::temp_dir().join(format!("biv_warm_failover_{}", std::process::id()));
    let dirs: Vec<std::path::PathBuf> = (0..3).map(|i| tmp.join(format!("shard{i}"))).collect();
    for dir in &dirs {
        std::fs::create_dir_all(dir).expect("mk cache dir");
    }

    // Shard 0 boots seedless; 1 and 2 bootstrap from it.
    let (child0, ep0) = spawn_member_shard_process(0, 3, "none", &dirs[0]);
    let (child1, ep1) = spawn_member_shard_process(1, 3, &ep0, &dirs[1]);
    let (child2, ep2) = spawn_member_shard_process(2, 3, &ep0, &dirs[2]);
    let mut shards = vec![(child0, ep0.clone()), (child1, ep1), (child2, ep2)];
    await_alive(&ep0, 3, Duration::from_secs(10));

    // The router bootstraps the whole ring from the one seed.
    let files = fleet_corpus(24);
    let reference = local_reference(&files);
    let mut router =
        biv::fleet::Router::new(biv::fleet::FleetConfig::new(vec![ep0.clone()])).expect("router");
    let report = router.analyze(files.clone()).expect("fleet batch 1");
    assert_eq!(report.output, reference, "fleet must match local bytes");
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    // Every committed summary must land on its replica before the kill
    // — 24 single-function files, R=2, so exactly one replica copy each.
    let endpoints: Vec<String> = shards.iter().map(|(_, e)| e.clone()).collect();
    await_replication_settled(&endpoints, files.len() as i64, Duration::from_secs(10));

    // SIGKILL shard 1 — no drain, no snapshot flush, no goodbye.
    let victim = shards[1].0.id();
    let _ = std::process::Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status();
    let _ = shards[1].0.wait();

    // Re-run the same batch through a fresh router (bootstrapped from
    // the surviving seed): shard 1's keys fail over to their replicas,
    // which already hold the summaries — nothing is recomputed.
    let mut router =
        biv::fleet::Router::new(biv::fleet::FleetConfig::new(vec![ep0.clone()])).expect("router");
    let report = router.analyze(files.clone()).expect("fleet batch 2");
    assert_eq!(
        report.output, reference,
        "failover to replicas must not change the bytes"
    );
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(
        report.analyzed, 0,
        "the replicas must serve the dead primary's keys warm (saw {} recomputes)",
        report.analyzed
    );

    for (i, (mut child, endpoint)) in shards.into_iter().enumerate() {
        if i == 1 {
            continue; // already reaped
        }
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
        assert_eq!(
            client.request(&Request::Shutdown).expect("shutdown"),
            Response::ShutdownAck
        );
        let status = child.wait().expect("shard exits");
        assert!(status.success(), "shard {i} drained cleanly");
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

/// Rolling restart: each member shard in turn is SIGTERMed and
/// relaunched at a **new port** with the same identity; incarnation
/// bumping reclaims its ring slot, gossip teaches the survivors the new
/// endpoint, and every batch in between is byte-identical with zero
/// per-file errors — no operator action, no router reconfiguration
/// beyond re-probing one live seed.
#[test]
fn rolling_restart_of_every_shard_keeps_the_bytes_identical() {
    let _gate = GATE.lock().unwrap();
    biv_faults::uninstall();

    let tmp = std::env::temp_dir().join(format!("biv_rolling_restart_{}", std::process::id()));
    let dirs: Vec<std::path::PathBuf> = (0..3).map(|i| tmp.join(format!("shard{i}"))).collect();
    for dir in &dirs {
        std::fs::create_dir_all(dir).expect("mk cache dir");
    }

    let (child0, ep0) = spawn_member_shard_process(0, 3, "none", &dirs[0]);
    let (child1, ep1) = spawn_member_shard_process(1, 3, &ep0, &dirs[1]);
    let (child2, ep2) = spawn_member_shard_process(2, 3, &ep0, &dirs[2]);
    let mut shards = vec![(child0, ep0), (child1, ep1), (child2, ep2)];
    await_alive(&shards[0].1, 3, Duration::from_secs(10));

    let files = fleet_corpus(24);
    let reference = local_reference(&files);
    let batch = |seed: &str| -> biv::fleet::FleetReport {
        let mut router =
            biv::fleet::Router::new(biv::fleet::FleetConfig::new(vec![seed.to_string()]))
                .expect("router");
        router.analyze(files.clone()).expect("fleet batch")
    };

    let report = batch(&shards[0].1);
    assert_eq!(report.output, reference);
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    for k in 0..3usize {
        // SIGTERM shard k: it drains, flushes its store, and announces
        // its departure.
        let pid = shards[k].0.id();
        let _ = std::process::Command::new("kill")
            .args(["-15", &pid.to_string()])
            .status();
        let status = shards[k].0.wait().expect("shard exits");
        assert!(status.success(), "shard {k} drained cleanly on SIGTERM");

        // Relaunch it with the same identity and store but a fresh
        // port, seeded from a surviving peer.
        let seed = shards[(k + 1) % 3].1.clone();
        let (child, endpoint) = spawn_member_shard_process(k as u32, 3, &seed, &dirs[k]);
        shards[k] = (child, endpoint);

        // The ring heals: all three alive again, the rejoined shard at
        // its new endpoint.
        let view = await_alive(&seed, 3, Duration::from_secs(10));
        let member = view.member(k as u32).expect("rejoined shard in view");
        assert_eq!(
            member.endpoint, shards[k].1,
            "gossip must carry the restarted shard's new endpoint"
        );

        // A batch right after each restart: identical bytes, no errors,
        // routed off one live seed with no operator involvement.
        let report = batch(&seed);
        assert_eq!(
            report.output, reference,
            "restart of shard {k} must not change the bytes"
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
    }

    for (i, (mut child, endpoint)) in shards.into_iter().enumerate() {
        let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
        assert_eq!(
            client.request(&Request::Shutdown).expect("shutdown"),
            Response::ShutdownAck
        );
        let status = child.wait().expect("shard exits");
        assert!(status.success(), "shard {i} drained cleanly");
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn killed_workers_are_respawned_and_their_requests_answered() {
    let _gate = GATE.lock().unwrap();
    biv_faults::uninstall();
    let (endpoint, handle) = spawn_server(2);
    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect");
    let reference = analyze_with_retries(&mut client, 1);

    // The Worker profile fires `worker.job.panic` on 1/4 of jobs and
    // kills the whole worker thread on ~1/10 — the fixed seed makes the
    // firing schedule reproducible, so the loop below always terminates
    // at the same round.
    biv_faults::install(7, biv_faults::Profile::Worker);
    let mut seen = (0i64, 0i64);
    for _ in 0..200 {
        let output = analyze_with_retries(&mut client, 100);
        assert_eq!(output, reference);
        let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
            panic!("expected stats");
        };
        seen = (
            stat(&stats, &["requests", "worker_panics"]),
            stat(&stats, &["requests", "workers_respawned"]),
        );
        if seen.0 >= 1 && seen.1 >= 1 {
            break;
        }
    }
    biv_faults::uninstall();
    assert!(
        seen.0 >= 1 && seen.1 >= 1,
        "expected at least one worker panic and one respawn, saw {seen:?}"
    );

    // The pool is whole again: a clean request succeeds first try.
    assert_eq!(analyze_with_retries(&mut client, 1), reference);
    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShutdownAck
    );
    handle.join().expect("clean drain after worker deaths");
}
