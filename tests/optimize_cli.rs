//! Golden-file tests for `bivc --optimize`.
//!
//! The optimize CLI's stdout is a stable format: with one input file,
//! per-function transform reports, validation verdicts, and the
//! transformed IR; with a directory, one report line per function plus
//! aggregate totals. Both are pinned byte-for-byte against fixtures
//! under `tests/golden/`, and `--jobs` must never change them.
//!
//! To regenerate the goldens after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test optimize_cli
//! ```

use std::path::Path;
use std::process::{Command, Output};

fn bivc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bivc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .env_remove("BIV_JOBS")
        .output()
        .expect("bivc runs")
}

fn stdout_of(args: &[&str]) -> String {
    let out = bivc(args);
    assert!(
        out.status.success(),
        "bivc {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("bivc output is UTF-8")
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden `{}`: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden `{name}` mismatch — if the change is intentional, rerun with UPDATE_GOLDEN=1"
    );
}

#[test]
fn optimize_single_file_prints_transformed_ir() {
    let actual = stdout_of(&["--optimize", "tests/optimize_corpus/strength.biv"]);
    check_golden("optimize_strength.txt", &actual);
    // The strength-reduced loop must carry the maintained temporary and
    // the dead index must be gone from its loop.
    assert!(
        actual.contains("%sr_"),
        "no strength-reduction temp:\n{actual}"
    );
    assert!(actual.contains("%lftr_"), "no replaced bound:\n{actual}");
}

#[test]
fn optimize_directory_reports_per_function() {
    let actual = stdout_of(&["--optimize", "tests/optimize_corpus"]);
    check_golden("optimize_directory.txt", &actual);
    // The corpus exercises at least four distinct transform kinds.
    let totals = actual
        .lines()
        .find(|l| l.starts_with("transform totals:"))
        .expect("totals line");
    let applied = ["sr=", "peel=", "unroll=", "deadiv=", "interchange="]
        .iter()
        .filter(|k| {
            totals
                .split_whitespace()
                .any(|tok| tok.starts_with(**k) && !tok.ends_with("=0"))
        })
        .count();
    assert!(applied >= 4, "expected >= 4 transform kinds in: {totals}");
    assert!(totals.contains("failed=0"), "validation failed: {totals}");
}

#[test]
fn optimize_output_is_job_count_invariant() {
    let base = stdout_of(&["--optimize", "--jobs", "1", "tests/optimize_corpus"]);
    for jobs in ["2", "8"] {
        let got = stdout_of(&["--optimize", "--jobs", jobs, "tests/optimize_corpus"]);
        assert_eq!(base, got, "--jobs {jobs} changed the optimize output");
    }
}

#[test]
fn optimize_stats_json_reports_transform_counters() {
    let dir = std::env::temp_dir().join(format!("bivc_opt_stats_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let stats = dir.join("stats.json");
    let stats_arg = format!("--stats-json={}", stats.display());
    let _ = stdout_of(&["--optimize", &stats_arg, "tests/optimize_corpus"]);
    let text = std::fs::read_to_string(&stats).expect("stats written");
    for key in [
        "\"transform\"",
        "\"functions\"",
        "\"strength_reduced\"",
        "\"peeled\"",
        "\"unrolled\"",
        "\"dead_ivs\"",
        "\"interchanged\"",
        "\"validated\"",
        "\"failed\"",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    assert!(text.contains("\"failed\":0"), "failures in {text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn optimize_rejects_remote_and_cache_dir() {
    let out = bivc(&["--optimize", "--remote", "tcp:localhost:1", "x.biv"]);
    assert!(!out.status.success());
    let out = bivc(&["--optimize", "--cache-dir", "/tmp/x", "x.biv"]);
    assert!(!out.status.success());
}
