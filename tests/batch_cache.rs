//! Cache-correctness properties for the batch driver's structural cache.
//!
//! The cache key is a structural hash that ignores function and value
//! names: α-renamed (isomorphic) functions must hit the cache and
//! receive equal classifications, any single-instruction mutation must
//! miss, and the hit/miss/eviction counters must always add up.

use std::sync::Arc;

use biv::core_analysis::{
    analyze_batch, analyze_batch_with_cache, structural_hash, BatchOptions, StructuralCache,
};
use biv::ir::parser::parse_program;
use biv::ir::Function;
use biv::workload::{generate_corpus, CorpusSpec};

fn parse_one(source: &str) -> Function {
    let mut program = parse_program(source).expect("test source parses");
    assert_eq!(program.functions.len(), 1);
    program.functions.remove(0)
}

/// α-renames a program source: every identifier that is not a keyword
/// or a label (`L<digits>`) is prefixed, preserving structure exactly.
fn alpha_rename(source: &str) -> String {
    const KEYWORDS: &[&str] = &[
        "func", "loop", "for", "to", "by", "while", "if", "else", "break",
    ];
    let mut out = String::new();
    let mut chars = source.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if c.is_ascii_alphabetic() || c == '_' {
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    end = i + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let ident = &source[start..end];
            let is_label = ident.starts_with('L')
                && ident.len() > 1
                && ident[1..].chars().all(|c| c.is_ascii_digit());
            if KEYWORDS.contains(&ident) || is_label {
                out.push_str(ident);
            } else {
                out.push('q');
                out.push_str(ident);
            }
        } else {
            out.push(c);
            chars.next();
        }
    }
    out
}

const BASE: &str = r#"
func base(n) {
    j = 1
    m = 100
    L1: for i = 1 to n {
        j = j + i
        A[m] = j
        m = i
    }
}
"#;

#[test]
fn alpha_renamed_twin_hits_cache_with_equal_classification() {
    let orig = parse_one(BASE);
    let twin = parse_one(&alpha_rename(BASE));
    assert_eq!(
        structural_hash(&orig),
        structural_hash(&twin),
        "α-renaming must not change the structural hash"
    );

    let report = analyze_batch(&[orig, twin], &BatchOptions::default());
    let (a, b) = (&report.functions[0], &report.functions[1]);
    assert!(!a.cached, "first occurrence is analyzed");
    assert!(b.cached, "structural twin is served from the cache");
    assert!(
        Arc::ptr_eq(&a.summary, &b.summary),
        "twins share one cached summary"
    );
    assert_eq!(report.stats.misses, 1);
    assert_eq!(report.stats.hits, 1);
}

#[test]
fn alpha_renamed_workload_corpora_hit_cache() {
    // Property over randomized corpora: append an α-renamed copy of the
    // whole corpus; the second half must be all cache hits, and every
    // twin's canonical summary must equal the original's.
    for seed in [3u64, 11, 0xFEED] {
        let corpus = generate_corpus(&CorpusSpec {
            functions: 6,
            duplicate_every: 0,
            loops: 1,
            trip: 40,
            seed,
        });
        let renamed = parse_program(&alpha_rename(&corpus.source))
            .expect("renamed corpus parses")
            .functions;
        assert_eq!(renamed.len(), corpus.funcs.len());
        for (orig, twin) in corpus.funcs.iter().zip(&renamed) {
            assert_eq!(
                structural_hash(orig),
                structural_hash(twin),
                "seed {seed}: hash changed under α-renaming of {}",
                orig.name()
            );
        }

        let mut funcs = corpus.funcs;
        let originals = funcs.len();
        funcs.extend(renamed);
        let report = analyze_batch(&funcs, &BatchOptions::default());
        assert_eq!(
            report.stats.misses, originals,
            "each structure analyzed once"
        );
        assert_eq!(report.stats.hits, originals, "every twin is a hit");
        for (orig, twin) in report.functions[..originals]
            .iter()
            .zip(&report.functions[originals..])
        {
            assert!(twin.cached);
            assert_eq!(
                orig.summary.loops, twin.summary.loops,
                "seed {seed}: cached classification differs for {}",
                orig.name
            );
        }
    }
}

#[test]
fn single_instruction_mutations_miss() {
    // Each variant differs from BASE by exactly one instruction-level
    // edit; every one must produce a fresh structural hash.
    let variants: Vec<(&str, String)> = vec![
        ("changed constant", BASE.replace("j = 1", "j = 2")),
        ("changed opcode", BASE.replace("j = j + i", "j = j - i")),
        (
            "changed step source",
            BASE.replace("j = j + i", "j = j + n"),
        ),
        ("changed array store", BASE.replace("A[m] = j", "A[m] = i")),
        (
            "extra instruction",
            BASE.replace("m = i", "m = i\n        k = j"),
        ),
        ("removed instruction", BASE.replace("m = i\n", "")),
        ("changed bound", BASE.replace("1 to n", "2 to n")),
    ];
    let base_hash = structural_hash(&parse_one(BASE));
    let mut hashes = vec![base_hash];
    for (what, source) in &variants {
        let h = structural_hash(&parse_one(source));
        assert_ne!(h, base_hash, "{what}: mutation should change the hash");
        hashes.push(h);
    }
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(
        hashes.len(),
        variants.len() + 1,
        "all mutations are mutually distinct"
    );

    // And the batch driver agrees: nothing is served from the cache.
    let funcs: Vec<Function> = std::iter::once(BASE.to_string())
        .chain(variants.iter().map(|(_, s)| s.to_string()))
        .map(|s| parse_one(&s))
        .collect();
    let report = analyze_batch(&funcs, &BatchOptions::default());
    assert_eq!(report.stats.misses, funcs.len());
    assert_eq!(report.stats.hits, 0);
    assert!(report.functions.iter().all(|f| !f.cached));
}

#[test]
fn stats_counters_add_up() {
    for (seed, duplicate_every) in [(1u64, 0usize), (2, 2), (3, 3), (4, 4)] {
        let corpus = generate_corpus(&CorpusSpec {
            functions: 12,
            duplicate_every,
            loops: 1,
            trip: 30,
            seed,
        });
        let report = analyze_batch(&corpus.funcs, &BatchOptions::default());
        let stats = report.stats;
        assert_eq!(
            stats.hits + stats.misses,
            stats.functions,
            "every function is either a hit or a miss"
        );
        assert_eq!(stats.functions, corpus.funcs.len());
        let distinct: std::collections::HashSet<u64> =
            corpus.funcs.iter().map(structural_hash).collect();
        assert_eq!(
            stats.misses,
            distinct.len(),
            "misses == distinct structures"
        );
        assert_eq!(stats.hits, corpus.duplicates, "hits == known duplicates");
        let cached = report.functions.iter().filter(|f| f.cached).count();
        assert_eq!(cached, stats.hits, "per-function flags match the counters");
    }
}

#[test]
fn cumulative_cache_counters_match_batch_stats() {
    let corpus = generate_corpus(&CorpusSpec {
        functions: 10,
        duplicate_every: 2,
        loops: 1,
        trip: 30,
        seed: 21,
    });
    let opts = BatchOptions::default();
    let mut cache = StructuralCache::new(opts.cache_capacity);

    let first = analyze_batch_with_cache(&corpus.funcs, &opts, &mut cache);
    let second = analyze_batch_with_cache(&corpus.funcs, &opts, &mut cache);

    // A warm cache serves the entire second batch.
    assert_eq!(second.stats.hits, corpus.funcs.len());
    assert_eq!(second.stats.misses, 0);
    // The cache's cumulative counters are the sum over both batches.
    assert_eq!(cache.hits(), (first.stats.hits + second.stats.hits) as u64);
    assert_eq!(
        cache.misses(),
        (first.stats.misses + second.stats.misses) as u64
    );
    assert_eq!(cache.len(), first.stats.misses, "one entry per structure");
    // Warm results are classification-identical to cold results.
    for (a, b) in first.functions.iter().zip(&second.functions) {
        assert_eq!(a.summary.loops, b.summary.loops);
        assert_eq!(a.hash, b.hash);
    }
}

#[test]
fn tiny_cache_evicts_and_counts() {
    let corpus = generate_corpus(&CorpusSpec {
        functions: 8,
        duplicate_every: 0,
        loops: 1,
        trip: 30,
        seed: 77,
    });
    let opts = BatchOptions {
        cache_capacity: 3,
        ..BatchOptions::default()
    };
    let mut cache = StructuralCache::new(opts.cache_capacity);
    let report = analyze_batch_with_cache(&corpus.funcs, &opts, &mut cache);
    assert!(cache.len() <= 3, "capacity is enforced");
    assert_eq!(
        report.stats.evictions,
        report.stats.misses.saturating_sub(3),
        "each insertion beyond capacity evicts exactly one entry"
    );
    assert_eq!(cache.evictions(), report.stats.evictions as u64);
}
