//! Differential testing: every closed form the classifier produces is
//! checked, iteration by iteration, against the values the SSA
//! interpreter actually observes. This is the strongest end-to-end
//! evidence that the classification algorithm is sound.

use std::collections::HashMap;

use biv::algebra::Rational;
use biv::core_analysis::{analyze, Class, Direction, TripCount};
use biv::ir::parser::parse_program;
use biv::ssa::{SsaFunction, SsaInterpreter, SsaTrace, Value};

/// Builds an environment mapping symbol values to the (first) concrete
/// value the trace recorded for them.
fn env_from_trace(trace: &SsaTrace) -> HashMap<Value, i64> {
    let mut env = HashMap::new();
    for &(v, x) in &trace.assignments {
        env.entry(v).or_insert(x);
    }
    env
}

/// Checks every classified value of every loop of `src` against an
/// execution with the given arguments.
fn check_program(src: &str, args: &[i64]) {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    for func in &program.functions {
        let analysis = analyze(func);
        // Fresh SSA (no synthetic exit values) for execution; SSA
        // construction is deterministic so value IDs agree with the
        // analysis for all original values.
        let ssa = SsaFunction::build(func);
        biv::ssa::verify_ssa(&ssa).expect("SSA verifies");
        let trace = match SsaInterpreter::new().run(&ssa, args) {
            Ok(t) => t,
            Err(e) => panic!("interpreter failed: {e}\n{src}"),
        };
        let env = env_from_trace(&trace);
        // Symbols must be single-assignment in the trace for the check to
        // be meaningful (outer-loop symbols vary between inner-loop
        // instances).
        let mut assignment_counts: HashMap<Value, usize> = HashMap::new();
        for &(v, _) in &trace.assignments {
            *assignment_counts.entry(v).or_default() += 1;
        }
        let lookup = |sym: biv::algebra::SymId| -> Option<Rational> {
            let v = biv::core_analysis::value_of_sym(sym);
            if assignment_counts.get(&v).copied().unwrap_or(0) != 1 {
                return None;
            }
            env.get(&v).map(|&x| Rational::from_integer(i128::from(x)))
        };
        let dom = biv::ir::dom::DomTree::compute(ssa.func());
        let mut checked = 0usize;
        for (_, info) in analysis.loops() {
            // Histories index iterations only while the loop runs once:
            // a nested loop re-enters and restarts its counter, so the
            // per-h checks are limited to outermost loops.
            let outermost = analysis.forest().data(info.loop_id).depth == 1;
            let latch = analysis.forest().single_latch(info.loop_id);
            for (value, class) in &info.classes {
                // Only check values that exist in the executable SSA.
                if !ssa.values.contains(value) {
                    continue;
                }
                if ssa.value_name(value) != analysis.ssa().value_name(value) {
                    continue;
                }
                let history = trace.history(value);
                if history.is_empty() {
                    continue;
                }
                // Per-iteration indexing additionally requires the value
                // to execute on every iteration (its block dominates the
                // latch); conditionally executed values skip those checks.
                let every_iteration =
                    latch.is_some_and(|latch| dom.dominates(ssa.def_block(value), latch));
                match class {
                    Class::Induction(cf) if outermost && every_iteration => {
                        for (h, &observed) in history.iter().enumerate() {
                            let Some(expected) = cf.eval_at(h as i128) else {
                                continue;
                            };
                            let Some(expected) = expected.eval(lookup) else {
                                continue;
                            };
                            assert_eq!(
                                expected,
                                Rational::from_integer(i128::from(observed)),
                                "{}(h={h}) mismatch in {}\n{src}",
                                analysis.ssa().value_name(value),
                                info.name,
                            );
                            checked += 1;
                        }
                    }
                    Class::Invariant(p) => {
                        let Some(expected) = p.eval(lookup) else {
                            continue;
                        };
                        for &observed in &history {
                            assert_eq!(
                                expected,
                                Rational::from_integer(i128::from(observed)),
                                "invariant {} changed\n{src}",
                                analysis.ssa().value_name(value),
                            );
                            checked += 1;
                        }
                    }
                    Class::Periodic(p) if outermost && every_iteration => {
                        let values: Option<Vec<Rational>> =
                            p.values.iter().map(|v| v.eval(lookup)).collect();
                        let Some(values) = values else { continue };
                        for (h, &observed) in history.iter().enumerate() {
                            let expected = &values[(p.phase + h) % p.period()];
                            assert_eq!(
                                *expected,
                                Rational::from_integer(i128::from(observed)),
                                "periodic {}(h={h})\n{src}",
                                analysis.ssa().value_name(value),
                            );
                            checked += 1;
                        }
                    }
                    Class::Monotonic(m) if outermost => {
                        for pair in history.windows(2) {
                            match m.direction {
                                Direction::Increasing => {
                                    if m.strict {
                                        assert!(pair[0] < pair[1], "strict increasing\n{src}");
                                    } else {
                                        assert!(pair[0] <= pair[1], "increasing\n{src}");
                                    }
                                }
                                Direction::Decreasing => {
                                    if m.strict {
                                        assert!(pair[0] > pair[1], "strict decreasing\n{src}");
                                    } else {
                                        assert!(pair[0] >= pair[1], "decreasing\n{src}");
                                    }
                                }
                            }
                            checked += 1;
                        }
                    }
                    Class::WrapAround {
                        order,
                        steady,
                        initials,
                    } if outermost && every_iteration => {
                        // First `order` values match the initials; the
                        // steady class (when an IV) matches shifted.
                        for (h, &observed) in history.iter().enumerate() {
                            if h < *order as usize {
                                if let Some(expected) = initials[h].eval(lookup) {
                                    assert_eq!(
                                        expected,
                                        Rational::from_integer(i128::from(observed)),
                                        "wraparound initial {h}\n{src}"
                                    );
                                    checked += 1;
                                }
                            } else if let Class::Induction(cf) = steady.as_ref() {
                                let shifted = h as i128 - i128::from(*order);
                                let Some(expected) =
                                    cf.eval_at(shifted).and_then(|p| p.eval(lookup))
                                else {
                                    continue;
                                };
                                assert_eq!(
                                    expected,
                                    Rational::from_integer(i128::from(observed)),
                                    "wraparound steady at h={h}\n{src}"
                                );
                                checked += 1;
                            }
                        }
                    }
                    _ => {}
                }
            }
            // Trip counts: a constant count means the header is entered
            // count + 1 times (final exit test).
            if !outermost {
                continue;
            }
            if let TripCount::Finite(p) = &info.trip_count {
                if let Some(tc) = p.eval(lookup) {
                    let header = analysis.forest().data(info.loop_id).header;
                    let visits = trace
                        .assignments
                        .iter()
                        .filter(|(v, _)| {
                            ssa.values.contains(*v)
                                && ssa.def_block(*v) == header
                                && ssa.def(*v).is_phi()
                        })
                        .count();
                    let phis = ssa.block(header).phis.len();
                    if phis > 0 && visits > 0 {
                        let iterations = visits / phis;
                        // Entered tc + 1 times; the final visit evaluates
                        // φs too, so histories have tc + 1 entries.
                        assert_eq!(
                            Rational::from_integer(iterations as i128 - 1),
                            tc,
                            "trip count of {}\n{src}",
                            info.name
                        );
                    }
                }
            }
        }
        assert!(checked > 0, "nothing was checked for\n{src}");
    }
}

#[test]
fn differential_fig1() {
    check_program(
        "func fig1(n, c, k) { j = n L7: loop { i = j + c j = i + k if j > 1000 { break } } }",
        &[5, 3, 2],
    );
}

#[test]
fn differential_fig3_branches() {
    check_program(
        "func fig3(e, n) { i = 1 L8: loop { if e > 0 { i = i + 2 } else { i = i + 2 } if i > n { break } } }",
        &[1, 25],
    );
    check_program(
        "func fig3(e, n) { i = 1 L8: loop { if e > 0 { i = i + 2 } else { i = i + 2 } if i > n { break } } }",
        &[0, 25],
    );
}

#[test]
fn differential_wraparound() {
    check_program(
        "func fig4(n, k0, j0) { k = k0 j = j0 i = 1 L10: loop { A[k] = i A[j] = i k = j j = i i = i + 1 if i > n { break } } }",
        &[12, 100, 200],
    );
}

#[test]
fn differential_periodic() {
    check_program(
        "func fig5(n, j0, k0, l0, t0) { t = t0 j = j0 k = k0 l = l0 c = 0 L13: loop { A[t] = j t = j j = k k = l l = t c = c + 1 if c > n { break } } }",
        &[10, 7, 8, 9, 6],
    );
}

#[test]
fn differential_l14_polynomials() {
    check_program(
        "func l14(n) { j = 1 k = 1 l = 1 L14: for i = 1 to n { j = j + i k = k + j + 1 l = l * 2 + 1 A[j] = k } }",
        &[12],
    );
}

#[test]
fn differential_l14_geometric_m() {
    check_program(
        "func l14m(n) { m = 0 L14: for i = 1 to n { m = 3 * m + 2 * i + 1 A[m] = i } }",
        &[10],
    );
}

#[test]
fn differential_flip_flops() {
    check_program(
        "func l12(n) { j = 1 L12: for it = 1 to n { j = 3 - j A[j] = it } }",
        &[9],
    );
    check_program(
        "func l11(n) { j = 1 jold = 2 L11: for it = 1 to n { jt = jold jold = j j = jt A[j] = it } }",
        &[9],
    );
}

#[test]
fn differential_monotonic() {
    check_program(
        "func fig6(n, e) { k = 0 L16: loop { if e > 0 { k = k + 1 } else { k = k + 2 } if k > n { break } } }",
        &[30, 1],
    );
}

#[test]
fn differential_nested_and_triangular() {
    check_program(
        "func fig7(n) { k = 0 L17: loop { i = 1 L18: loop { k = k + 2 if i > 100 { break } i = i + 1 } k = k + 2 if k > n { break } } }",
        &[1000],
    );
    check_program(
        "func fig9(n) { j = 0 L19: for i = 1 to n { j = j + i L20: for k = 1 to i { j = j + 1 } } }",
        &[9],
    );
}

#[test]
fn differential_negative_steps_and_bounds() {
    check_program("func f(n) { L1: for i = n to 1 by -3 { A[i] = i } }", &[20]);
    check_program("func f() { L1: for i = 10 to 5 { A[i] = i } }", &[]);
}

#[test]
fn differential_generated_workloads() {
    for seed in [1u64, 2, 3, 4, 5] {
        let spec = biv::workload::WorkloadSpec {
            loops: 2,
            trip: 12,
            geometric: 0, // geometric values overflow i64 quickly
            seed,
            ..Default::default()
        };
        let w = biv::workload::generate(&spec);
        check_program(&w.source, &[7]);
    }
}

#[test]
fn differential_generated_with_geometrics_short_trip() {
    for seed in [11u64, 12, 13] {
        let spec = biv::workload::WorkloadSpec {
            loops: 1,
            trip: 8, // keep geometric values inside i64
            seed,
            ..Default::default()
        };
        let w = biv::workload::generate(&spec);
        check_program(&w.source, &[3]);
    }
}
