//! Differential-execution property suite for the transform pipeline.
//!
//! Every test follows the same shape: generate a function from the
//! workload generator (so each IV class from the paper is represented),
//! run a transform, then execute original and transformed in the IR
//! interpreter on the shared seeded input set and require identical
//! observable array state. The generator also records exact ground-truth
//! labels for how often each transform must fire, and a deliberately
//! broken strength reducer proves the harness actually catches
//! miscompiles rather than vacuously passing.

use biv::core_analysis::{analyze, differential_check, ValidationOptions, Verdict};
use biv::transform::{
    canary, eliminate_dead_ivs, interchange_nests, optimize, peel_wraparounds, strength_reduce,
    unroll_flip_flops,
};
use biv::workload::{generate, TransformLabels, Workload, WorkloadSpec};

/// A single transform pass, named for diagnostics.
type Pass = (&'static str, fn(&mut biv::ir::Function) -> usize);

/// One spec per IV class from the paper, each emphasizing that class,
/// plus the all-transforms mix. The short trip count keeps geometric
/// plants inside `i64` and interpretation cheap.
fn class_specs(seed: u64) -> Vec<(&'static str, WorkloadSpec)> {
    let base = WorkloadSpec {
        loops: 1,
        linear: 1,
        polynomial: 0,
        geometric: 0,
        mixed_geometric: 0,
        running_sums: 0,
        wraparound: 0,
        periodic: 0,
        monotonic: 0,
        diamonds: 0,
        invariants: 1,
        derived: 0,
        flipflop: 0,
        deadiv: 0,
        nests: 0,
        trip: 12,
        seed,
    };
    vec![
        (
            "linear",
            WorkloadSpec {
                linear: 4,
                derived: 2,
                ..base
            },
        ),
        (
            "polynomial",
            WorkloadSpec {
                polynomial: 2,
                ..base
            },
        ),
        (
            "geometric",
            WorkloadSpec {
                geometric: 2,
                ..base
            },
        ),
        (
            "wraparound",
            WorkloadSpec {
                wraparound: 2,
                ..base
            },
        ),
        (
            "periodic",
            WorkloadSpec {
                periodic: 1,
                flipflop: 1,
                ..base
            },
        ),
        (
            "monotonic",
            WorkloadSpec {
                monotonic: 2,
                diamonds: 1,
                ..base
            },
        ),
        ("dead-iv", WorkloadSpec { deadiv: 2, ..base }),
        ("nested", WorkloadSpec { nests: 2, ..base }),
        ("all-transforms", WorkloadSpec::transforms(1, seed)),
    ]
}

/// Asserts the transformed function is observably identical to the
/// original on the full seeded input set, with every input conclusive.
fn assert_validated(label: &str, workload: &Workload, transformed: &biv::ir::Function) {
    let opts = ValidationOptions::default();
    assert!(opts.inputs >= 8, "suite must exercise at least 8 inputs");
    let verdict = differential_check(&workload.func, transformed, &opts);
    match verdict {
        Verdict::Validated { runs, skipped } => {
            assert_eq!(
                runs, opts.inputs,
                "{label}: only {runs} conclusive runs ({skipped} skipped) on:\n{}",
                workload.source
            );
        }
        other => panic!(
            "{label}: differential check failed: {}\non:\n{}",
            other.render(),
            workload.source
        ),
    }
}

/// Every individual transform, applied to every IV-class workload,
/// preserves observable behavior on the seeded input set.
#[test]
fn each_transform_preserves_observable_state_across_classes() {
    for seed in [7u64, 1992, 0xb1f0] {
        for (class, spec) in class_specs(seed) {
            let workload = generate(&spec);
            let passes: [Pass; 5] = [
                ("strength-reduce", |f| strength_reduce(f)),
                ("peel", |f| {
                    let a = analyze(f);
                    peel_wraparounds(f, &a)
                }),
                ("unroll", |f| {
                    let a = analyze(f);
                    unroll_flip_flops(f, &a)
                }),
                ("dead-iv", |f| {
                    let a = analyze(f);
                    eliminate_dead_ivs(f, &a)
                }),
                ("interchange", |f| {
                    let a = analyze(f);
                    interchange_nests(f, &a)
                }),
            ];
            for (name, pass) in passes {
                let mut func = workload.func.clone();
                let changed = pass(&mut func);
                // Validate even when the pass reports no change: a pass
                // that corrupts the function while claiming 0 still fails.
                assert_validated(
                    &format!("{name} on {class} (seed {seed}, {changed} changes)"),
                    &workload,
                    &func,
                );
            }
        }
    }
}

/// The full pipeline preserves observable behavior on every class mix.
#[test]
fn full_pipeline_preserves_observable_state_across_classes() {
    for seed in [3u64, 77, 9001] {
        for (class, spec) in class_specs(seed) {
            let workload = generate(&spec);
            let optimized = optimize(&workload.func);
            assert_validated(
                &format!(
                    "pipeline on {class} (seed {seed}: {})",
                    optimized.report.render()
                ),
                &workload,
                &optimized.func,
            );
        }
    }
}

/// The pipeline's per-transform counters match the generator's planted
/// ground truth exactly — each plant is isolated, so any interaction
/// between transforms (double-counting, missed candidates) shows up as
/// a diff against the labels.
#[test]
fn pipeline_report_matches_planted_labels() {
    for seed in [1u64, 2, 3, 42] {
        for scale in [1usize, 2] {
            let workload = generate(&WorkloadSpec::transforms(scale, seed));
            let optimized = optimize(&workload.func);
            let got = TransformLabels {
                strength_reduce: optimized.report.strength_reduced,
                peel: optimized.report.peeled,
                unroll: optimized.report.unrolled,
                dead_iv: optimized.report.dead_ivs,
                interchange: optimized.report.interchanged,
            };
            assert_eq!(
                got, workload.labels,
                "transform report diverged from planted labels \
                 (seed {seed}, scale {scale}) on:\n{}",
                workload.source
            );
            assert!(got.total() > 0, "labels must plant work (seed {seed})");
            assert_validated(
                &format!("labeled pipeline (seed {seed}, scale {scale})"),
                &workload,
                &optimized.func,
            );
        }
    }
}

/// A deliberately broken strength reducer (its replacement temporary is
/// initialized one step off) must be caught by the harness: this is the
/// canary proving differential execution detects miscompiles instead of
/// passing vacuously.
#[test]
fn broken_transform_is_caught_by_differential_execution() {
    let spec = WorkloadSpec {
        derived: 2,
        ..WorkloadSpec::transforms(1, 11)
    };
    let workload = generate(&spec);
    let mut func = workload.func.clone();
    let changed = canary::broken_strength_reduce(&mut func);
    assert!(
        changed > 0,
        "canary applied nothing on:\n{}",
        workload.source
    );
    let verdict = differential_check(&workload.func, &func, &ValidationOptions::default());
    assert!(
        verdict.failed(),
        "miscompile not detected (verdict: {}) on:\n{}",
        verdict.render(),
        workload.source
    );
    assert!(
        matches!(verdict, Verdict::Mismatch { .. }),
        "expected an observable-state mismatch, got: {}",
        verdict.render()
    );
}
