//! The fleet serving contract, differentially: a 3-shard `bivd` fleet
//! reached through `bivc --fleet` must print exactly the bytes a
//! sequential local `bivc --batch` prints — under concurrent clients,
//! under either network front-end (`--net-threaded` vs the default
//! epoll loop), and regardless of how the router fans batches out.
//! Also: the epoll front-end must keep serving with ≥10k idle
//! connections parked on it.

#![cfg(unix)]

// The fleet tests use only a slice of the shared helpers.
#[allow(dead_code)]
mod common;

use std::io::BufRead;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use biv::server::{Client, Endpoint, Request, Response};
use common::{bivc, bivc_stdout, scratch_dir, write_corpus_files};

/// Spawns one `bivd --tcp 127.0.0.1:0 --fleet shard=K/N` shard process
/// and returns the child plus the endpoint parsed from its banner.
fn spawn_tcp_shard(shard: u32, shard_count: u32, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bivd"))
        .args([
            "--tcp",
            "127.0.0.1:0",
            "--fleet",
            &format!("shard={shard}/{shard_count}"),
            "--workers",
            "2",
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("bivd spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let banner = lines
        .next()
        .expect("bivd prints a banner")
        .expect("banner reads");
    let endpoint = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("unparseable bivd banner: {banner}"))
        .to_string();
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, endpoint)
}

fn spawn_fleet(shard_count: u32, extra: &[&str]) -> (Vec<Child>, String) {
    let mut children = Vec::new();
    let mut endpoints = Vec::new();
    for shard in 0..shard_count {
        let (child, endpoint) = spawn_tcp_shard(shard, shard_count, extra);
        children.push(child);
        endpoints.push(endpoint);
    }
    (children, endpoints.join(","))
}

fn drain_fleet(children: Vec<Child>, endpoints: &str) {
    for endpoint in endpoints.split(',') {
        let mut client = Client::connect(&Endpoint::parse(endpoint)).expect("connect for drain");
        assert_eq!(
            client.request(&Request::Shutdown).expect("shutdown"),
            Response::ShutdownAck
        );
    }
    for mut child in children {
        let status = child.wait().expect("bivd exits");
        assert!(status.success(), "shard exited uncleanly: {status}");
    }
}

#[test]
fn three_shard_fleet_matches_local_bytes_under_concurrent_clients() {
    let dir = scratch_dir("fleet-diff");
    write_corpus_files(&dir, &[11, 12, 13, 14], 10);
    let dir_arg = dir.display().to_string();
    let reference = bivc_stdout(&["--batch", &dir_arg]);

    let (children, endpoints) = spawn_fleet(3, &[]);
    for clients in [1usize, 2, 8] {
        let outputs: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let endpoints = &endpoints;
                    let dir_arg = &dir_arg;
                    scope.spawn(move || bivc(&["--fleet", endpoints, dir_arg]))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, out) in outputs.iter().enumerate() {
            assert!(
                out.status.success(),
                "fleet client {i}/{clients} failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert_eq!(
                reference,
                String::from_utf8_lossy(&out.stdout),
                "fleet client {i} of {clients} diverged from the local run"
            );
        }
    }
    drain_fleet(children, &endpoints);
}

/// Shards running the portable thread-per-connection front-end must be
/// indistinguishable on the wire from the default epoll front-end.
#[test]
fn net_threaded_fleet_matches_local_bytes() {
    let dir = scratch_dir("fleet-threaded");
    write_corpus_files(&dir, &[21, 22], 8);
    let dir_arg = dir.display().to_string();
    let reference = bivc_stdout(&["--batch", &dir_arg]);

    let (children, endpoints) = spawn_fleet(3, &["--net-threaded"]);
    let fleet = bivc_stdout(&["--fleet", &endpoints, &dir_arg]);
    assert_eq!(reference, fleet, "--net-threaded fleet diverged");
    drain_fleet(children, &endpoints);
}

/// The epoll front-end parks idle connections without dedicating a
/// thread to each, so ten thousand of them must not impair service.
/// Skipped (with a note) if the environment's fd limit can't hold that
/// many sockets, unless BIV_REQUIRE_10K=1 insists.
#[cfg(target_os = "linux")]
#[test]
fn epoll_front_end_serves_with_ten_thousand_idle_connections() {
    let (mut child, endpoint) = spawn_tcp_shard(0, 1, &[]);
    let addr = endpoint.strip_prefix("tcp:").expect("tcp endpoint");

    let mut idle: Vec<TcpStream> = Vec::with_capacity(10_050);
    let mut hit_limit = None;
    for i in 0..10_050 {
        match TcpStream::connect(addr) {
            Ok(conn) => idle.push(conn),
            Err(e) => {
                hit_limit = Some((i, e));
                break;
            }
        }
    }
    if let Some((i, e)) = hit_limit {
        let required = std::env::var("BIV_REQUIRE_10K").is_ok_and(|v| v == "1");
        assert!(
            !required,
            "BIV_REQUIRE_10K=1 but connection {i} failed: {e}"
        );
        eprintln!("note: stopping at {i} idle connections ({e}); raise ulimit -n to test 10k");
    }

    // With the idle herd parked, a real client still gets answered
    // promptly.
    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("connect under load");
    assert_eq!(
        client.request(&Request::Ping).expect("ping under load"),
        Response::Pong
    );
    assert!(idle.len() >= 1_000, "environment too constrained to test");

    drop(client);
    drop(idle);
    // Give the event loop a beat to reap the closed herd, then drain.
    std::thread::sleep(Duration::from_millis(50));
    let mut client = Client::connect(&Endpoint::parse(&endpoint)).expect("reconnect");
    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShutdownAck
    );
    let status = child.wait().expect("bivd exits");
    assert!(status.success(), "daemon exited uncleanly: {status}");
}
