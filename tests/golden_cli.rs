//! Golden-file tests for `bivc`'s multi-file batch output.
//!
//! The batch CLI's stdout is a stable, documented format: per-file
//! headers, canonical per-function summaries, and a scheduling-independent
//! stats line. These tests pin it byte-for-byte against fixtures under
//! `tests/golden/` and check that `--jobs` never changes it.
//!
//! To regenerate the goldens after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_cli
//! ```

use std::path::Path;
use std::process::{Command, Output};

fn bivc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bivc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .env_remove("BIV_JOBS")
        .output()
        .expect("bivc runs")
}

fn stdout_of(args: &[&str]) -> String {
    let out = bivc(args);
    assert!(
        out.status.success(),
        "bivc {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("bivc output is UTF-8")
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden `{}`: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden `{name}` mismatch — if the change is intentional, rerun with UPDATE_GOLDEN=1"
    );
}

#[test]
fn multi_file_batch_output_matches_golden() {
    let actual = stdout_of(&[
        "--jobs",
        "2",
        "tests/golden/fig1.biv",
        "tests/golden/poly.biv",
    ]);
    check_golden("multi_file.txt", &actual);
}

#[test]
fn directory_batch_output_matches_golden() {
    // A directory argument expands recursively (sorted, deterministic)
    // and triggers batch mode without an explicit flag.
    let actual = stdout_of(&["tests/golden"]);
    check_golden("directory.txt", &actual);
}

#[test]
fn cli_output_is_job_count_invariant() {
    let base = stdout_of(&["--jobs", "1", "tests/golden"]);
    for jobs in ["2", "8"] {
        let got = stdout_of(&["--jobs", jobs, "tests/golden"]);
        assert_eq!(base, got, "--jobs {jobs} changed the batch output");
    }
    // BIV_JOBS picks the default worker count but not the output.
    let out = Command::new(env!("CARGO_BIN_EXE_bivc"))
        .args(["--batch", "tests/golden"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .env("BIV_JOBS", "3")
        .output()
        .expect("bivc runs");
    assert!(out.status.success());
    assert_eq!(base, String::from_utf8(out.stdout).unwrap());
}

#[test]
fn repeated_runs_are_byte_identical_across_hash_seeds() {
    // Every spawned process gets a fresh `RandomState` hash seed, so any
    // surviving dependence on HashMap iteration order would flicker
    // between runs. Covers the detailed single-function mode (SSA dump,
    // classes, trip counts, dependences) and the parallel batch mode.
    for args in [
        &[
            "--ssa",
            "--classes",
            "--trip-counts",
            "--deps",
            "tests/golden/fig1.biv",
        ][..],
        &["--classes", "--trip-counts", "tests/golden/poly.biv"][..],
        &["--jobs", "4", "tests/golden"][..],
    ] {
        let first = stdout_of(args);
        for run in 0..2 {
            assert_eq!(
                first,
                stdout_of(args),
                "bivc {args:?} output changed on re-run {run}"
            );
        }
    }
}

#[test]
fn structural_twins_are_reported_as_cache_hits() {
    // wrap.biv holds an α-renamed pair: the stats line must show one
    // analysis and one hit.
    let actual = stdout_of(&["--batch", "tests/golden/nested/wrap.biv"]);
    assert!(
        actual.contains("batch: 2 functions, 1 analyzed, 1 cache hits, 0 evictions"),
        "unexpected stats in:\n{actual}"
    );
}

#[test]
fn time_flag_reports_phases_on_stderr_only() {
    let plain = stdout_of(&["--classes", "tests/golden/fig1.biv"]);
    let out = bivc(&["--classes", "--time", "tests/golden/fig1.biv"]);
    assert!(out.status.success());
    assert_eq!(
        plain,
        String::from_utf8(out.stdout).unwrap(),
        "--time must not change stdout"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("timing: parse") && err.contains("classify"),
        "missing timing line in stderr:\n{err}"
    );
}

#[test]
fn missing_input_fails_cleanly() {
    let out = bivc(&["--batch", "tests/golden/nope.biv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope.biv"));
}

#[test]
fn cache_cap_drives_the_eviction_counter() {
    // Unbounded (default): the golden directory's distinct structures
    // all stay resident, so nothing is evicted.
    let unbounded = stdout_of(&["--batch", "tests/golden"]);
    assert!(
        unbounded.contains(" 0 evictions"),
        "default capacity must not evict:\n{unbounded}"
    );
    // A capacity of 1 must evict every distinct structure after the
    // first; only the stats line may change.
    let capped = stdout_of(&["--batch", "--cache-cap", "1", "tests/golden"]);
    let body = |s: &str| s[..s.rfind("batch:").expect("stats line")].to_string();
    assert_eq!(
        body(&unbounded),
        body(&capped),
        "--cache-cap must never change the analysis itself"
    );
    let evictions = |s: &str| -> usize {
        let stats = &s[s.rfind("batch:").unwrap()..];
        let n = stats
            .split(',')
            .find_map(|field| field.trim().strip_suffix(" evictions"))
            .expect("stats line ends with evictions");
        n.trim().parse().expect("eviction count")
    };
    assert_eq!(evictions(&unbounded), 0);
    assert!(
        evictions(&capped) > 0,
        "cap 1 with several distinct structures must evict:\n{capped}"
    );
    // `--cache-cap=N` spelling parses too.
    assert_eq!(
        capped,
        stdout_of(&["--batch", "--cache-cap=1", "tests/golden"])
    );
}

#[test]
fn batch_reports_per_file_errors_and_analyzes_the_rest() {
    let dir = std::env::temp_dir().join(format!("biv-golden-errs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("a_bad.biv"),
        "func broken( { this is not the language\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("b_good.biv"),
        "func fine(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }\n",
    )
    .unwrap();
    let missing = dir.join("c_missing.biv");

    let out = bivc(&[
        "--batch",
        &dir.display().to_string(),
        &missing.display().to_string(),
    ]);
    assert!(
        !out.status.success(),
        "per-file failures must surface in the exit code"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The good file is fully analyzed and rendered...
    assert!(
        stdout.contains("b_good.biv") && stdout.contains("batch: 1 functions, 1 analyzed"),
        "good file missing from output:\n{stdout}"
    );
    // ...the bad ones are reported individually, without aborting.
    assert!(
        stderr.contains("a_bad.biv") && stderr.contains("parse error"),
        "parse failure not reported:\n{stderr}"
    );
    assert!(
        stderr.contains("c_missing.biv") && stderr.contains("cannot read"),
        "read failure not reported:\n{stderr}"
    );
    assert!(
        !stdout.contains("a_bad.biv"),
        "failed files must not get output headers:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
