//! Shared helpers for the CLI and server integration tests: running
//! `bivc`, managing a scratch `bivd` daemon, and writing corpus files.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// Runs `bivc` with the given args from the crate root.
pub fn bivc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bivc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .env_remove("BIV_JOBS")
        .output()
        .expect("bivc runs")
}

/// Runs `bivc` and returns stdout, asserting success.
pub fn bivc_stdout(args: &[&str]) -> String {
    let out = bivc(args);
    assert!(
        out.status.success(),
        "bivc {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("bivc output is UTF-8")
}

/// A fresh scratch directory under the target-adjacent temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("biv-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes a workload corpus as numbered `.biv` files in `dir` and
/// returns the file paths in analysis order.
pub fn write_corpus_files(dir: &Path, seeds: &[u64], functions: usize) -> Vec<PathBuf> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let spec = biv::workload::CorpusSpec {
                functions,
                seed,
                ..Default::default()
            };
            let corpus = biv::workload::generate_corpus(&spec);
            let path = dir.join(format!("corpus_{i}.biv"));
            std::fs::write(&path, &corpus.source).expect("write corpus file");
            path
        })
        .collect()
}

/// A `bivd` child process on a scratch Unix socket, killed on drop if
/// the test didn't shut it down.
pub struct Daemon {
    child: Option<Child>,
    pub socket: PathBuf,
}

impl Daemon {
    /// Spawns `bivd --socket <scratch> <extra...>` and waits until the
    /// socket accepts connections.
    pub fn spawn(tag: &str, extra: &[&str]) -> Daemon {
        let socket =
            std::env::temp_dir().join(format!("bivd-test-{tag}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_bivd"))
            .arg("--socket")
            .arg(&socket)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("bivd spawns");
        let daemon = Daemon {
            child: Some(child),
            socket,
        };
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            #[cfg(unix)]
            let up = std::os::unix::net::UnixStream::connect(&daemon.socket).is_ok();
            #[cfg(not(unix))]
            let up = true;
            if up {
                return daemon;
            }
            assert!(
                Instant::now() < deadline,
                "bivd did not start listening on {}",
                daemon.socket.display()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// The socket path as a `--remote` argument.
    pub fn remote_arg(&self) -> String {
        self.socket.display().to_string()
    }

    /// Sends SIGTERM without waiting.
    pub fn sigterm(&self) {
        let pid = self.child.as_ref().expect("daemon is running").id();
        let status = Command::new("kill")
            .args(["-TERM", &pid.to_string()])
            .status()
            .expect("kill runs");
        assert!(status.success(), "kill -TERM {pid} failed");
    }

    /// Waits for the daemon to exit and returns (success, stderr).
    pub fn wait(mut self) -> (bool, String) {
        let child = self.child.take().expect("daemon is running");
        let out = child.wait_with_output().expect("bivd exits");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }

    /// SIGTERM, then wait; asserts a clean drain.
    pub fn shutdown(self) -> String {
        self.sigterm();
        let (ok, stderr) = self.wait();
        assert!(ok, "bivd exited uncleanly:\n{stderr}");
        assert!(
            stderr.contains("drained"),
            "bivd stderr missing drain summary:\n{stderr}"
        );
        stderr
    }
}

/// Polls the daemon's `stats` endpoint until at least `n` analyze
/// requests have been accepted into its queue — the point after which
/// the drain contract guarantees they are answered.
pub fn wait_for_accepted(daemon: &Daemon, n: i64) {
    use biv::server::{Client, Endpoint, Request, Response};
    let endpoint = Endpoint::Unix(daemon.socket.clone());
    let mut client = Client::connect(&endpoint).expect("connect for stats polling");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
            panic!("expected a stats response");
        };
        let accepted = stats
            .get("requests")
            .and_then(|r| r.get("analyze_accepted"))
            .and_then(|v| v.as_i64())
            .expect("stats carries requests.analyze_accepted");
        if accepted >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "only {accepted}/{n} analyze requests were accepted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}
