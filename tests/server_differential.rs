//! The serving contract, differentially: N concurrent clients
//! submitting the workload corpus through a live `bivd` must each
//! receive exactly the bytes a sequential local `bivc` prints, and the
//! shared cache's accounting must stay exact under contention
//! (`hits + misses == functions submitted`).

#![cfg(unix)]

mod common;

use biv::server::{Client, Endpoint, Request, Response};
use common::{bivc, bivc_stdout, scratch_dir, wait_for_accepted, write_corpus_files, Daemon};

#[test]
fn concurrent_clients_match_sequential_local_output() {
    let dir = scratch_dir("differential");
    write_corpus_files(&dir, &[1, 2, 3], 12);
    let dir_arg = dir.display().to_string();
    let reference = bivc_stdout(&["--batch", &dir_arg]);

    let daemon = Daemon::spawn("differential", &["--workers", "4"]);
    let mut total_clients = 0u64;
    for clients in [1usize, 2, 8] {
        total_clients += clients as u64;
        let outputs: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let remote = daemon.remote_arg();
                    let dir_arg = &dir_arg;
                    scope.spawn(move || bivc(&["--remote", &remote, dir_arg]))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, out) in outputs.iter().enumerate() {
            assert!(
                out.status.success(),
                "client {i}/{clients} failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert_eq!(
                reference,
                String::from_utf8_lossy(&out.stdout),
                "client {i} of {clients} diverged from the local run"
            );
        }
    }

    // The shared cache's books balance under contention: every function
    // ever submitted was counted as exactly one hit or one miss.
    let endpoint = Endpoint::parse(&daemon.remote_arg());
    let mut stats_client = Client::connect(&endpoint).expect("connect for stats");
    let Response::Stats(stats) = stats_client.request(&Request::Stats).expect("stats") else {
        panic!("expected a stats response");
    };
    let get = |path: &[&str]| {
        path.iter()
            .try_fold(&stats, |node, key| node.get(key))
            .and_then(|v| v.as_i64())
            .unwrap_or_else(|| panic!("stats missing {path:?} in {}", stats.to_text()))
    };
    let hits = get(&["cache", "hits"]);
    let misses = get(&["cache", "misses"]);
    let functions = get(&["requests", "functions"]);
    assert_eq!(
        hits + misses,
        functions,
        "cache accounting drifted under contention: {} + {} != {}",
        hits,
        misses,
        functions
    );
    assert_eq!(get(&["requests", "analyze_ok"]), total_clients as i64);
    assert!(
        misses <= functions / total_clients as i64,
        "at most one cold pass of distinct structures should miss"
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_under_concurrent_load_answers_every_accepted_request() {
    let dir = scratch_dir("drain-load");
    write_corpus_files(&dir, &[7, 8], 32);
    let dir_arg = dir.display().to_string();
    let reference = bivc_stdout(&["--batch", &dir_arg]);

    let daemon = Daemon::spawn("drain-load", &["--workers", "2"]);
    let outputs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let remote = daemon.remote_arg();
                let dir_arg = &dir_arg;
                scope.spawn(move || bivc(&["--remote", &remote, dir_arg]))
            })
            .collect();
        // Wait until every client's request is accepted (the drain
        // contract's precondition), then pull the plug mid-flight.
        wait_for_accepted(&daemon, 4);
        daemon.sigterm();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (ok, stderr) = daemon.wait();
    assert!(ok, "bivd exited uncleanly:\n{stderr}");
    assert!(
        stderr.contains("drained"),
        "missing drain summary:\n{stderr}"
    );

    for (i, out) in outputs.iter().enumerate() {
        assert!(
            out.status.success(),
            "client {i} was dropped during drain:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            reference,
            String::from_utf8_lossy(&out.stdout),
            "client {i}'s drained response diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
