//! Property-based tests (proptest) on the algebra substrate and on the
//! analysis invariants.

use biv::algebra::{Matrix, Rational, SymId, SymPoly};
use proptest::prelude::*;

fn rational() -> impl Strategy<Value = Rational> {
    (-1000i128..1000, 1i128..50).prop_map(|(n, d)| Rational::new(n, d).unwrap())
}

fn sympoly() -> impl Strategy<Value = SymPoly> {
    // Up to 4 terms over 3 symbols with small coefficients.
    proptest::collection::vec((0u32..3, -20i128..20), 0..4).prop_map(|terms| {
        let mut p = SymPoly::zero();
        for (sym, coeff) in terms {
            let term = SymPoly::symbol(SymId(sym))
                .checked_scale(&Rational::from_integer(coeff))
                .unwrap();
            p = p.checked_add(&term).unwrap();
        }
        p
    })
}

proptest! {
    #[test]
    fn rational_addition_commutes(a in rational(), b in rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_mul_distributes(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_double_negation(a in rational()) {
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn rational_ordering_consistent_with_subtraction(a in rational(), b in rational()) {
        prop_assert_eq!(a < b, (a - b).signum() < 0);
    }

    #[test]
    fn rational_floor_ceil_bracket(a in rational()) {
        let f = Rational::from_integer(a.floor());
        let c = Rational::from_integer(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!((c - f) <= Rational::ONE);
    }

    #[test]
    fn sympoly_ring_laws(a in sympoly(), b in sympoly(), c in sympoly()) {
        // Commutativity and associativity of +, distributivity of *.
        let ab = a.checked_add(&b).unwrap();
        let ba = b.checked_add(&a).unwrap();
        prop_assert_eq!(&ab, &ba);
        let left = ab.checked_mul(&c).unwrap();
        let right = a
            .checked_mul(&c)
            .unwrap()
            .checked_add(&b.checked_mul(&c).unwrap())
            .unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn sympoly_eval_is_homomorphic(
        a in sympoly(),
        b in sympoly(),
        x in -50i128..50,
        y in -50i128..50,
        z in -50i128..50,
    ) {
        let env = move |s: SymId| -> Option<Rational> {
            Some(Rational::from_integer(match s.0 {
                0 => x,
                1 => y,
                _ => z,
            }))
        };
        let sum = a.checked_add(&b).unwrap();
        prop_assert_eq!(
            sum.eval(env).unwrap(),
            a.eval(env).unwrap() + b.eval(env).unwrap()
        );
        let prod = a.checked_mul(&b).unwrap();
        prop_assert_eq!(
            prod.eval(env).unwrap(),
            a.eval(env).unwrap() * b.eval(env).unwrap()
        );
    }

    #[test]
    fn matrix_inverse_roundtrip(entries in proptest::collection::vec(-6i128..6, 9)) {
        let data: Vec<Rational> = entries.iter().map(|&v| Rational::from_integer(v)).collect();
        let m = Matrix::from_rows(3, 3, data);
        if let Some(inv) = m.inverse().unwrap() {
            // A⁻¹·(A·e_j) = e_j for every basis column.
            for c in 0..3 {
                let col: Vec<Rational> = (0..3).map(|r| m.get(r, c)).collect();
                let back = inv.mul_vec(&col).unwrap();
                for (r, v) in back.iter().enumerate() {
                    let expected = if r == c { Rational::ONE } else { Rational::ZERO };
                    prop_assert_eq!(*v, expected);
                }
            }
        }
    }

    #[test]
    fn polynomial_fit_reproduces_samples(coeffs in proptest::collection::vec(-9i128..9, 1..5)) {
        // Build a polynomial, sample it, fit it back: must round-trip.
        let eval = |h: i128| -> i128 {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * h.pow(k as u32))
                .sum()
        };
        let samples: Vec<SymPoly> = (0..coeffs.len() as i128)
            .map(|h| SymPoly::from_integer(eval(h)))
            .collect();
        let fit = biv::algebra::vandermonde::fit_polynomial(&samples).unwrap();
        for (k, c) in coeffs.iter().enumerate() {
            prop_assert_eq!(
                fit[k].constant_value().unwrap(),
                Rational::from_integer(*c)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The classifier never misclassifies on randomized workloads: every
    /// closed form matches the interpreter (thin wrapper over the
    /// differential machinery via public APIs).
    #[test]
    fn random_workloads_classify_consistently(seed in 0u64..500) {
        let spec = biv::workload::WorkloadSpec {
            loops: 1,
            trip: 10,
            seed,
            ..Default::default()
        };
        let w = biv::workload::generate(&spec);
        let analysis = biv::core_analysis::analyze(&w.func);
        let counts = biv::workload::count_classes(&analysis);
        prop_assert!(counts.linear >= w.expected.linear);
        prop_assert!(counts.polynomial >= w.expected.polynomial);
        prop_assert!(counts.geometric >= w.expected.geometric);
        prop_assert!(counts.wraparound >= w.expected.wraparound);
        prop_assert!(counts.periodic >= w.expected.periodic);
        prop_assert!(counts.monotonic >= w.expected.monotonic);
        // And SSA remains well-formed.
        let ssa = biv::ssa::SsaFunction::build(&w.func);
        prop_assert!(biv::ssa::verify_ssa(&ssa).is_ok());
    }

    /// Interpreter equivalence under strength reduction on random
    /// programs with multiplications by the loop index.
    #[test]
    fn strength_reduction_random_equivalence(c1 in 1i64..9, c2 in 1i64..9, n in 1i64..30) {
        let src = format!(
            "func f(n) {{ L1: for i = 1 to n {{ j = {c1} * i A[j] = i k = i * {c2} B[k] = j }} }}"
        );
        let program = biv::ir::parser::parse_program(&src).unwrap();
        let original = program.functions[0].clone();
        let mut reduced = original.clone();
        biv::transform::strength_reduce(&mut reduced);
        let interp = biv::ir::interp::Interpreter::new();
        let a = interp.run(&original, &[n]).unwrap();
        let b = interp.run(&reduced, &[n]).unwrap();
        prop_assert_eq!(a.arrays, b.arrays);
    }
}
