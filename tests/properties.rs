//! Property-based tests on the algebra substrate and on the analysis
//! invariants.
//!
//! The properties are exercised over deterministic pseudo-random inputs
//! from the in-tree [`SplitMix64`] generator, so failures are exactly
//! reproducible from the iteration index alone and the suite needs no
//! external dependencies.

use biv::algebra::{Matrix, Rational, SymId, SymPoly};
use biv::workload::rng::SplitMix64;

const CASES: usize = 256;

fn rational(rng: &mut SplitMix64) -> Rational {
    let n = rng.gen_range(-1000..1000) as i128;
    let d = rng.gen_range(1..50) as i128;
    Rational::new(n, d).unwrap()
}

fn sympoly(rng: &mut SplitMix64) -> SymPoly {
    // Up to 4 terms over 3 symbols with small coefficients.
    let terms = rng.gen_range_usize(0..4);
    let mut p = SymPoly::zero();
    for _ in 0..terms {
        let sym = rng.gen_range(0..3) as u32;
        let coeff = rng.gen_range(-20..20) as i128;
        let term = SymPoly::symbol(SymId(sym))
            .checked_scale(&Rational::from_integer(coeff))
            .unwrap();
        p = p.checked_add(&term).unwrap();
    }
    p
}

#[test]
fn rational_addition_commutes() {
    let mut rng = SplitMix64::seed_from_u64(0xA001);
    for _ in 0..CASES {
        let (a, b) = (rational(&mut rng), rational(&mut rng));
        assert_eq!(a + b, b + a);
    }
}

#[test]
fn rational_mul_distributes() {
    let mut rng = SplitMix64::seed_from_u64(0xA002);
    for _ in 0..CASES {
        let (a, b, c) = (rational(&mut rng), rational(&mut rng), rational(&mut rng));
        assert_eq!(a * (b + c), a * b + a * c);
    }
}

#[test]
fn rational_double_negation() {
    let mut rng = SplitMix64::seed_from_u64(0xA003);
    for _ in 0..CASES {
        let a = rational(&mut rng);
        assert_eq!(-(-a), a);
    }
}

#[test]
fn rational_ordering_consistent_with_subtraction() {
    let mut rng = SplitMix64::seed_from_u64(0xA004);
    for _ in 0..CASES {
        let (a, b) = (rational(&mut rng), rational(&mut rng));
        assert_eq!(a < b, (a - b).signum() < 0);
    }
}

#[test]
fn rational_floor_ceil_bracket() {
    let mut rng = SplitMix64::seed_from_u64(0xA005);
    for _ in 0..CASES {
        let a = rational(&mut rng);
        let f = Rational::from_integer(a.floor());
        let c = Rational::from_integer(a.ceil());
        assert!(f <= a && a <= c);
        assert!((c - f) <= Rational::ONE);
    }
}

#[test]
fn sympoly_ring_laws() {
    let mut rng = SplitMix64::seed_from_u64(0xB001);
    for _ in 0..CASES {
        let (a, b, c) = (sympoly(&mut rng), sympoly(&mut rng), sympoly(&mut rng));
        // Commutativity and associativity of +, distributivity of *.
        let ab = a.checked_add(&b).unwrap();
        let ba = b.checked_add(&a).unwrap();
        assert_eq!(&ab, &ba);
        let left = ab.checked_mul(&c).unwrap();
        let right = a
            .checked_mul(&c)
            .unwrap()
            .checked_add(&b.checked_mul(&c).unwrap())
            .unwrap();
        assert_eq!(left, right);
    }
}

#[test]
fn sympoly_eval_is_homomorphic() {
    let mut rng = SplitMix64::seed_from_u64(0xB002);
    for _ in 0..CASES {
        let (a, b) = (sympoly(&mut rng), sympoly(&mut rng));
        let x = rng.gen_range(-50..50) as i128;
        let y = rng.gen_range(-50..50) as i128;
        let z = rng.gen_range(-50..50) as i128;
        let env = move |s: SymId| -> Option<Rational> {
            Some(Rational::from_integer(match s.0 {
                0 => x,
                1 => y,
                _ => z,
            }))
        };
        let sum = a.checked_add(&b).unwrap();
        assert_eq!(
            sum.eval(env).unwrap(),
            a.eval(env).unwrap() + b.eval(env).unwrap()
        );
        let prod = a.checked_mul(&b).unwrap();
        assert_eq!(
            prod.eval(env).unwrap(),
            a.eval(env).unwrap() * b.eval(env).unwrap()
        );
    }
}

#[test]
fn matrix_inverse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xC001);
    for _ in 0..CASES {
        let data: Vec<Rational> = (0..9)
            .map(|_| Rational::from_integer(rng.gen_range(-6..6) as i128))
            .collect();
        let m = Matrix::from_rows(3, 3, data);
        if let Some(inv) = m.inverse().unwrap() {
            // A⁻¹·(A·e_j) = e_j for every basis column.
            for c in 0..3 {
                let col: Vec<Rational> = (0..3).map(|r| m.get(r, c)).collect();
                let back = inv.mul_vec(&col).unwrap();
                for (r, v) in back.iter().enumerate() {
                    let expected = if r == c {
                        Rational::ONE
                    } else {
                        Rational::ZERO
                    };
                    assert_eq!(*v, expected);
                }
            }
        }
    }
}

#[test]
fn polynomial_fit_reproduces_samples() {
    let mut rng = SplitMix64::seed_from_u64(0xC002);
    for _ in 0..CASES {
        let coeffs: Vec<i128> = (0..rng.gen_range_usize(1..5))
            .map(|_| rng.gen_range(-9..9) as i128)
            .collect();
        // Build a polynomial, sample it, fit it back: must round-trip.
        let eval = |h: i128| -> i128 {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * h.pow(k as u32))
                .sum()
        };
        let samples: Vec<SymPoly> = (0..coeffs.len() as i128)
            .map(|h| SymPoly::from_integer(eval(h)))
            .collect();
        let fit = biv::algebra::vandermonde::fit_polynomial(&samples).unwrap();
        for (k, c) in coeffs.iter().enumerate() {
            assert_eq!(fit[k].constant_value().unwrap(), Rational::from_integer(*c));
        }
    }
}

/// The classifier never misclassifies on randomized workloads: every
/// planted variable is recovered, and SSA stays well-formed.
#[test]
fn random_workloads_classify_consistently() {
    for seed in 0..24u64 {
        let spec = biv::workload::WorkloadSpec {
            loops: 1,
            trip: 10,
            seed,
            ..Default::default()
        };
        let w = biv::workload::generate(&spec);
        let analysis = biv::core_analysis::analyze(&w.func);
        let counts = biv::workload::count_classes(&analysis);
        assert!(
            counts.linear >= w.expected.linear,
            "seed {seed}: {counts:?}"
        );
        assert!(counts.polynomial >= w.expected.polynomial, "seed {seed}");
        assert!(counts.geometric >= w.expected.geometric, "seed {seed}");
        assert!(counts.wraparound >= w.expected.wraparound, "seed {seed}");
        assert!(counts.periodic >= w.expected.periodic, "seed {seed}");
        assert!(counts.monotonic >= w.expected.monotonic, "seed {seed}");
        // And SSA remains well-formed.
        let ssa = biv::ssa::SsaFunction::build(&w.func);
        assert!(biv::ssa::verify_ssa(&ssa).is_ok(), "seed {seed}");
    }
}

/// Interpreter equivalence under strength reduction on random programs
/// with multiplications by the loop index.
#[test]
fn strength_reduction_random_equivalence() {
    let mut rng = SplitMix64::seed_from_u64(0xD001);
    for _ in 0..24 {
        let c1 = rng.gen_range(1..9);
        let c2 = rng.gen_range(1..9);
        let n = rng.gen_range(1..30);
        let src = format!(
            "func f(n) {{ L1: for i = 1 to n {{ j = {c1} * i A[j] = i k = i * {c2} B[k] = j }} }}"
        );
        let program = biv::ir::parser::parse_program(&src).unwrap();
        let original = program.functions[0].clone();
        let mut reduced = original.clone();
        biv::transform::strength_reduce(&mut reduced);
        let interp = biv::ir::interp::Interpreter::new();
        let a = interp.run(&original, &[n]).unwrap();
        let b = interp.run(&reduced, &[n]).unwrap();
        assert_eq!(a.arrays, b.arrays, "c1={c1} c2={c2} n={n}");
    }
}
