//! Differential tests for the durable analysis store.
//!
//! The store's contract is that durability is invisible except in
//! latency and counters: a warm run over the same corpus must produce
//! byte-identical output to a cold in-memory run, stale entries from an
//! older analyzer version must never be served, and on-disk hits must
//! line up exactly with the structural-hash equivalence classes the
//! in-memory cache computes. A fault-gated module additionally proves
//! that injected store-layer faults (torn writes, short writes, corrupt
//! records) never change served bytes and that reopening repairs the
//! damage.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

use biv::core_analysis::{
    analyze_batch_with_backend, BatchOptions, Budget, CacheBackend, StructuralCache,
};
use biv::ir::parser::parse_program;
use biv::ir::Function;
use biv::store::{Store, StoreOptions, TieredCache};

/// A corpus with two α-renamed twins (`f`/`g` differ only in variable
/// names — labels are structural, so they share `L1`) and two genuinely
/// distinct structures: three equivalence classes over four functions.
const CORPUS: &str = "func f(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }\n\
     func g(m) { s = 1 L1: for t = 1 to m { s = s + t A[s] = t } }\n\
     func h(n, c, k) { j = n L7: loop { i = j + c j = i + k A[j] = A[i] + 1 if j > 1000 { break } } }\n\
     func k(n) { s = 0 L3: for t = 1 to n { s = s + 2 A[s] = t } }\n";

fn corpus_funcs() -> Vec<Function> {
    parse_program(CORPUS).expect("corpus parses").functions
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("biv-store-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch_opts() -> BatchOptions {
    BatchOptions {
        jobs: 1,
        ..BatchOptions::default()
    }
}

#[test]
fn format_version_bump_invalidates_the_store_wholesale() {
    let dir = fresh_dir("version");
    let funcs = corpus_funcs();
    let options = StoreOptions::for_budget(&Budget::UNLIMITED);

    // Populate and flush under the current format version.
    {
        let mut tiered = TieredCache::open(&dir, 4096, &options).expect("open cold");
        let report = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
        tiered.flush().expect("flush");
        assert_eq!(report.stats.misses, 3, "three equivalence classes");
        let gauges = tiered.store_gauges().expect("tiered cache has a store");
        assert_eq!(gauges.records_live, 3);
        assert_eq!(gauges.disk_hits, 0);
    }

    // An analyzer upgrade: every persisted summary is potentially stale.
    let mut bumped = options.clone();
    bumped.format_version += 1;
    let mut tiered = TieredCache::open(&dir, 4096, &bumped).expect("open after bump");
    let report = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
    let gauges = tiered.store_gauges().expect("store gauges");
    assert_eq!(gauges.disk_hits, 0, "stale records must never be served");
    assert_eq!(report.stats.misses, 3, "everything is recomputed");
    assert!(
        gauges.compactions >= 1,
        "wholesale invalidation is recorded as a compaction"
    );
    assert_eq!(
        gauges.records_live, 3,
        "the store is repopulated under the new version"
    );

    // And the old-version records really are gone from disk: reopening
    // with the bumped options again serves everything from disk.
    drop(tiered);
    let store = Store::open(&dir, &bumped).expect("reopen");
    assert_eq!(store.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_hits_match_the_in_memory_hit_set() {
    let dir = fresh_dir("alpha");
    let funcs = corpus_funcs();
    let options = StoreOptions::for_budget(&Budget::UNLIMITED);

    // Reference: a cold in-memory run partitions the corpus into hits
    // (α-renamed duplicates) and misses (distinct structures).
    let mut mem = StructuralCache::new(4096);
    let cold = analyze_batch_with_backend(&funcs, &batch_opts(), &mut mem);
    let distinct = cold.stats.misses;
    let duplicates = cold.stats.hits;
    assert_eq!((distinct, duplicates), (3, 1));

    // Populate the store.
    {
        let mut tiered = TieredCache::open(&dir, 4096, &options).expect("open cold");
        let warm_up = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
        tiered.flush().expect("flush");
        assert_eq!(warm_up.render(), cold.render(), "cold bytes match");
    }

    // Warm run with an empty memory tier: each distinct structure is a
    // disk hit exactly once; α-renamed twins are served from the
    // promoted memory entry, not the disk.
    let mut tiered = TieredCache::open(&dir, 4096, &options).expect("open warm");
    let warm = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
    let gauges = tiered.store_gauges().expect("store gauges");
    assert_eq!(
        gauges.disk_hits as usize, distinct,
        "disk hits must equal the distinct-structure count"
    );
    assert_eq!(gauges.disk_misses, 0, "a warm store misses nothing");
    assert_eq!(warm.stats.misses, 0, "nothing is recomputed warm");
    assert_eq!(
        warm.stats.hits,
        funcs.len(),
        "every function is a cache hit warm"
    );
    // The per-function reports agree with the in-memory run not just in
    // stats but in every byte of the summary bodies.
    for (a, b) in cold.functions.iter().zip(warm.functions.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.hash, b.hash);
        assert_eq!(
            Arc::as_ref(&a.summary),
            Arc::as_ref(&b.summary),
            "summary for {} must round-trip the store unchanged",
            a.name
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn bivc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bivc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .env_remove("BIV_JOBS")
        .output()
        .expect("bivc runs")
}

fn stdout_of(args: &[&str]) -> String {
    let out = bivc(args);
    assert!(
        out.status.success(),
        "bivc {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("bivc output is UTF-8")
}

#[test]
fn cli_cache_dir_is_byte_identical_cold_and_warm() {
    let dir = fresh_dir("cli");
    let dir_arg = dir.display().to_string();
    let plain = stdout_of(&["--batch", "tests/golden"]);
    let cold = stdout_of(&["--cache-dir", &dir_arg, "tests/golden"]);
    let warm = stdout_of(&["--cache-dir", &dir_arg, "tests/golden"]);
    assert_eq!(plain, cold, "cold --cache-dir run must match a plain run");
    assert_eq!(plain, warm, "warm --cache-dir run must match a plain run");
    // `--cache-dir=DIR` spelling parses too.
    assert_eq!(
        plain,
        stdout_of(&[&format!("--cache-dir={dir_arg}"), "tests/golden"])
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_stats_json_reports_memory_and_disk_counters() {
    let dir = fresh_dir("stats");
    let dir_arg = dir.display().to_string();
    let json_path = dir.join("stats.json");
    std::fs::create_dir_all(&dir).unwrap();
    let json_arg = json_path.display().to_string();

    let stat = |json: &biv::server::Json, path: &[&str]| -> i64 {
        path.iter()
            .try_fold(json, |node, key| node.get(key))
            .and_then(|v| v.as_i64())
            .unwrap_or_else(|| panic!("stats missing {path:?} in {}", json.to_text()))
    };

    // Cold run: everything is analyzed, the store object is present.
    stdout_of(&[
        "--cache-dir",
        &dir_arg,
        "--stats-json",
        &json_arg,
        "tests/golden",
    ]);
    let cold = biv::server::Json::parse(&std::fs::read_to_string(&json_path).unwrap())
        .expect("stats json parses");
    let functions = stat(&cold, &["batch", "functions"]);
    assert!(functions > 0);
    assert_eq!(stat(&cold, &["store", "disk_hits"]), 0);
    assert_eq!(
        stat(&cold, &["cache", "hits"]) + stat(&cold, &["cache", "misses"]),
        functions,
        "the cache books must balance"
    );

    // Warm run: zero recomputation, disk hits cover the distinct set.
    stdout_of(&[
        "--cache-dir",
        &dir_arg,
        "--stats-json",
        &json_arg,
        "tests/golden",
    ]);
    let warm = biv::server::Json::parse(&std::fs::read_to_string(&json_path).unwrap())
        .expect("stats json parses");
    assert_eq!(
        stat(&warm, &["batch", "misses"]),
        0,
        "warm run recomputes nothing"
    );
    assert_eq!(stat(&warm, &["batch", "hits"]), functions);
    assert_eq!(
        stat(&warm, &["store", "disk_hits"]),
        stat(&cold, &["batch", "misses"]),
        "disk hits warm must equal distinct structures cold"
    );

    // Without --cache-dir the store object is omitted, not zeroed.
    stdout_of(&["--batch", "--stats-json", &json_arg, "tests/golden"]);
    let mem_only = biv::server::Json::parse(&std::fs::read_to_string(&json_path).unwrap())
        .expect("stats json parses");
    assert!(
        mem_only.get("store").is_none(),
        "no store without --cache-dir"
    );
    assert!(mem_only.get("cache").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn remote_refuses_local_only_store_flags() {
    for args in [
        &[
            "--remote",
            "tcp:127.0.0.1:1",
            "--cache-dir",
            "/tmp/x",
            "f.biv",
        ][..],
        &[
            "--remote",
            "tcp:127.0.0.1:1",
            "--stats-json",
            "/tmp/x.json",
            "f.biv",
        ][..],
    ] {
        let out = bivc(args);
        assert!(!out.status.success(), "bivc {args:?} must be refused");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("local-only"),
            "expected a local-only error for {args:?}, got:\n{stderr}"
        );
    }
}

/// Store-layer fault injection: the `Store` profile arms torn writes,
/// short writes, and record corruption at a fixed seed. Served bytes
/// must never change, and reopening must repair whatever the faults
/// broke. Gated on the feature because production builds carry no
/// injection hooks; the plan is process-global, so these tests take a
/// mutex to serialize against each other.
#[cfg(feature = "fault-injection")]
mod store_chaos {
    use super::*;
    use std::sync::Mutex;

    static GATE: Mutex<()> = Mutex::new(());

    /// The function blocks of a rendered report, without the trailing
    /// stats line: warmth legitimately changes the true counters (the
    /// CLI and daemon replay a cold cache for their printed line), so
    /// byte-identity under faults is asserted on the analysis itself.
    fn body(rendered: &str) -> String {
        let cut = rendered.rfind("batch:").expect("stats line");
        rendered[..cut].to_string()
    }

    #[test]
    fn store_faults_never_change_served_bytes() {
        let _gate = GATE.lock().unwrap();
        biv_faults::uninstall();
        let options = StoreOptions::for_budget(&Budget::UNLIMITED);
        let dir = fresh_dir("chaos");

        // Every round extends the corpus with one fresh structure, so a
        // fully-persisted store still performs at least one injected
        // write per round, and reuses the surviving prefix of what
        // earlier rounds managed to persist. `install` clears the fired
        // counter, so fires accumulate across the per-round seeds.
        let mut fired = 0;
        for round in 0..40u64 {
            let source = format!(
                "{CORPUS}func r{round}(n) {{ s = 0 L9: for t = 1 to n {{ s = s + {stride} A[s] = t }} }}\n",
                stride = round + 3
            );
            let funcs = parse_program(&source)
                .expect("round corpus parses")
                .functions;
            let mut mem = StructuralCache::new(4096);
            let reference =
                body(&analyze_batch_with_backend(&funcs, &batch_opts(), &mut mem).render());

            biv_faults::install(round, biv_faults::Profile::Store);
            // A fresh tiered cache per round: each reopen replays
            // whatever consistent prefix survived the previous round's
            // faults, recomputes the rest, and keeps serving.
            let mut tiered = TieredCache::open(&dir, 4096, &options)
                .expect("open stays possible under store faults");
            let report = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
            assert_eq!(
                body(&report.render()),
                reference,
                "round {round}: store faults must never leak into output"
            );
            assert_eq!(
                report.stats.hits + report.stats.misses,
                funcs.len(),
                "round {round}: the books must balance under injection"
            );
            // Flush may fail under injection — that is a durability
            // loss, never a correctness loss.
            let _ = tiered.flush();
            fired += biv_faults::total_fired();
            biv_faults::uninstall();
        }
        assert!(
            fired > 0,
            "the store fault plan never fired — the suite is inert"
        );

        // Recovery: with the plan gone, reopening yields a consistent
        // store whose surviving entries decode and serve correctly.
        let funcs = corpus_funcs();
        let mut mem = StructuralCache::new(4096);
        let reference = body(&analyze_batch_with_backend(&funcs, &batch_opts(), &mut mem).render());
        let mut tiered = TieredCache::open(&dir, 4096, &options).expect("clean reopen");
        let report = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
        assert_eq!(
            body(&report.render()),
            reference,
            "clean reopen serves clean bytes"
        );
        tiered.flush().expect("clean flush");

        // And a final warm run serves everything without recomputation.
        let mut tiered = TieredCache::open(&dir, 4096, &options).expect("warm reopen");
        let warm = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
        assert_eq!(body(&warm.render()), reference);
        assert_eq!(warm.stats.misses, 0, "the repaired store is fully warm");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_records_are_truncated_on_reopen_and_counted() {
        let _gate = GATE.lock().unwrap();
        biv_faults::uninstall();
        let funcs = corpus_funcs();
        let options = StoreOptions::for_budget(&Budget::UNLIMITED);
        let dir = fresh_dir("corrupt");

        // Populate under a corruption-heavy plan until at least one
        // record is corrupted on disk (the in-process index still holds
        // the correct summaries, so serving stays right all along).
        let mut corrupted = false;
        for seed in 0..64u64 {
            biv_faults::install(seed, biv_faults::Profile::Store);
            let mut tiered = TieredCache::open(&dir, 4096, &options).expect("open");
            let _ = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
            let _ = tiered.flush();
            biv_faults::uninstall();
            let reopened = Store::open(&dir, &options).expect("reopen");
            if reopened.stats().corrupt_records_skipped > 0 {
                corrupted = true;
                // The consistent prefix survives; the corrupted tail is
                // truncated, never served.
                assert!(reopened.len() < 3, "corrupt records must be dropped");
                break;
            }
            std::fs::remove_dir_all(&dir).ok();
        }
        assert!(
            corrupted,
            "no seed in 0..64 corrupted a record — site inert"
        );

        // The truncated store heals: a clean run recomputes the missing
        // summaries and persists them again.
        let mut tiered = TieredCache::open(&dir, 4096, &options).expect("open healed");
        let report = analyze_batch_with_backend(&funcs, &batch_opts(), &mut tiered);
        assert_eq!(report.stats.hits + report.stats.misses, funcs.len());
        tiered.flush().expect("flush");
        let healed = Store::open(&dir, &options).expect("final reopen");
        assert_eq!(healed.len(), 3, "the store is whole again");
        assert_eq!(healed.stats().corrupt_records_skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
