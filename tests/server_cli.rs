//! End-to-end tests of the `bivd` daemon through its real binaries:
//! round-trips over a Unix socket, remote/local byte identity, per-file
//! error propagation, cache-capacity replay, and graceful SIGTERM
//! shutdown.

#![cfg(unix)]

mod common;

use common::{bivc, bivc_stdout, scratch_dir, wait_for_accepted, write_corpus_files, Daemon};

#[test]
fn remote_round_trip_matches_local_bytes() {
    let dir = scratch_dir("server-roundtrip");
    write_corpus_files(&dir, &[11, 22], 8);
    let dir_arg = dir.display().to_string();

    let local = bivc_stdout(&["--batch", &dir_arg]);
    let daemon = Daemon::spawn("roundtrip", &["--workers", "2"]);
    let remote = bivc_stdout(&["--remote", &daemon.remote_arg(), &dir_arg]);
    assert_eq!(local, remote, "remote output must be byte-identical");

    // A second submission is served from the warm cache — same bytes.
    let warm = bivc_stdout(&["--remote", &daemon.remote_arg(), &dir_arg]);
    assert_eq!(local, warm, "cache warmth must not change the bytes");

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn remote_reports_per_file_errors_and_analyzes_the_rest() {
    let dir = scratch_dir("server-errors");
    write_corpus_files(&dir, &[33], 4);
    std::fs::write(dir.join("corpus_z_bad.biv"), "func broken {\n").unwrap();
    let dir_arg = dir.display().to_string();

    let daemon = Daemon::spawn("errors", &["--workers", "1"]);
    let out = bivc(&["--remote", &daemon.remote_arg(), &dir_arg]);
    assert!(
        !out.status.success(),
        "a bad file must make the exit code nonzero"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stdout.contains("corpus_0.biv"),
        "good file is still analyzed:\n{stdout}"
    );
    assert!(
        !stdout.contains("corpus_z_bad.biv"),
        "failed file must not get an output header:\n{stdout}"
    );
    assert!(
        stderr.contains("corpus_z_bad.biv") && stderr.contains("parse error"),
        "stderr names the failing file:\n{stderr}"
    );

    // The same inputs fail identically in local batch mode.
    let local = bivc(&["--batch", &dir_arg]);
    assert!(!local.status.success());
    assert_eq!(stdout, String::from_utf8(local.stdout).unwrap());

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_cap_is_replayed_in_remote_stats_line() {
    let dir = scratch_dir("server-cachecap");
    write_corpus_files(&dir, &[44, 55], 6);
    let dir_arg = dir.display().to_string();

    let daemon = Daemon::spawn("cachecap", &["--workers", "2"]);
    for cap in ["1", "2", "4096"] {
        let local = bivc_stdout(&["--batch", "--cache-cap", cap, &dir_arg]);
        let remote = bivc_stdout(&[
            "--remote",
            &daemon.remote_arg(),
            "--cache-cap",
            cap,
            &dir_arg,
        ]);
        assert_eq!(
            local, remote,
            "--cache-cap {cap} must render identically local and remote"
        );
    }
    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_in_flight_requests() {
    let dir = scratch_dir("server-drain");
    // One worker and a deliberately large, mostly-distinct corpus keep
    // the request in flight long enough for SIGTERM to land mid-work.
    write_corpus_files(&dir, &[66, 77], 48);
    let dir_arg = dir.display().to_string();
    let local = bivc_stdout(&["--batch", &dir_arg]);

    let daemon = Daemon::spawn("drain", &["--workers", "1"]);
    let remote_arg = daemon.remote_arg();
    let dir_arg_clone = dir_arg.clone();
    let client = std::thread::spawn(move || bivc(&["--remote", &remote_arg, &dir_arg_clone]));
    wait_for_accepted(&daemon, 1);
    let stderr = daemon.shutdown();

    let out = client.join().expect("client thread");
    assert!(
        out.status.success(),
        "an accepted request must be answered through drain:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        local,
        String::from_utf8(out.stdout).unwrap(),
        "drained response must still be byte-identical"
    );
    assert!(stderr.contains("1 analyzed"), "drain summary:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn socket_is_unlinked_after_drain() {
    let daemon = Daemon::spawn("unlink", &[]);
    let socket = daemon.socket.clone();
    assert!(socket.exists());
    daemon.shutdown();
    assert!(
        !socket.exists(),
        "drain must remove the socket file so restarts bind cleanly"
    );
}

#[test]
fn connecting_to_a_dead_socket_fails_cleanly() {
    let out = bivc(&[
        "--remote",
        "/nonexistent/bivd.sock",
        "tests/golden/fig1.biv",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot connect"),
        "expected a connection error, got:\n{stderr}"
    );
}
