//! Property tests for incremental per-nest re-analysis.
//!
//! The contract under test: after any sequence of single-nest edits, a
//! **warm** [`IncrementalState`] (carrying cached summaries from every
//! earlier version of the function) renders byte-identically to a
//! **cold** one analyzing the mutated function from scratch. Splicing a
//! stale or mis-keyed summary would break the identity immediately, so
//! this pins the region-hash granularity end to end.
//!
//! Mutations come from [`perturb_nest_constant`] driven by the in-tree
//! [`SplitMix64`] generator — failures reproduce from the seed alone.

use biv::core_analysis::{
    analyze_incremental, perturb_nest_constant, AnalysisConfig, IncrementalState, RegionMap,
};
use biv::ir::Function;
use biv::workload::rng::SplitMix64;
use biv::workload::{generate, WorkloadSpec};

/// Applies up to `edits` random single-nest constant edits to `func`,
/// checking after each that the warm state renders byte-identically to
/// a cold re-analysis. Returns how many edits actually applied.
fn check_edit_sequence(func: &Function, edits: usize, rng: &mut SplitMix64, label: &str) -> usize {
    let config = AnalysisConfig::default();
    let mut warm = IncrementalState::new(config);
    let initial = analyze_incremental(func, &mut warm);
    // The very first run must also match a fresh state (trivially true,
    // but it anchors the fallback path for non-sliceable functions too).
    let mut cold0 = IncrementalState::new(config);
    assert_eq!(
        initial.render_nests(),
        analyze_incremental(func, &mut cold0).render_nests(),
        "{label}: initial run differs from fresh state"
    );
    if !initial.stats.sliceable {
        return 0;
    }
    let mut current = func.clone();
    let mut applied = 0;
    for edit in 0..edits {
        let regions = RegionMap::compute(&current);
        if !regions.is_sliceable() {
            break;
        }
        let k = rng.gen_range_usize(0..regions.nests.len());
        let pick = rng.next_u64();
        let Some(mutated) = perturb_nest_constant(&current, &regions, k, pick) else {
            continue;
        };
        let warm_report = analyze_incremental(&mutated, &mut warm);
        let mut cold = IncrementalState::new(config);
        let cold_report = analyze_incremental(&mutated, &mut cold);
        assert_eq!(
            warm_report.render_nests(),
            cold_report.render_nests(),
            "{label}: edit {edit} (nest {k}): warm incremental diverged from cold"
        );
        // A single-nest edit must not re-analyze unrelated nests: at
        // most the edited nest plus its dependents miss the cache.
        assert!(
            warm_report.stats.analyzed <= warm_report.stats.nests,
            "{label}: edit {edit}: analyzed more regions than exist"
        );
        applied += 1;
        current = mutated;
    }
    applied
}

#[test]
fn warm_equals_cold_linear_workloads() {
    for seed in 1..=3u64 {
        let w = generate(&WorkloadSpec::sized_linear(600, seed));
        let mut rng = SplitMix64::seed_from_u64(0xBEEF_0000 + seed);
        let applied =
            check_edit_sequence(&w.func, 4, &mut rng, &format!("sized_linear seed {seed}"));
        assert!(applied > 0, "sized_linear seed {seed}: no edits applied");
    }
}

#[test]
fn warm_equals_cold_mixed_workloads() {
    for seed in 1..=3u64 {
        let w = generate(&WorkloadSpec::mixed(3, seed));
        let mut rng = SplitMix64::seed_from_u64(0xCAFE_0000 + seed);
        check_edit_sequence(&w.func, 4, &mut rng, &format!("mixed seed {seed}"));
    }
}

#[test]
fn warm_equals_cold_transform_workloads() {
    for seed in 1..=3u64 {
        let w = generate(&WorkloadSpec::transforms(2, seed));
        let mut rng = SplitMix64::seed_from_u64(0xD00D_0000 + seed);
        check_edit_sequence(&w.func, 4, &mut rng, &format!("transforms seed {seed}"));
    }
}

#[test]
fn single_edit_reuses_untouched_nests() {
    // On a generated linear workload (independent nests by
    // construction), one edit must reuse every other nest's summary.
    let w = generate(&WorkloadSpec::sized_linear(600, 7));
    let config = AnalysisConfig::default();
    let mut state = IncrementalState::new(config);
    let initial = analyze_incremental(&w.func, &mut state);
    assert!(initial.stats.sliceable, "linear workload must be sliceable");
    assert!(initial.stats.nests >= 2, "need several nests to test reuse");
    let regions = RegionMap::compute(&w.func);
    let mutated =
        perturb_nest_constant(&w.func, &regions, 0, 42).expect("linear nests hold constants");
    let report = analyze_incremental(&mutated, &mut state);
    assert_eq!(
        report.stats.analyzed, 1,
        "exactly the edited nest re-analyzes"
    );
    assert_eq!(report.stats.reused, report.stats.nests - 1);
}
